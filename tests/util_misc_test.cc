// Tests for logging, string utilities, and the table writer.

#include <gtest/gtest.h>

#include <sstream>

#include "util/logging.h"
#include "util/string_util.h"
#include "util/table.h"

namespace hod {
namespace {

std::vector<std::pair<LogLevel, std::string>>& CapturedLogs() {
  static auto* logs = new std::vector<std::pair<LogLevel, std::string>>();
  return *logs;
}

void CaptureSink(LogLevel level, const std::string& message) {
  CapturedLogs().emplace_back(level, message);
}

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CapturedLogs().clear();
    SetLogSink(&CaptureSink);
    SetMinLogLevel(LogLevel::kDebug);
  }
  void TearDown() override {
    SetLogSink(nullptr);
    SetMinLogLevel(LogLevel::kInfo);
  }
};

TEST_F(LoggingTest, EmitsToSink) {
  HOD_LOG(Info) << "hello " << 42;
  ASSERT_EQ(CapturedLogs().size(), 1u);
  EXPECT_EQ(CapturedLogs()[0].first, LogLevel::kInfo);
  EXPECT_NE(CapturedLogs()[0].second.find("hello 42"), std::string::npos);
  EXPECT_NE(CapturedLogs()[0].second.find("util_misc_test.cc"),
            std::string::npos);
}

TEST_F(LoggingTest, RespectsMinLevel) {
  SetMinLogLevel(LogLevel::kError);
  HOD_LOG(Warning) << "dropped";
  HOD_LOG(Error) << "kept";
  ASSERT_EQ(CapturedLogs().size(), 1u);
  EXPECT_EQ(CapturedLogs()[0].first, LogLevel::kError);
}

TEST(StringUtil, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StringUtil, JoinRoundTrips) {
  const std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, ", "), "x, y, z");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtil, ToLower) {
  EXPECT_EQ(ToLower("AbC-42"), "abc-42");
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(Trim("  abc \t\n"), "abc");
  EXPECT_EQ(Trim("abc"), "abc");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringUtil, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("line1.m2", "line1"));
  EXPECT_FALSE(StartsWith("line1", "line1.m2"));
  EXPECT_TRUE(EndsWith("bed_temp_a", "_a"));
  EXPECT_FALSE(EndsWith("_a", "bed_temp_a"));
}

TEST(StringUtil, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(-0.5, 0), "-0");
  EXPECT_EQ(FormatDouble(2.0, 3), "2.000");
}

TEST(Table, PrintsAlignedColumns) {
  Table table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "10000"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(Table, ShortRowsPadded) {
  Table table({"a", "b", "c"});
  table.AddRow({"1"});
  std::ostringstream os;
  table.Print(os);
  EXPECT_NE(os.str().find("| 1 |   |   |"), std::string::npos);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table table({"k", "v"});
  table.AddRow({"with,comma", "with\"quote"});
  std::ostringstream os;
  table.PrintCsv(os);
  EXPECT_NE(os.str().find("\"with,comma\",\"with\"\"quote\""),
            std::string::npos);
}

}  // namespace
}  // namespace hod
