#include "stream/escalation.h"

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>
#include <utility>
#include <vector>

#include "core/report.h"

namespace hod::stream {

EscalationBridge::EscalationBridge(StreamEngine* engine,
                                   core::HierarchicalDetector* detector,
                                   EscalationOptions options)
    : engine_(engine), detector_(detector), options_(options) {}

EscalationBridge::~EscalationBridge() { Stop(); }

void EscalationBridge::Start() {
  if (worker_.joinable()) return;
  worker_ = std::jthread([this](std::stop_token stop) { Loop(stop); });
}

void EscalationBridge::Stop() {
  if (!worker_.joinable()) return;
  worker_.request_stop();
  worker_.join();
}

void EscalationBridge::Loop(const std::stop_token& stop) {
  std::mutex mu;
  std::condition_variable_any cv;
  std::unique_lock<std::mutex> lock(mu);
  while (!stop.stop_requested()) {
    cv.wait_for(lock, stop, options_.poll_interval, [] { return false; });
    if (stop.stop_requested()) break;
    // Unresolvable alarms are counted in the run stats; keep polling.
    (void)Poll();
  }
}

StatusOr<size_t> EscalationBridge::Poll() {
  const EngineSnapshot snapshot = engine_->Snapshot();
  if (snapshot.sequence == 0 || snapshot.sequence == last_sequence_) {
    return size_t{0};
  }
  last_sequence_ = snapshot.sequence;

  // Concept shifts first: a re-baselined sensor means every cached model
  // covering it was fit to the old regime. MarkDirty bumps the epoch so
  // the next escalation over that scope rebuilds instead of serving a
  // stale fit. The snapshot's ring may re-publish old shifts; the
  // consumed map keeps each (sensor, confirm-ts) to one MarkDirty.
  for (const ConceptShiftEvent& shift : snapshot.concept_shifts) {
    auto it = shifts_consumed_.find(shift.sensor_id);
    if (it != shifts_consumed_.end() && it->second >= shift.ts) continue;
    shifts_consumed_[shift.sensor_id] = shift.ts;
    // NotFound (entity outside the detector's production) is not an
    // error: the stream tier may watch sensors the hierarchy does not.
    (void)detector_->MarkDirty(shift.sensor_id);
    ++shifts_marked_;
  }

  // Diff: fresh = alarms we have not escalated at this `since` yet.
  std::vector<ActiveAlarm> fresh;
  std::set<std::string> active_ids;
  for (const ActiveAlarm& alarm : snapshot.active_alarms) {
    active_ids.insert(alarm.sensor_id);
    auto it = escalated_.find(alarm.sensor_id);
    if (it == escalated_.end() || it->second != alarm.since) {
      fresh.push_back(alarm);
    }
  }
  // Prune cleared alarms so a later re-raise of the same sensor is fresh
  // even if its `since` collides, and the map stays bounded.
  for (auto it = escalated_.begin(); it != escalated_.end();) {
    if (active_ids.count(it->first) == 0) {
      it = escalated_.erase(it);
    } else {
      ++it;
    }
  }
  if (fresh.empty()) return size_t{0};

  const core::DetectorCacheStats before = detector_->cache_stats();
  const auto t0 = std::chrono::steady_clock::now();

  EscalationRunStats run;
  run.entities = fresh.size();
  std::vector<core::OutlierFinding> findings;
  for (const ActiveAlarm& alarm : fresh) {
    escalated_[alarm.sensor_id] = alarm.since;
    auto report_or =
        detector_->EscalateAlarm(alarm.level, alarm.sensor_id, alarm.since);
    if (!report_or.ok()) {
      ++run.unresolved;
      continue;
    }
    for (core::OutlierFinding& finding : report_or.value().findings) {
      finding.escalated = true;
      findings.push_back(std::move(finding));
    }
  }

  const auto elapsed = std::chrono::steady_clock::now() - t0;
  run.latency_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count());
  const core::DetectorCacheStats after = detector_->cache_stats();
  run.cache_hits = after.hits() - before.hits();
  run.cache_misses = after.misses() - before.misses();
  run.findings = findings.size();

  engine_->ReportEscalation(run, findings);
  ++runs_;
  return fresh.size();
}

}  // namespace hod::stream
