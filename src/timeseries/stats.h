#ifndef HOD_TIMESERIES_STATS_H_
#define HOD_TIMESERIES_STATS_H_

#include <cstddef>
#include <vector>

namespace hod::ts {

/// Summary statistics over a sample. All functions return 0 on empty input
/// unless documented otherwise; none allocate beyond O(n) scratch.

/// Arithmetic mean.
double Mean(const std::vector<double>& xs);

/// Population variance (divides by n). 0 when n < 1.
double Variance(const std::vector<double>& xs);

/// Population standard deviation.
double StdDev(const std::vector<double>& xs);

/// Sample minimum / maximum (0 on empty input).
double Min(const std::vector<double>& xs);
double Max(const std::vector<double>& xs);

/// q-quantile via linear interpolation on the sorted sample, q in [0,1].
double Quantile(std::vector<double> xs, double q);

/// Median (0.5 quantile).
double Median(std::vector<double> xs);

/// Median absolute deviation, scaled by 1.4826 so it estimates sigma for
/// Gaussian data. Robust to up to ~50% contamination.
double Mad(const std::vector<double>& xs);

/// Classic z-scores (x - mean) / stddev; all-zero when stddev == 0.
std::vector<double> ZScores(const std::vector<double>& xs);

/// Robust z-scores (x - median) / MAD; all-zero when MAD == 0.
std::vector<double> RobustZScores(const std::vector<double>& xs);

/// Pearson correlation of two equal-length samples; 0 when degenerate.
double Correlation(const std::vector<double>& xs,
                   const std::vector<double>& ys);

/// Lag-k autocorrelation; 0 when k >= n or variance is 0.
double Autocorrelation(const std::vector<double>& xs, size_t lag);

/// Least-squares slope of xs against index 0..n-1 (trend per step).
double Slope(const std::vector<double>& xs);

/// Sum of squares (signal energy).
double Energy(const std::vector<double>& xs);

/// Maps a non-negative deviation magnitude to an outlierness score in
/// [0, 1) that grows monotonically: score = d / (d + scale). `scale` is the
/// deviation at which the score reaches 0.5 (defaults to 3 "sigmas").
double DeviationToScore(double deviation, double scale = 3.0);

/// Online mean/variance accumulator (Welford). Suitable for streaming
/// condition monitoring at the phase level.
class RunningStats {
 public:
  void Add(double x);
  size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Population variance; 0 when count < 1.
  double variance() const;
  double stddev() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace hod::ts

#endif  // HOD_TIMESERIES_STATS_H_
