#include "detect/kmeans.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hod::detect {
namespace {

std::vector<std::vector<double>> TwoBlobs() {
  std::vector<std::vector<double>> data;
  for (int i = 0; i < 20; ++i) {
    const double jitter = 0.01 * static_cast<double>(i % 5);
    data.push_back({0.0 + jitter, 0.0 - jitter});
    data.push_back({10.0 - jitter, 10.0 + jitter});
  }
  return data;
}

TEST(KMeans, SeparatesTwoBlobs) {
  auto result = KMeans(TwoBlobs(), 2, 50, 42);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->centroids.size(), 2u);
  // One centroid near (0,0), one near (10,10), in either order.
  const double c0 = result->centroids[0][0];
  const double c1 = result->centroids[1][0];
  EXPECT_NEAR(std::min(c0, c1), 0.0, 0.5);
  EXPECT_NEAR(std::max(c0, c1), 10.0, 0.5);
  // All points close to their centroid.
  for (double d : result->distances) EXPECT_LT(d, 1.0);
  EXPECT_EQ(result->cluster_sizes[0] + result->cluster_sizes[1], 40u);
}

TEST(KMeans, DeterministicForSeed) {
  auto a = KMeans(TwoBlobs(), 3, 30, 7).value();
  auto b = KMeans(TwoBlobs(), 3, 30, 7).value();
  EXPECT_EQ(a.assignments, b.assignments);
  EXPECT_EQ(a.centroids, b.centroids);
}

TEST(KMeans, KLargerThanDataIsClamped) {
  std::vector<std::vector<double>> data = {{0.0}, {1.0}};
  auto result = KMeans(data, 10, 10, 1);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->centroids.size(), 2u);
}

TEST(KMeans, RejectsBadInput) {
  EXPECT_FALSE(KMeans({}, 2, 10, 1).ok());
  EXPECT_FALSE(KMeans({{1.0}}, 0, 10, 1).ok());
  EXPECT_FALSE(KMeans({{1.0}, {1.0, 2.0}}, 1, 10, 1).ok());  // ragged
}

TEST(KMeans, FindNearestCentroid) {
  const std::vector<std::vector<double>> centroids = {{0.0, 0.0},
                                                      {10.0, 0.0}};
  auto nearest = FindNearestCentroid(centroids, {7.0, 0.0});
  ASSERT_TRUE(nearest.ok());
  EXPECT_EQ(nearest->index, 1u);
  EXPECT_NEAR(nearest->distance, 3.0, 1e-12);
  EXPECT_FALSE(FindNearestCentroid({}, {1.0}).ok());
  EXPECT_FALSE(FindNearestCentroid(centroids, {1.0}).ok());  // dim mismatch
}

TEST(ColumnScaler, StandardizesColumns) {
  std::vector<std::vector<double>> data = {{0.0, 100.0},
                                           {10.0, 300.0},
                                           {20.0, 200.0}};
  auto scaler = ColumnScaler::Fit(data);
  ASSERT_TRUE(scaler.ok());
  ASSERT_TRUE(scaler->Apply(data).ok());
  // Column means ~0.
  for (size_t c = 0; c < 2; ++c) {
    double sum = 0.0;
    for (const auto& row : data) sum += row[c];
    EXPECT_NEAR(sum, 0.0, 1e-9);
  }
}

TEST(ColumnScaler, ConstantColumnOnlyCentered) {
  std::vector<std::vector<double>> data = {{5.0}, {5.0}, {5.0}};
  auto scaler = ColumnScaler::Fit(data).value();
  std::vector<double> row = {7.0};
  ASSERT_TRUE(scaler.ApplyRow(row).ok());
  EXPECT_DOUBLE_EQ(row[0], 2.0);  // centered, not divided by zero sigma
}

TEST(ColumnScaler, RejectsBadInput) {
  EXPECT_FALSE(ColumnScaler::Fit({}).ok());
  EXPECT_FALSE(ColumnScaler::Fit({{1.0}, {1.0, 2.0}}).ok());
  auto scaler = ColumnScaler::Fit({{1.0, 2.0}}).value();
  std::vector<double> wrong = {1.0};
  EXPECT_FALSE(scaler.ApplyRow(wrong).ok());
}

}  // namespace
}  // namespace hod::detect
