#ifndef HOD_UTIL_TABLE_H_
#define HOD_UTIL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace hod {

/// Column-aligned text table used by the benchmark harness to print the
/// paper's tables/figure series, plus a CSV export for plotting.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends a row. Missing cells render as empty; surplus cells widen the
  /// table is an error -> row is truncated to the header count.
  void AddRow(std::vector<std::string> cells);

  /// Number of data rows.
  size_t num_rows() const { return rows_.size(); }

  /// Writes an aligned, human-readable rendering.
  void Print(std::ostream& os) const;

  /// Writes RFC-4180-ish CSV (fields containing comma/quote are quoted).
  void PrintCsv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hod

#endif  // HOD_UTIL_TABLE_H_
