#ifndef HOD_TIMESERIES_ROLLING_H_
#define HOD_TIMESERIES_ROLLING_H_

#include <cstddef>
#include <deque>
#include <map>

namespace hod::ts {

/// Fixed-capacity rolling window with O(1) mean/variance updates and
/// O(log n) median — the building block for streaming detectors at the
/// phase level, where per-sample cost decides whether monitoring keeps up
/// with the sensor bus.
class RollingWindow {
 public:
  /// `capacity` must be > 0; Add() evicts the oldest sample when full.
  explicit RollingWindow(size_t capacity);

  void Add(double x);

  size_t size() const { return window_.size(); }
  size_t capacity() const { return capacity_; }
  bool full() const { return window_.size() == capacity_; }

  /// Mean / population variance / stddev of the current window (0 when
  /// empty).
  double mean() const;
  double variance() const;
  double stddev() const;

  /// Median of the current window (0 when empty); O(log n) amortized via
  /// an order-statistics multimap.
  double median() const;

  /// Min / max of the current window (0 when empty); O(log n).
  double min() const;
  double max() const;

  /// Latest / oldest sample (0 when empty).
  double back() const { return window_.empty() ? 0.0 : window_.back(); }
  double front() const { return window_.empty() ? 0.0 : window_.front(); }

  void Clear();

 private:
  size_t capacity_;
  std::deque<double> window_;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  /// Value -> multiplicity; supports order statistics and min/max.
  std::map<double, size_t> ordered_;
  size_t ordered_count_ = 0;
};

}  // namespace hod::ts

#endif  // HOD_TIMESERIES_ROLLING_H_
