#include "detect/score_utils.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hod::detect {
namespace {

TEST(ScoreUtils, ClampScores) {
  std::vector<double> scores = {-0.5, 0.3, 1.7, std::nan("")};
  ClampScores(scores);
  EXPECT_DOUBLE_EQ(scores[0], 0.0);
  EXPECT_DOUBLE_EQ(scores[1], 0.3);
  EXPECT_DOUBLE_EQ(scores[2], 1.0);
  EXPECT_DOUBLE_EQ(scores[3], 0.0);  // NaN neutralized
}

TEST(ScoreUtils, MinMaxNormalize) {
  const auto out = MinMaxNormalize({2.0, 4.0, 6.0});
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 0.5);
  EXPECT_DOUBLE_EQ(out[2], 1.0);
}

TEST(ScoreUtils, MinMaxConstantInputAllZero) {
  const auto out = MinMaxNormalize({3.0, 3.0});
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 0.0);
  EXPECT_TRUE(MinMaxNormalize({}).empty());
}

TEST(ScoreUtils, SoftNormalizePreservesOrderAndBounds) {
  const std::vector<double> raw = {0.0, 1.0, 5.0, 100.0};
  const auto out = SoftNormalize(raw);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_GT(out[i], out[i - 1]);
    EXPECT_LT(out[i], 1.0);
  }
}

TEST(ScoreUtils, SoftNormalizeMedianMapsToHalf) {
  // Median of positives {2, 4, 6} is 4 -> 4/(4+4) = 0.5.
  const auto out = SoftNormalize({2.0, 4.0, 6.0});
  EXPECT_NEAR(out[1], 0.5, 1e-12);
}

TEST(ScoreUtils, ExtractOutliersThresholdAndTimes) {
  const std::vector<double> scores = {0.1, 0.9, 0.4, 0.95};
  const auto outliers = ExtractOutliers(scores, 0.5, 100.0, 2.0);
  ASSERT_EQ(outliers.size(), 2u);
  EXPECT_EQ(outliers[0].index, 1u);
  EXPECT_DOUBLE_EQ(outliers[0].time, 102.0);
  EXPECT_EQ(outliers[1].index, 3u);
  EXPECT_DOUBLE_EQ(outliers[1].score, 0.95);
}

TEST(ScoreUtils, MakeDetectionClampsAndExtracts) {
  Detection d = MakeDetection({1.5, 0.2}, 0.5);
  EXPECT_DOUBLE_EQ(d.scores[0], 1.0);
  ASSERT_EQ(d.outliers.size(), 1u);
  EXPECT_EQ(d.outliers[0].index, 0u);
}

TEST(ScoreUtils, TopKMean) {
  const std::vector<double> scores = {0.1, 0.9, 0.5, 0.7};
  EXPECT_DOUBLE_EQ(TopKMean(scores, 2), 0.8);
  EXPECT_DOUBLE_EQ(TopKMean(scores, 100), (0.1 + 0.9 + 0.5 + 0.7) / 4.0);
  EXPECT_DOUBLE_EQ(TopKMean({}, 3), 0.0);
  EXPECT_DOUBLE_EQ(TopKMean(scores, 0), 0.0);
}

TEST(ScoreUtils, FamilyNames) {
  EXPECT_EQ(FamilyAbbreviation(Family::kDiscriminative), "DA");
  EXPECT_EQ(FamilyAbbreviation(Family::kInformationTheoretic), "ITM");
  EXPECT_EQ(FamilyName(Family::kNormalPatternDb), "Normal Pattern Database");
}

TEST(ScoreUtils, DataTypeMaskToString) {
  DataTypeMask mask;
  EXPECT_EQ(mask.ToString(), "");
  mask.points = true;
  mask.time_series = true;
  EXPECT_EQ(mask.ToString(), "PTS,TSS");
  mask.sequences = true;
  EXPECT_EQ(mask.ToString(), "PTS,SSQ,TSS");
}

}  // namespace
}  // namespace hod::detect
