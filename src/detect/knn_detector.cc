#include "detect/knn_detector.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "detect/distance.h"
#include "timeseries/stats.h"

namespace hod::detect {

namespace {

/// Keeps the k smallest values seen (simple insertion; k is small).
/// Seeded with +inf sentinels, which Mean()/Max() filter — so a caller
/// that offers fewer than k finite values must clamp k first, or every
/// query degenerates to 0.0 (see KnnDetector::Train).
class TopKSmallest {
 public:
  explicit TopKSmallest(size_t k) : values_(k, std::numeric_limits<double>::infinity()) {}

  void Offer(double v) {
    auto it = std::max_element(values_.begin(), values_.end());
    if (v < *it) *it = v;
  }

  double Mean() const {
    double sum = 0.0;
    size_t count = 0;
    for (double v : values_) {
      if (std::isfinite(v)) {
        sum += v;
        ++count;
      }
    }
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }

  double Max() const {
    double best = 0.0;
    for (double v : values_) {
      if (std::isfinite(v)) best = std::max(best, v);
    }
    return best;
  }

 private:
  std::vector<double> values_;
};

}  // namespace

KnnDetector::KnnDetector(KnnOptions options) : options_(options) {}

Status KnnDetector::Train(const std::vector<std::vector<double>>& data) {
  if (data.size() < 2) {
    return Status::InvalidArgument("knn needs at least 2 training points");
  }
  if (options_.k == 0) return Status::InvalidArgument("k must be > 0");
  dim_ = data[0].size();
  HOD_ASSIGN_OR_RETURN(scaler_, ColumnScaler::Fit(data));
  train_ = data;
  HOD_RETURN_IF_ERROR(scaler_.Apply(train_));
  // A leave-one-out query sees train_.size()-1 candidates. Asking for more
  // neighbors than that used to leave +inf sentinels in TopKSmallest, whose
  // Mean() then filtered every entry and returned 0.0 — the detector
  // silently scored everything as a perfect inlier. Clamp instead.
  k_ = std::min(options_.k, train_.size() - 1);

  // Baseline: q95 of the leave-one-out knn statistic on training data.
  std::vector<double> stats(train_.size());
  for (size_t i = 0; i < train_.size(); ++i) {
    stats[i] = KnnDistance(train_[i], i);
  }
  trained_ = true;
  baseline_ = ts::Quantile(std::move(stats), 0.95);
  if (baseline_ <= 0.0) baseline_ = 1e-6;
  return Status::Ok();
}

double KnnDetector::KnnDistance(const std::vector<double>& scaled,
                                size_t skip) const {
  // Dimensions guaranteed by the Train/Score boundary: every training row
  // passed ColumnScaler::Fit's ragged check and every query was validated
  // against dim_ before scaling.
  TopKSmallest nearest(k_);
  for (size_t j = 0; j < train_.size(); ++j) {
    if (j == skip) continue;
    nearest.Offer(Distance(scaled.data(), train_[j].data(), dim_));
  }
  return nearest.Mean();
}

StatusOr<std::vector<double>> KnnDetector::Score(
    const std::vector<std::vector<double>>& data) const {
  if (!trained_) return Status::FailedPrecondition("detector not trained");
  std::vector<double> scores(data.size(), 0.0);
  for (size_t i = 0; i < data.size(); ++i) {
    if (data[i].size() != dim_) {
      return Status::InvalidArgument("dimension mismatch in knn score");
    }
    std::vector<double> row = data[i];
    HOD_RETURN_IF_ERROR(scaler_.ApplyRow(row));
    const double ratio =
        KnnDistance(row, std::numeric_limits<size_t>::max()) / baseline_;
    const double excess = ratio - 1.0;
    scores[i] = excess <= 0.0
                    ? 0.0
                    : excess / (excess + options_.distance_scale);
  }
  return scores;
}

ReverseNnDetector::ReverseNnDetector(ReverseNnOptions options)
    : options_(options) {}

Status ReverseNnDetector::Train(const std::vector<std::vector<double>>& data) {
  if (data.size() < 3) {
    return Status::InvalidArgument("reverse-nn needs at least 3 points");
  }
  if (options_.k == 0 || options_.k >= data.size()) {
    return Status::InvalidArgument("k must be in [1, n)");
  }
  dim_ = data[0].size();
  HOD_ASSIGN_OR_RETURN(scaler_, ColumnScaler::Fit(data));
  train_ = data;
  HOD_RETURN_IF_ERROR(scaler_.Apply(train_));
  const size_t n = train_.size();

  // k-NN lists of every training point; count reverse occurrences.
  reverse_counts_.assign(n, 0);
  k_distance_.assign(n, 0.0);
  std::vector<std::pair<double, size_t>> distances(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      distances[j] = {j == i ? std::numeric_limits<double>::infinity()
                             : Distance(train_[i].data(), train_[j].data(),
                                        dim_),
                      j};
    }
    std::partial_sort(distances.begin(), distances.begin() + options_.k,
                      distances.end());
    for (size_t r = 0; r < options_.k; ++r) {
      ++reverse_counts_[distances[r].second];
    }
    k_distance_[i] = distances[options_.k - 1].first;
  }
  // Every point hands out k votes, so the expected reverse count is k.
  expected_count_ = static_cast<double>(options_.k);
  trained_ = true;
  return Status::Ok();
}

StatusOr<std::vector<double>> ReverseNnDetector::Score(
    const std::vector<std::vector<double>>& data) const {
  if (!trained_) return Status::FailedPrecondition("detector not trained");
  std::vector<double> scores(data.size(), 0.0);
  for (size_t i = 0; i < data.size(); ++i) {
    if (data[i].size() != dim_) {
      return Status::InvalidArgument("dimension mismatch in reverse-nn score");
    }
    std::vector<double> row = data[i];
    HOD_RETURN_IF_ERROR(scaler_.ApplyRow(row));
    // Estimated reverse count of the query: the number of training
    // points that would include it among their k nearest, i.e. whose
    // k-distance exceeds the distance to the query.
    size_t reverse = 0;
    for (size_t j = 0; j < train_.size(); ++j) {
      if (Distance(row.data(), train_[j].data(), dim_) <= k_distance_[j]) {
        ++reverse;
      }
    }
    // Antihub score: 0 reverse neighbors -> 1; expected count -> ~0.
    const double deficit =
        1.0 - static_cast<double>(reverse) / expected_count_;
    scores[i] = std::clamp(deficit, 0.0, 1.0);
  }
  return scores;
}

}  // namespace hod::detect
