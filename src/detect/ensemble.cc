#include "detect/ensemble.h"

#include <algorithm>
#include <numeric>

namespace hod::detect {

std::string_view CombinationName(Combination combination) {
  switch (combination) {
    case Combination::kMean:
      return "mean";
    case Combination::kMax:
      return "max";
    case Combination::kRankMean:
      return "rank-mean";
  }
  return "?";
}

namespace {

std::vector<double> NormalizedRanks(const std::vector<double>& scores) {
  const size_t n = scores.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&scores](size_t a, size_t b) { return scores[a] < scores[b]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double midrank =
        (static_cast<double>(i) + static_cast<double>(j)) / 2.0;
    for (size_t k = i; k <= j; ++k) {
      ranks[order[k]] = n > 1 ? midrank / static_cast<double>(n - 1) : 0.0;
    }
    i = j + 1;
  }
  return ranks;
}

}  // namespace

std::vector<double> Combine(const OutlierVectorMatrix& matrix,
                            Combination combination) {
  const size_t items = matrix.num_items();
  std::vector<double> combined(items, 0.0);
  if (matrix.scores.empty()) return combined;
  switch (combination) {
    case Combination::kMean: {
      for (const auto& member : matrix.scores) {
        for (size_t i = 0; i < items; ++i) combined[i] += member[i];
      }
      for (double& v : combined) {
        v /= static_cast<double>(matrix.scores.size());
      }
      break;
    }
    case Combination::kMax: {
      for (const auto& member : matrix.scores) {
        for (size_t i = 0; i < items; ++i) {
          combined[i] = std::max(combined[i], member[i]);
        }
      }
      break;
    }
    case Combination::kRankMean: {
      for (const auto& member : matrix.scores) {
        const std::vector<double> ranks = NormalizedRanks(member);
        for (size_t i = 0; i < items; ++i) combined[i] += ranks[i];
      }
      for (double& v : combined) {
        v /= static_cast<double>(matrix.scores.size());
      }
      break;
    }
  }
  return combined;
}

SeriesEnsemble::SeriesEnsemble(Combination combination)
    : combination_(combination) {}

Status SeriesEnsemble::AddMember(std::unique_ptr<SeriesDetector> member) {
  if (member == nullptr) {
    return Status::InvalidArgument("null ensemble member");
  }
  if (member->supervised()) {
    return Status::InvalidArgument(
        "ensemble members must be unsupervised (got '" + member->name() +
        "')");
  }
  members_.push_back(std::move(member));
  return Status::Ok();
}

std::string SeriesEnsemble::name() const {
  std::string result = "Ensemble[";
  result += CombinationName(combination_);
  for (const auto& member : members_) {
    result += "," + member->name();
  }
  result += "]";
  return result;
}

Status SeriesEnsemble::Train(const std::vector<ts::TimeSeries>& normal) {
  if (members_.empty()) {
    return Status::FailedPrecondition("ensemble has no members");
  }
  for (auto& member : members_) {
    HOD_RETURN_IF_ERROR(member->Train(normal));
  }
  trained_ = true;
  return Status::Ok();
}

StatusOr<OutlierVectorMatrix> SeriesEnsemble::ScoreVector(
    const ts::TimeSeries& series) const {
  if (!trained_) return Status::FailedPrecondition("ensemble not trained");
  OutlierVectorMatrix matrix;
  for (const auto& member : members_) {
    HOD_ASSIGN_OR_RETURN(std::vector<double> scores, member->Score(series));
    matrix.member_names.push_back(member->name());
    matrix.scores.push_back(std::move(scores));
  }
  return matrix;
}

StatusOr<std::vector<double>> SeriesEnsemble::Score(
    const ts::TimeSeries& series) const {
  HOD_ASSIGN_OR_RETURN(OutlierVectorMatrix matrix, ScoreVector(series));
  return Combine(matrix, combination_);
}

}  // namespace hod::detect
