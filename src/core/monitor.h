#ifndef HOD_CORE_MONITOR_H_
#define HOD_CORE_MONITOR_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "core/baseline_lifecycle.h"
#include "util/statusor.h"

namespace hod::core {

/// Streaming condition monitor — the paper's "Condition Monitoring"
/// application: samples arrive one at a time from a running machine, each
/// gets an outlierness score immediately, and alarms carry hysteresis so
/// a single noisy sample cannot flap the alert state.
///
/// Internals: the first `warmup` samples fit an AR(order) one-step
/// predictor (least squares) and a robust residual scale; afterwards each
/// sample is scored by its prediction residual. The model optionally
/// re-adapts slowly (exponential forgetting on the residual scale) so
/// benign seasonal drift does not accumulate alarms.
struct OnlineMonitorOptions {
  size_t warmup = 64;
  size_t ar_order = 4;
  /// Alarm threshold on the per-sample outlierness.
  double threshold = 0.5;
  /// Consecutive samples above/below the threshold required to raise /
  /// clear the alarm.
  size_t raise_after = 2;
  size_t clear_after = 4;
  /// Residual z at which the score reaches 0.5 (after 1 of slack).
  double sigma_scale = 3.0;
  /// Exponential forgetting factor for the residual scale (1.0 = frozen).
  double scale_forgetting = 0.999;
};

/// The complete mutable state of an OnlineMonitor, as a plain value —
/// what an engine checkpoint persists so a restored monitor resumes
/// byte-identically (same scores, same alarm transitions) from the next
/// sample on. Options are not part of the state; the restoring side must
/// construct the monitor with the same options it was checkpointed under.
struct OnlineMonitorState {
  std::vector<double> warmup_buffer;
  std::vector<double> recent;  ///< last ar_order samples, oldest first
  std::vector<double> phi;
  double intercept = 0.0;
  double residual_sigma = 1.0;
  bool model_ready = false;
  bool alarm = false;
  uint64_t above_streak = 0;
  uint64_t below_streak = 0;
  uint64_t samples_seen = 0;
  uint64_t alarms_raised = 0;
  /// ---- Baseline lifecycle (checkpoint v5) -----------------------------
  /// Applied-reset generation; 0 for a never-reset monitor.
  uint64_t baseline_epoch = 0;
  bool frozen = false;
  /// 0 = none, 1 = unseeded reset pending, 2 = seeded reset pending.
  uint8_t pending_reset = 0;
  double pending_level = 0.0;
  double pending_sigma = 0.0;
  uint64_t pending_support = 0;
};

/// Result of pushing one sample.
struct MonitorUpdate {
  /// Outlierness of this sample in [0,1]; 0 during warmup.
  double score = 0.0;
  /// Alarm state after this sample.
  bool alarm = false;
  /// True exactly when this sample raised the alarm.
  bool alarm_raised = false;
  /// True exactly when this sample cleared the alarm.
  bool alarm_cleared = false;
  /// False while the model is still warming up.
  bool model_ready = false;
};

class OnlineMonitor : public BaselineLifecycle {
 public:
  explicit OnlineMonitor(OnlineMonitorOptions options = {});

  /// Feeds one sample. Errors only on non-finite input.
  StatusOr<MonitorUpdate> Push(double sample);

  size_t samples_seen() const { return samples_seen_; }
  const OnlineMonitorOptions& options() const { return options_; }
  bool model_ready() const { return model_ready_; }
  bool alarm() const { return alarm_; }
  /// Number of alarm episodes raised so far.
  size_t alarms_raised() const { return alarms_raised_; }

  /// Copies out the full mutable state (checkpointing).
  OnlineMonitorState SaveState() const;

  /// Overwrites the monitor's state with a previously saved one. Errors
  /// when the state is inconsistent with this monitor's options (e.g. a
  /// ready model whose window length differs from ar_order).
  Status RestoreState(const OnlineMonitorState& state);

  /// ---- BaselineLifecycle ----------------------------------------------
  /// With a seed: installs a degenerate ready model at `seed.level`
  /// (order-0 predictor, sigma floored) so scoring resumes immediately at
  /// the new regime; without a seed: returns to warmup. Deferred while
  /// frozen. Alarm + streak state clears either way; samples_seen /
  /// alarms_raised survive.
  void ResetBaseline(BaselineActor actor,
                     const std::optional<BaselineSeed>& seed) override;
  void FreezeBaseline(BaselineActor actor) override;
  bool ThawBaseline(BaselineActor actor) override;
  bool baseline_frozen() const override { return frozen_; }
  uint64_t baseline_epoch() const override { return baseline_epoch_; }

 private:
  Status FitModel();
  double Predict() const;
  void ApplyReset(const std::optional<BaselineSeed>& seed);

  OnlineMonitorOptions options_;
  std::vector<double> warmup_buffer_;
  std::deque<double> recent_;  // last ar_order samples
  std::vector<double> phi_;
  double intercept_ = 0.0;
  double residual_sigma_ = 1.0;
  bool model_ready_ = false;
  bool alarm_ = false;
  size_t above_streak_ = 0;
  size_t below_streak_ = 0;
  size_t samples_seen_ = 0;
  size_t alarms_raised_ = 0;
  uint64_t baseline_epoch_ = 0;
  bool frozen_ = false;
  uint8_t pending_reset_ = 0;  // 0 none, 1 unseeded, 2 seeded
  double pending_level_ = 0.0;
  double pending_sigma_ = 0.0;
  uint64_t pending_support_ = 0;
};

}  // namespace hod::core

#endif  // HOD_CORE_MONITOR_H_
