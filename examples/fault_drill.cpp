// Fault drill: the robustness layer under deliberate sensor failure.
//
// A 32-sensor fleet streams clean AR(1) telemetry while the FaultInjector
// corrupts three victims with three distinct failure modes — a stuck-at
// flatline, a NaN burst, and a dropout — and then takes out a whole
// eight-sensor line at once. The drill verifies the contract of the
// sensor-health layer:
//
//   1. every faulted sensor is quarantined *inside* its fault interval,
//   2. faults surface as kSensorFault findings, never as process alarms —
//      no faulted sensor raises a single level alarm (clean sensors may
//      still trip the occasional statistical alarm; that is the detector
//      working, not the fault leaking),
//   3. every victim recovers to healthy once its fault clears, and
//   4. the line outage collapses into exactly ONE kGroupOutage finding —
//      the per-sensor storm is suppressed — while the three lone faults
//      above still get their individual kSensorFault findings.
//
// Like every example, this doubles as an end-to-end smoke test: it exits
// non-zero if any of the three guarantees is violated. Deterministic
// (synchronous engine + seeded Rng): the output is identical across runs.

#include <cstdio>
#include <string>
#include <vector>

#include "sim/fault_injector.h"
#include "stream/engine.h"
#include "util/rng.h"

int main() {
  using namespace hod;
  using hierarchy::ProductionLevel;

  constexpr size_t kSensors = 32;
  constexpr size_t kSteps = 1400;  // stream seconds, 1 Hz per sensor

  // --- Schedule the faults -------------------------------------------------
  sim::FaultInjector injector;
  struct Drill {
    const char* sensor;
    sim::FaultKind kind;
    double start, duration;
  };
  const std::vector<Drill> drills = {
      {"sensor_07", sim::FaultKind::kStuckAt, 300.0, 180.0},
      {"sensor_13", sim::FaultKind::kNaNBurst, 450.0, 120.0},
      {"sensor_21", sim::FaultKind::kDropout, 600.0, 150.0},
  };
  for (const Drill& drill : drills) {
    sim::FaultProfile profile;
    profile.kind = drill.kind;
    profile.start = drill.start;
    profile.duration = drill.duration;
    if (!injector.AddFault(drill.sensor, profile).ok()) return 1;
  }

  // Act two: at t=900 the trunk cable of "line B" (sensors 24..31) is cut
  // for 150 s. Eight sensors go stale within one sweep of each other; the
  // engine must file ONE infrastructure finding, not eight sensor faults.
  constexpr double kOutageStart = 900.0;
  constexpr double kOutageDuration = 150.0;
  std::vector<std::string> line_b;
  for (size_t i = 24; i < 32; ++i) {
    char id[16];
    std::snprintf(id, sizeof(id), "sensor_%02zu", i);
    line_b.push_back(id);
  }
  if (!injector.AddLineOutage(line_b, kOutageStart, kOutageDuration).ok()) {
    return 1;
  }

  // --- Configure the engine ------------------------------------------------
  stream::StreamEngineOptions options;
  options.synchronous = true;  // deterministic drill; threaded in prod
  options.monitor.warmup = 100;
  options.snapshot_every = 64;
  options.health.flatline_window = 16;
  options.health.suspect_after = 4;
  options.health.quarantine_after = 8;
  options.health.recovery_clean_streak = 64;
  options.health.staleness_timeout = 30.0;  // dropout detection bound
  options.health_sweep_every = 64;          // sweep every 2 stream-seconds
  // Quarantine-onset correlation: >= 6 staleness onsets within 32 s are
  // one infrastructure event. The lone dropout on sensor_21 stays below
  // this bar and still gets its own kSensorFault finding.
  options.peer.outage_min_sensors = 6;
  options.peer.outage_window = 32.0;
  options.peer.outage_entity = "line_b";

  stream::StreamEngine engine(options);
  std::vector<std::string> ids;
  for (size_t i = 0; i < kSensors; ++i) {
    char id[16];
    std::snprintf(id, sizeof(id), "sensor_%02zu", i);
    ids.push_back(id);
    if (!engine.AddSensor(ids.back(), ProductionLevel::kPhase).ok()) return 1;
  }
  if (!engine.Start().ok()) return 1;

  std::printf("fault drill: %zu sensors, %zu faulted (%zu lone + line B)\n",
              kSensors, injector.GroundTruth().size(), drills.size());
  std::printf("%-12s %-10s %8s %8s\n", "sensor", "fault", "start", "end");
  for (const auto& interval : injector.GroundTruth()) {
    std::printf("%-12s %-10s %8.0f %8.0f\n", interval.sensor_id.c_str(),
                std::string(sim::FaultKindName(interval.kind)).c_str(),
                interval.start, interval.end);
  }

  // --- Stream the plant through the injector -------------------------------
  std::vector<Rng> rngs;
  std::vector<double> noise(kSensors, 0.0);
  for (size_t i = 0; i < kSensors; ++i) rngs.emplace_back(900 + i);
  for (size_t t = 0; t < kSteps; ++t) {
    for (size_t i = 0; i < kSensors; ++i) {
      noise[i] = 0.7 * noise[i] + rngs[i].Gaussian(0.0, 0.25);
      stream::SensorSample clean{ids[i], ProductionLevel::kPhase,
                                 static_cast<double>(t), 50.0 + noise[i]};
      for (const auto& sample : injector.Apply(clean)) {
        // Corrupted samples may be rejected with typed errors (NaN,
        // out-of-order); that rejection IS the fault evidence.
        (void)engine.Ingest(sample);
      }
    }
  }
  if (!engine.Flush().ok()) return 1;

  // --- Verify the three guarantees -----------------------------------------
  const stream::SensorHealthSnapshot health = engine.Health();
  const stream::StreamStatsSnapshot stats = engine.stats();
  const stream::EngineSnapshot snapshot = engine.Snapshot();
  const std::vector<stream::HealthTransition> transitions =
      engine.HealthTransitions();

  std::printf("\n%-12s %-10s %12s %10s %-10s\n", "sensor", "fault",
              "quarantined", "latency", "end state");
  size_t detected = 0;
  bool all_recovered = true;
  for (const auto& interval : injector.GroundTruth()) {
    // First quarantine transition inside the fault interval.
    double quarantined_at = -1.0;
    for (const auto& transition : transitions) {
      if (transition.sensor_id != interval.sensor_id) continue;
      if (transition.to != stream::SensorHealthState::kQuarantined) continue;
      if (transition.ts < interval.start || transition.ts >= interval.end) {
        continue;
      }
      quarantined_at = transition.ts;
      break;
    }
    if (quarantined_at >= 0.0) ++detected;

    stream::SensorHealthState end_state = stream::SensorHealthState::kHealthy;
    for (const auto& sensor : health.sensors) {
      if (sensor.sensor_id == interval.sensor_id) end_state = sensor.state;
    }
    all_recovered = all_recovered &&
                    end_state == stream::SensorHealthState::kHealthy;
    char latency[32] = "-";
    if (quarantined_at >= 0.0) {
      std::snprintf(latency, sizeof(latency), "%.0fs",
                    quarantined_at - interval.start);
    }
    std::printf("%-12s %-10s %12s %10s %-10s\n", interval.sensor_id.c_str(),
                std::string(sim::FaultKindName(interval.kind)).c_str(),
                quarantined_at >= 0.0 ? "in-fault" : "MISSED", latency,
                std::string(stream::SensorHealthStateName(end_state))
                    .c_str());
  }

  // Attribute alarms per sensor: victims must contribute none. (Probe is
  // valid here because the engine is synchronous.)
  uint64_t victim_alarms = 0;
  for (const Drill& drill : drills) {
    auto probe = engine.Probe(drill.sensor);
    if (probe.ok()) victim_alarms += probe->alarms_raised;
  }

  const size_t phase =
      static_cast<size_t>(hierarchy::LevelValue(ProductionLevel::kPhase)) - 1;
  std::printf("\nquarantine entries: %llu   victim process alarms: %llu   "
              "fleet process alarms: %llu   quarantined samples: %llu\n",
              static_cast<unsigned long long>(stats.sensor_faults),
              static_cast<unsigned long long>(victim_alarms),
              static_cast<unsigned long long>(stats.alarms_raised),
              static_cast<unsigned long long>(stats.quarantined_samples));
  std::printf("fault coverage: %zu/%zu intervals flagged kSensorFault\n",
              detected, injector.GroundTruth().size());

  // Guarantee 4: the line outage is one infrastructure finding, not a
  // storm of eight sensor faults.
  size_t group_outages = 0;
  size_t line_sensor_faults = 0;
  for (const auto& finding : engine.Findings()) {
    if (finding.kind == core::FindingKind::kGroupOutage) ++group_outages;
    if (finding.kind == core::FindingKind::kSensorFault) {
      for (const std::string& id : line_b) {
        if (finding.origin.entity == id) ++line_sensor_faults;
      }
    }
  }
  std::printf("line outage: %zu kGroupOutage finding(s), %zu per-sensor "
              "finding(s) on line B, %llu onsets absorbed\n",
              group_outages, line_sensor_faults,
              static_cast<unsigned long long>(
                  stats.suppressed_sensor_faults));

  bool ok = true;
  if (detected < injector.GroundTruth().size()) {
    std::printf("FAIL: not every fault was quarantined inside its interval\n");
    ok = false;
  }
  if (victim_alarms != 0) {
    std::printf("FAIL: faults leaked into process alarms\n");
    ok = false;
  }
  if (!all_recovered || snapshot.levels[phase].quarantined_sensors != 0) {
    std::printf("FAIL: a victim did not recover after its fault cleared\n");
    ok = false;
  }
  for (const auto& sensor : health.sensors) {
    if (!injector.IsVictim(sensor.sensor_id) && sensor.quarantines > 0) {
      std::printf("FAIL: spurious quarantine of %s\n",
                  sensor.sensor_id.c_str());
      ok = false;
    }
  }
  if (group_outages != 1) {
    std::printf("FAIL: expected exactly one kGroupOutage finding\n");
    ok = false;
  }
  if (line_sensor_faults != 0) {
    std::printf("FAIL: the per-sensor storm leaked past the correlator\n");
    ok = false;
  }
  if (stats.group_outage_recoveries != 1) {
    std::printf("FAIL: the line outage never recovered\n");
    ok = false;
  }
  if (!engine.Stop().ok()) return 1;
  std::printf("%s\n", ok ? "drill PASSED" : "drill FAILED");
  return ok ? 0 : 1;
}
