#ifndef HOD_SIM_PLANT_H_
#define HOD_SIM_PLANT_H_

#include <cstdint>

#include "hierarchy/production.h"
#include "sim/ground_truth.h"
#include "util/statusor.h"

namespace hod::sim {

/// Size/shape of the simulated additive-manufacturing production. The
/// defaults build a plant that exercises every Fig.-2 level while staying
/// fast enough for unit tests; benches scale the counts up.
struct PlantOptions {
  size_t num_lines = 2;
  size_t machines_per_line = 3;
  size_t jobs_per_machine = 12;
  /// Samples per phase at `sample_interval` resolution.
  size_t preparation_samples = 48;
  size_t warm_up_samples = 96;
  size_t calibration_samples = 48;
  size_t printing_samples = 192;
  size_t cool_down_samples = 64;
  /// Phase-level sensor sampling interval (seconds).
  double sample_interval = 1.0;
  /// Environment sampling interval (coarser, per the paper's resolution
  /// hierarchy).
  double environment_interval = 10.0;
  /// Idle time between consecutive jobs on a machine (seconds).
  double gap_between_jobs = 120.0;
  uint64_t seed = 7;
};

/// What goes wrong in the plant, and how often.
struct ScenarioOptions {
  /// Per-job probability of a real process anomaly in a random phase and
  /// quantity (visible to the whole redundancy group, degrades CAQ).
  double process_anomaly_rate = 0.15;
  /// Per-job probability of a single-sensor measurement glitch (visible
  /// to one sensor only — the case support/downward checks must expose).
  double glitch_rate = 0.08;
  /// Anomalies injected into each line's environment series.
  size_t environment_anomalies = 2;
  /// Machines (taken from the last line backwards) with systematically
  /// degraded CAQ — the production-level anomaly.
  size_t rogue_machines = 1;
  /// Lines (from the first) that receive a bad-powder-batch window — the
  /// production-line-level anomaly.
  size_t bad_batch_lines = 1;
  /// Consecutive jobs affected by a bad batch.
  size_t bad_batch_jobs = 4;
  /// Injection magnitude in process sigmas.
  double magnitude_sigmas = 6.0;
  /// CAQ degradation (in CAQ sigmas) caused by a process anomaly.
  double caq_degradation = 4.0;
  /// Probability that a chamber-temperature process anomaly co-occurs
  /// with a visible room-temperature deviation (cross-level support).
  double environment_coupling = 0.5;
};

/// A fully built plant plus complete ground truth.
struct SimulatedPlant {
  hierarchy::Production production;
  GroundTruth truth;
};

/// Builds the plant deterministically from the options' seed.
StatusOr<SimulatedPlant> BuildPlant(const PlantOptions& plant_options,
                                    const ScenarioOptions& scenario);

/// Phase names in execution order.
const std::vector<std::string>& PhaseNames();

/// Quantities measured on every machine; `RedundantQuantity` says whether
/// two sensors (suffix _a/_b, shared redundancy group) observe it.
const std::vector<std::string>& MachineQuantities();
bool RedundantQuantity(const std::string& quantity);

/// Event alphabet used by phase event sequences. Symbol kFaultSymbol is
/// emitted near process anomalies.
inline constexpr int kEventAlphabetSize = 6;
inline constexpr int kFaultSymbol = 5;

}  // namespace hod::sim

#endif  // HOD_SIM_PLANT_H_
