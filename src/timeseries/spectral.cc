#include "timeseries/spectral.h"

#include <cmath>

namespace hod::ts {

namespace {

bool IsPowerOfTwo(size_t n) { return n != 0 && (n & (n - 1)) == 0; }

}  // namespace

Status Fft(std::vector<std::complex<double>>& data, bool inverse) {
  const size_t n = data.size();
  if (!IsPowerOfTwo(n)) {
    return Status::InvalidArgument("FFT size must be a power of two");
  }
  if (n == 1) return Status::Ok();
  // Bit-reversal permutation.
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  // Danielson-Lanczos butterflies.
  for (size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * M_PI / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (auto& x : data) x /= static_cast<double>(n);
  }
  return Status::Ok();
}

std::vector<std::complex<double>> ZeroPadToPow2(
    const std::vector<double>& values, size_t min_size) {
  size_t n = 1;
  while (n < values.size() || n < min_size) n <<= 1;
  std::vector<std::complex<double>> data(n, {0.0, 0.0});
  for (size_t i = 0; i < values.size(); ++i) data[i] = {values[i], 0.0};
  return data;
}

std::vector<double> PowerSpectrum(const std::vector<double>& values) {
  if (values.empty()) return {};
  std::vector<std::complex<double>> data = ZeroPadToPow2(values);
  // Padded size is a power of two by construction; Fft cannot fail.
  (void)Fft(data);
  const size_t n = data.size();
  std::vector<double> power(n / 2 + 1, 0.0);
  for (size_t k = 0; k <= n / 2; ++k) {
    power[k] = std::norm(data[k]) / static_cast<double>(n);
  }
  return power;
}

StatusOr<std::vector<double>> BandEnergies(const std::vector<double>& spectrum,
                                           size_t bands) {
  if (bands == 0) return Status::InvalidArgument("bands must be > 0");
  std::vector<double> energies(bands, 0.0);
  if (spectrum.empty()) {
    // No spectrum: uniform signature by convention.
    for (double& e : energies) e = 1.0 / static_cast<double>(bands);
    return energies;
  }
  for (size_t k = 0; k < spectrum.size(); ++k) {
    const size_t band = k * bands / spectrum.size();
    energies[band] += spectrum[k];
  }
  double total = 0.0;
  for (double e : energies) total += e;
  if (total <= 0.0) {
    for (double& e : energies) e = 1.0 / static_cast<double>(bands);
  } else {
    for (double& e : energies) e /= total;
  }
  return energies;
}

StatusOr<std::vector<double>> VibrationSignature(
    const std::vector<double>& values, size_t bands) {
  std::vector<double> spectrum = PowerSpectrum(values);
  if (!spectrum.empty()) spectrum.erase(spectrum.begin());  // drop DC
  return BandEnergies(spectrum, bands);
}

}  // namespace hod::ts
