#include "core/alert_manager.h"

#include <gtest/gtest.h>

namespace hod::core {
namespace {

OutlierFinding MakeFinding(const std::string& entity, double time,
                           double outlierness, int global_score = 1,
                           double support = 0.0,
                           bool measurement_error = false) {
  OutlierFinding finding;
  finding.origin.entity = entity;
  finding.origin.time = time;
  finding.outlierness = outlierness;
  finding.global_score = global_score;
  finding.support = support;
  finding.measurement_error_warning = measurement_error;
  return finding;
}

TEST(AlertManager, MergesNearbyFindingsIntoOneEpisode) {
  AlertManager manager(AlertManagerOptions{.merge_window = 30.0,
                                           .min_severity =
                                               AlertSeverity::kInfo});
  manager.Ingest(MakeFinding("s1", 100.0, 0.9, 3, 1.0));
  manager.Ingest(MakeFinding("s1", 110.0, 0.7, 3, 1.0));
  manager.Ingest(MakeFinding("s1", 125.0, 0.6, 2, 1.0));
  auto episodes = manager.Episodes();
  ASSERT_EQ(episodes.size(), 1u);
  EXPECT_EQ(episodes[0].finding_count, 3u);
  EXPECT_DOUBLE_EQ(episodes[0].start_time, 100.0);
  EXPECT_DOUBLE_EQ(episodes[0].end_time, 125.0);
  EXPECT_DOUBLE_EQ(episodes[0].peak_outlierness, 0.9);
  EXPECT_EQ(episodes[0].peak_global_score, 3);
}

TEST(AlertManager, SplitsDistantFindings) {
  AlertManager manager(AlertManagerOptions{.merge_window = 30.0,
                                           .min_severity =
                                               AlertSeverity::kInfo});
  manager.Ingest(MakeFinding("s1", 100.0, 0.9, 3, 1.0));
  manager.Ingest(MakeFinding("s1", 500.0, 0.8, 3, 1.0));
  EXPECT_EQ(manager.Episodes().size(), 2u);
}

TEST(AlertManager, SeparateEntitiesSeparateEpisodes) {
  AlertManager manager(AlertManagerOptions{.merge_window = 30.0,
                                           .min_severity =
                                               AlertSeverity::kInfo});
  manager.Ingest(MakeFinding("s1", 100.0, 0.9, 3, 1.0));
  manager.Ingest(MakeFinding("s2", 101.0, 0.9, 3, 1.0));
  EXPECT_EQ(manager.Episodes().size(), 2u);
}

TEST(AlertManager, OutOfOrderIngestionHandled) {
  AlertManager manager(AlertManagerOptions{.merge_window = 30.0,
                                           .min_severity =
                                               AlertSeverity::kInfo});
  manager.Ingest(MakeFinding("s1", 125.0, 0.6, 2, 1.0));
  manager.Ingest(MakeFinding("s1", 100.0, 0.9, 3, 1.0));
  manager.Ingest(MakeFinding("s1", 110.0, 0.7, 3, 1.0));
  auto episodes = manager.Episodes();
  ASSERT_EQ(episodes.size(), 1u);
  EXPECT_DOUBLE_EQ(episodes[0].start_time, 100.0);
}

TEST(AlertManager, SeverityFilterSuppressesInfo) {
  AlertManager manager(AlertManagerOptions{.merge_window = 30.0,
                                           .min_severity =
                                               AlertSeverity::kWarning});
  manager.Ingest(MakeFinding("weak", 10.0, 0.2, 1, 0.0));   // INFO
  manager.Ingest(MakeFinding("strong", 10.0, 0.9, 3, 1.0));  // CRITICAL
  auto episodes = manager.Episodes();
  ASSERT_EQ(episodes.size(), 1u);
  EXPECT_EQ(episodes[0].entity, "strong");
  EXPECT_EQ(episodes[0].severity, AlertSeverity::kCritical);
}

TEST(AlertManager, MeasurementErrorsRoutedToCalibration) {
  AlertManager manager;
  manager.Ingest(MakeFinding("sensor", 10.0, 0.9, 1, 0.0,
                             /*measurement_error=*/true));
  manager.Ingest(MakeFinding("process", 10.0, 0.9, 3, 1.0));
  auto board = manager.Episodes();
  ASSERT_EQ(board.size(), 1u);
  EXPECT_EQ(board[0].entity, "process");
  auto calibration = manager.CalibrationQueue();
  ASSERT_EQ(calibration.size(), 1u);
  EXPECT_EQ(calibration[0].entity, "sensor");
  EXPECT_TRUE(calibration[0].suspected_measurement_error);
}

TEST(AlertManager, EpisodesSortedStrongestFirst) {
  AlertManager manager(AlertManagerOptions{.merge_window = 1.0,
                                           .min_severity =
                                               AlertSeverity::kInfo});
  manager.Ingest(MakeFinding("weak", 10.0, 0.3, 1, 0.0));
  manager.Ingest(MakeFinding("critical", 20.0, 0.9, 4, 1.0));
  manager.Ingest(MakeFinding("warning", 30.0, 0.8, 2, 0.0));
  auto episodes = manager.Episodes();
  ASSERT_EQ(episodes.size(), 3u);
  EXPECT_EQ(episodes[0].entity, "critical");
  EXPECT_EQ(episodes[1].entity, "warning");
  EXPECT_EQ(episodes[2].entity, "weak");
}

TEST(AlertManager, ClearResets) {
  AlertManager manager;
  manager.Ingest(MakeFinding("s", 1.0, 0.9, 3, 1.0));
  EXPECT_EQ(manager.findings_ingested(), 1u);
  manager.Clear();
  EXPECT_EQ(manager.findings_ingested(), 0u);
  EXPECT_TRUE(manager.Episodes().empty());
}

TEST(AlertManager, IngestReportTakesAllFindings) {
  HierarchicalOutlierReport report;
  report.findings.push_back(MakeFinding("a", 1.0, 0.9, 3, 1.0));
  report.findings.push_back(MakeFinding("b", 2.0, 0.8, 3, 1.0));
  AlertManager manager;
  manager.IngestReport(report);
  EXPECT_EQ(manager.findings_ingested(), 2u);
}

}  // namespace
}  // namespace hod::core
