#include "timeseries/window.h"

#include <algorithm>

#include "timeseries/stats.h"

namespace hod::ts {

StatusOr<std::vector<WindowSpan>> SlidingWindows(size_t n, size_t length,
                                                 size_t stride) {
  if (length == 0) return Status::InvalidArgument("window length must be > 0");
  if (stride == 0) return Status::InvalidArgument("window stride must be > 0");
  if (length > n) {
    return Status::InvalidArgument("window length exceeds series length");
  }
  std::vector<WindowSpan> spans;
  for (size_t begin = 0; begin + length <= n; begin += stride) {
    spans.push_back(WindowSpan{begin, begin + length});
  }
  return spans;
}

StatusOr<std::vector<WindowSpan>> TumblingWindows(size_t n, size_t length) {
  return SlidingWindows(n, length, length);
}

std::vector<double> WindowFeatures::ToVector() const {
  return {mean, stddev, min, max, slope, energy};
}

WindowFeatures ComputeWindowFeatures(const std::vector<double>& values,
                                     WindowSpan span) {
  std::vector<double> xs(values.begin() + span.begin,
                         values.begin() + span.end);
  WindowFeatures f;
  f.mean = Mean(xs);
  f.stddev = StdDev(xs);
  f.min = Min(xs);
  f.max = Max(xs);
  f.slope = Slope(xs);
  f.energy = Energy(xs) / std::max<size_t>(xs.size(), 1);
  return f;
}

std::vector<WindowFeatures> ComputeAllWindowFeatures(
    const std::vector<double>& values, const std::vector<WindowSpan>& spans) {
  std::vector<WindowFeatures> features;
  features.reserve(spans.size());
  for (const WindowSpan& span : spans) {
    features.push_back(ComputeWindowFeatures(values, span));
  }
  return features;
}

std::vector<double> WindowScoresToPointScores(
    size_t n, const std::vector<WindowSpan>& spans,
    const std::vector<double>& window_scores) {
  std::vector<double> point_scores(n, 0.0);
  const size_t count = std::min(spans.size(), window_scores.size());
  for (size_t w = 0; w < count; ++w) {
    for (size_t i = spans[w].begin; i < spans[w].end && i < n; ++i) {
      point_scores[i] = std::max(point_scores[i], window_scores[w]);
    }
  }
  return point_scores;
}

}  // namespace hod::ts
