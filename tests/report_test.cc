// Alert classification and maintenance-urgency mapping tests.

#include "core/report.h"

#include <gtest/gtest.h>

namespace hod::core {
namespace {

OutlierFinding MakeFinding(int global_score, double outlierness,
                           double support, size_t corresponding,
                           bool measurement_error = false) {
  OutlierFinding finding;
  finding.global_score = global_score;
  finding.outlierness = outlierness;
  finding.support = support;
  finding.corresponding_sensors = corresponding;
  finding.measurement_error_warning = measurement_error;
  finding.origin.entity = "sensor";
  return finding;
}

TEST(Alerts, SeverityNames) {
  EXPECT_EQ(AlertSeverityName(AlertSeverity::kInfo), "INFO");
  EXPECT_EQ(AlertSeverityName(AlertSeverity::kWarning), "WARNING");
  EXPECT_EQ(AlertSeverityName(AlertSeverity::kCritical), "CRITICAL");
}

TEST(Alerts, ConfirmedSupportedOutlierIsCritical) {
  EXPECT_EQ(ClassifyAlert(MakeFinding(4, 0.9, 1.0, 1)),
            AlertSeverity::kCritical);
  EXPECT_EQ(ClassifyAlert(MakeFinding(3, 0.6, 0.5, 2)),
            AlertSeverity::kCritical);
}

TEST(Alerts, NoRedundancyStillCritical) {
  // A sensor with no corresponding sensors cannot gather support; the
  // global score must carry the decision alone.
  EXPECT_EQ(ClassifyAlert(MakeFinding(3, 0.8, 0.0, 0)),
            AlertSeverity::kCritical);
}

TEST(Alerts, UnsupportedOutlierCapsAtWarning) {
  EXPECT_EQ(ClassifyAlert(MakeFinding(3, 0.8, 0.0, 2)),
            AlertSeverity::kWarning);
}

TEST(Alerts, MeasurementErrorNeverCritical) {
  EXPECT_EQ(ClassifyAlert(MakeFinding(5, 1.0, 1.0, 2, true)),
            AlertSeverity::kWarning);
}

TEST(Alerts, WeakLocalOutlierIsInfo) {
  EXPECT_EQ(ClassifyAlert(MakeFinding(1, 0.3, 0.0, 2)),
            AlertSeverity::kInfo);
}

TEST(Alerts, StrongOutliernessAloneIsWarning) {
  EXPECT_EQ(ClassifyAlert(MakeFinding(1, 0.9, 0.0, 0)),
            AlertSeverity::kWarning);
}

TEST(Maintenance, EmptyFindingsZeroUrgency) {
  EXPECT_DOUBLE_EQ(MaintenanceUrgency({}, 10), 0.0);
}

TEST(Maintenance, MeasurementErrorsIgnored) {
  std::vector<OutlierFinding> findings = {
      MakeFinding(5, 1.0, 1.0, 2, /*measurement_error=*/true)};
  EXPECT_DOUBLE_EQ(MaintenanceUrgency(findings, 10), 0.0);
}

TEST(Maintenance, UrgencyGrowsWithGlobalScore) {
  std::vector<OutlierFinding> weak = {MakeFinding(1, 0.8, 1.0, 1)};
  std::vector<OutlierFinding> strong = {MakeFinding(5, 0.8, 1.0, 1)};
  EXPECT_GT(MaintenanceUrgency(strong, 10), MaintenanceUrgency(weak, 10));
}

TEST(Maintenance, BreadthIncreasesUrgency) {
  std::vector<OutlierFinding> one = {MakeFinding(3, 0.7, 1.0, 1)};
  std::vector<OutlierFinding> many;
  for (int i = 0; i < 5; ++i) {
    OutlierFinding finding = MakeFinding(3, 0.7, 1.0, 1);
    finding.origin.entity = "sensor" + std::to_string(i);
    many.push_back(finding);
  }
  EXPECT_GT(MaintenanceUrgency(many, 5), MaintenanceUrgency(one, 5));
}

TEST(Maintenance, BoundedByOne) {
  std::vector<OutlierFinding> extreme;
  for (int i = 0; i < 50; ++i) {
    OutlierFinding finding = MakeFinding(5, 1.0, 1.0, 1);
    finding.origin.entity = "s" + std::to_string(i);
    extreme.push_back(finding);
  }
  EXPECT_LE(MaintenanceUrgency(extreme, 5), 1.0);
}

}  // namespace
}  // namespace hod::core
