#include "stream/engine.h"

#include <algorithm>
#include <utility>

namespace hod::stream {

namespace {

size_t EffectiveShards(const StreamEngineOptions& options) {
  if (options.synchronous) return 1;  // one shard, scored inline
  return options.num_shards == 0 ? 1 : options.num_shards;
}

ShardedScorerOptions MakeScorerOptions(const StreamEngineOptions& options) {
  ShardedScorerOptions scorer;
  scorer.num_shards = EffectiveShards(options);
  scorer.queue_capacity = options.queue_capacity;
  scorer.max_batch = options.max_batch;
  scorer.backpressure = options.backpressure;
  scorer.monitor = options.monitor;
  scorer.forward_threshold = options.monitor.threshold;
  return scorer;
}

}  // namespace

StreamEngine::StreamEngine(StreamEngineOptions options)
    : options_(options),
      stats_(EffectiveShards(options)),
      collector_queue_(options.collector_queue_capacity,
                       BackpressurePolicy::kBlock),
      router_(EffectiveShards(options), options.out_of_order_tolerance,
              &stats_),
      scorer_(MakeScorerOptions(options), &stats_, &collector_queue_),
      alerts_(options.alerts) {}

StreamEngine::~StreamEngine() { (void)Stop(); }

Status StreamEngine::AddSensor(const std::string& sensor_id,
                               hierarchy::ProductionLevel level) {
  if (state_.load() != kConfiguring) {
    return Status::FailedPrecondition("engine already started");
  }
  return router_.AddSensor(sensor_id, level);
}

Status StreamEngine::Start() {
  if (state_.load() != kConfiguring) {
    return Status::FailedPrecondition("engine already started");
  }
  if (router_.num_sensors() == 0) {
    return Status::FailedPrecondition("no sensors registered");
  }
  for (size_t shard = 0; shard < scorer_.num_shards(); ++shard) {
    for (const std::string& sensor_id : router_.SensorsForShard(shard)) {
      HOD_RETURN_IF_ERROR(scorer_.AddSensor(shard, sensor_id));
    }
  }
  if (!options_.synchronous) {
    HOD_RETURN_IF_ERROR(scorer_.Start());
    collector_ = std::jthread([this] { CollectorLoop(); });
  }
  state_.store(kRunning);
  return Status::Ok();
}

StatusOr<IngestAck> StreamEngine::Ingest(const SensorSample& sample) {
  if (state_.load() != kRunning) {
    return Status::FailedPrecondition("engine not running");
  }
  HOD_ASSIGN_OR_RETURN(size_t shard, router_.Route(sample));
  IngestAck ack;
  if (options_.synchronous) {
    HOD_ASSIGN_OR_RETURN(core::MonitorUpdate update,
                         scorer_.ScoreNow(shard, sample));
    ack.enqueued = true;
    ack.update = update;
    // Drain whatever the scorer forwarded, inline.
    std::vector<ScoredSample> forwarded;
    while (collector_queue_.TryPopBatch(forwarded, options_.max_batch) > 0) {
      for (const ScoredSample& scored : forwarded) ConsumeScored(scored);
      forwarded.clear();
    }
    if (!pending_findings_.empty()) {
      std::lock_guard<std::mutex> lock(alerts_mu_);
      alerts_.IngestBatch(pending_findings_);
      pending_findings_.clear();
    }
    return ack;
  }
  HOD_RETURN_IF_ERROR(scorer_.Submit(shard, sample));
  ack.enqueued = true;
  return ack;
}

Status StreamEngine::Flush() {
  const int state = state_.load();
  if (state == kStopped) return Status::Ok();
  if (state != kRunning) {
    return Status::FailedPrecondition("engine not running");
  }
  if (options_.synchronous) {
    PublishSnapshot();
    return Status::Ok();
  }
  HOD_RETURN_IF_ERROR(scorer_.Flush());
  std::unique_lock<std::mutex> lock(collector_mu_);
  collector_cv_.wait(lock, [&] {
    return collected_.load(std::memory_order_acquire) == scorer_.forwarded();
  });
  return Status::Ok();
}

Status StreamEngine::Stop() {
  const int state = state_.exchange(kStopped);
  if (state == kStopped) return Status::Ok();
  if (state == kConfiguring || options_.synchronous) {
    if (state == kRunning) PublishSnapshot();
    return Status::Ok();
  }
  // Workers first: joining them guarantees every accepted sample has been
  // scored and every interesting one forwarded. Then the collector drains
  // the closed queue, publishes the final snapshot, and exits.
  scorer_.Stop();
  collector_queue_.Close();
  if (collector_.joinable()) collector_.join();
  return Status::Ok();
}

StreamStatsSnapshot StreamEngine::stats() const {
  StreamStatsSnapshot snapshot = stats_.Snapshot();
  scorer_.FillQueueStats(snapshot);
  return snapshot;
}

EngineSnapshot StreamEngine::Snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return published_;
}

std::vector<core::AlertEpisode> StreamEngine::Episodes() const {
  std::lock_guard<std::mutex> lock(alerts_mu_);
  return alerts_.Episodes();
}

StatusOr<SensorProbe> StreamEngine::Probe(const std::string& sensor_id) const {
  return scorer_.Probe(sensor_id);
}

void StreamEngine::CollectorLoop() {
  std::vector<ScoredSample> batch;
  batch.reserve(options_.max_batch);
  while (collector_queue_.PopBatch(batch, options_.max_batch)) {
    for (const ScoredSample& scored : batch) ConsumeScored(scored);
    if (!pending_findings_.empty()) {
      std::lock_guard<std::mutex> lock(alerts_mu_);
      alerts_.IngestBatch(pending_findings_);
      pending_findings_.clear();
    }
    collected_.fetch_add(batch.size(), std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(collector_mu_);
    }
    collector_cv_.notify_all();
    // A drained queue is a quiescent point — publish so Flush() callers
    // observe a current snapshot.
    if (collector_queue_.size() == 0) PublishSnapshot();
    batch.clear();
  }
  PublishSnapshot();
}

void StreamEngine::ConsumeScored(const ScoredSample& scored) {
  ++events_seen_;
  const int level_value = hierarchy::LevelValue(scored.level);
  const size_t level_index =
      static_cast<size_t>(std::clamp(level_value, 1, hierarchy::kNumLevels)) -
      1;
  LevelOutlierState& level = levels_[level_index];
  const core::MonitorUpdate& update = scored.update;
  const bool outlier = update.score > options_.monitor.threshold;

  if (outlier) {
    ++level.outlier_samples;
    level.peak_score = std::max(level.peak_score, update.score);
    level.last_outlier_ts = scored.ts;
  }
  if (update.alarm_raised) {
    ++level.alarms_raised;
    ++level.active_alarms;
    ActiveAlarm& alarm = active_alarms_[scored.sensor_id];
    alarm.sensor_id = scored.sensor_id;
    alarm.level = scored.level;
    alarm.since = scored.ts;
    alarm.peak_score = update.score;
  } else if (update.alarm) {
    auto it = active_alarms_.find(scored.sensor_id);
    if (it != active_alarms_.end()) {
      it->second.peak_score = std::max(it->second.peak_score, update.score);
    }
  }
  if (update.alarm_cleared) {
    ++level.alarms_cleared;
    if (level.active_alarms > 0) --level.active_alarms;
    active_alarms_.erase(scored.sensor_id);
  }

  if (outlier) {
    core::OutlierFinding finding;
    finding.origin.level = scored.level;
    finding.origin.entity = scored.sensor_id;
    finding.origin.time = scored.ts;
    finding.origin.score = update.score;
    finding.global_score = 1;
    finding.outlierness = update.score;
    finding.support = 0.0;
    finding.corresponding_sensors = 0;
    finding.confirmed_levels = {scored.level};
    pending_findings_.push_back(std::move(finding));
  }

  if (options_.snapshot_every > 0 &&
      events_seen_ - events_at_last_snapshot_ >= options_.snapshot_every) {
    PublishSnapshot();
  }
}

void StreamEngine::PublishSnapshot() {
  EngineSnapshot snapshot;
  snapshot.sequence = next_sequence_++;
  snapshot.events_seen = events_seen_;
  snapshot.levels = levels_;
  snapshot.active_alarms.reserve(active_alarms_.size());
  for (const auto& [id, alarm] : active_alarms_) {
    snapshot.active_alarms.push_back(alarm);
  }
  events_at_last_snapshot_ = events_seen_;
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  published_ = std::move(snapshot);
}

}  // namespace hod::stream
