#include "util/rng.h"

#include <cmath>

namespace hod {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t v, int k) { return (v << k) | (v >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& s : state_) s = SplitMix64(sm);
  // xoshiro must not start from the all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::NextU64() {
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::NextBelow(uint64_t n) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0ULL - n) % n;
  while (true) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  NextBelow(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller: u1 must be > 0.
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::Exponential(double rate) {
  double u = 0.0;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

int Rng::Poisson(double mean) {
  if (mean <= 0.0) return 0;
  const double limit = std::exp(-mean);
  double product = NextDouble();
  int count = 0;
  while (product > limit) {
    ++count;
    product *= NextDouble();
  }
  return count;
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) total += w;
  }
  if (total <= 0.0) return NextBelow(weights.size());
  double target = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] <= 0.0) continue;
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace hod
