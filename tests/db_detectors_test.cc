// Pattern-database detectors: NPD window database, NMD anomaly dictionary,
// OS rare subsequences.

#include <gtest/gtest.h>

#include "detect/anomaly_dictionary.h"
#include "detect/rare_subsequence.h"
#include "detect/window_db.h"
#include "detector_test_util.h"

namespace hod::detect {
namespace {

using detect_test::CanonicalSequences;
using detect_test::CanonicalSeries;
using detect_test::ExpectAnomaliesScoreHigher;
using detect_test::ExpectScoresInUnitInterval;

TEST(WindowDb, StoresFrequencies) {
  const auto dataset = CanonicalSequences();
  WindowDbDetector detector;
  ASSERT_TRUE(detector.Train(dataset.train).ok());
  EXPECT_GT(detector.database_size(), 0u);
}

TEST(WindowDb, FrequentWindowsScoreZero) {
  ts::DiscreteSequence cyclic("c", 4);
  for (int i = 0; i < 200; ++i) cyclic.Append(i % 4);
  WindowDbDetector detector;
  ASSERT_TRUE(detector.Train({cyclic}).ok());
  auto scores = detector.Score(cyclic).value();
  for (double s : scores) EXPECT_DOUBLE_EQ(s, 0.0);
}

TEST(WindowDb, UnseenWindowSoftMismatchAboveHalf) {
  ts::DiscreteSequence cyclic("c", 5);
  for (int i = 0; i < 200; ++i) cyclic.Append(i % 4);
  WindowDbDetector detector(WindowDbOptions{.window = 6});
  ASSERT_TRUE(detector.Train({cyclic}).ok());
  ts::DiscreteSequence novel("n", 5, {4, 4, 4, 4, 4, 4, 4, 4});
  auto scores = detector.Score(novel).value();
  double max_score = 0.0;
  for (double s : scores) max_score = std::max(max_score, s);
  EXPECT_GT(max_score, 0.5);
}

TEST(WindowDb, SoftMismatchGrowsWithHamming) {
  ts::DiscreteSequence cyclic("c", 6);
  for (int i = 0; i < 200; ++i) cyclic.Append(i % 4);
  WindowDbDetector detector(WindowDbOptions{.window = 4});
  ASSERT_TRUE(detector.Train({cyclic}).ok());
  // One symbol off vs all symbols off.
  ts::DiscreteSequence near("near", 6, {0, 1, 2, 5});
  ts::DiscreteSequence far("far", 6, {5, 5, 5, 5});
  const double near_score = detector.Score(near).value()[0];
  const double far_score = detector.Score(far).value()[0];
  EXPECT_LT(near_score, far_score);
}

TEST(WindowDb, FlagsCorruptedBursts) {
  const auto dataset = CanonicalSequences();
  WindowDbDetector detector;
  ASSERT_TRUE(detector.Train(dataset.train).ok());
  for (size_t s = 0; s < dataset.test.size(); ++s) {
    auto scores = detector.Score(dataset.test[s]);
    ASSERT_TRUE(scores.ok());
    ExpectScoresInUnitInterval(scores.value());
    ExpectAnomaliesScoreHigher(scores.value(), dataset.test_labels[s], 0.05);
  }
}

TEST(AnomalyDictionary, RefusesUnlabeledTraining) {
  AnomalyDictionaryDetector detector;
  EXPECT_TRUE(detector.supervised());
  EXPECT_EQ(detector.Train({}).code(), StatusCode::kFailedPrecondition);
}

TEST(AnomalyDictionary, MatchesInstalledPattern) {
  AnomalyDictionaryDetector detector(
      AnomalyDictionaryOptions{.window = 4, .tolerance = 0});
  ASSERT_TRUE(detector.AddAnomalousPattern({7, 7, 7, 7}).ok());
  ts::DiscreteSequence probe("p", 8, {0, 1, 7, 7, 7, 7, 1, 0});
  auto scores = detector.Score(probe).value();
  double max_score = 0.0;
  for (double s : scores) max_score = std::max(max_score, s);
  EXPECT_NEAR(max_score, 1.0, 1e-9);
}

TEST(AnomalyDictionary, RejectsWrongPatternLength) {
  AnomalyDictionaryDetector detector(AnomalyDictionaryOptions{.window = 4});
  EXPECT_FALSE(detector.AddAnomalousPattern({1, 2}).ok());
}

TEST(AnomalyDictionary, SupervisedTrainingBuildsDictionary) {
  const auto dataset = detect_test::CleanSequences();
  AnomalyDictionaryDetector detector;
  ASSERT_TRUE(
      detector.TrainSupervised(dataset.train, dataset.train_labels).ok());
  EXPECT_GT(detector.dictionary_size(), 0u);
  for (size_t s = 0; s < dataset.test.size(); ++s) {
    auto scores = detector.Score(dataset.test[s]);
    ASSERT_TRUE(scores.ok());
    ExpectScoresInUnitInterval(scores.value());
    ExpectAnomaliesScoreHigher(scores.value(), dataset.test_labels[s], 0.05);
  }
}

TEST(AnomalyDictionary, KnownNormalScoresZeroNovelIntermediate) {
  ts::DiscreteSequence normal("n", 4);
  for (int i = 0; i < 100; ++i) normal.Append(i % 4);
  std::vector<Labels> labels = {Labels(100, 0)};
  // A labeled run covering a window majority so the dictionary gets an
  // entry (isolated single labels are boundary noise by design).
  labels[0][50] = 1;
  labels[0][51] = 1;
  labels[0][52] = 1;
  labels[0][53] = 1;
  AnomalyDictionaryDetector detector(
      AnomalyDictionaryOptions{.window = 4, .tolerance = 0,
                               .novelty_score = 0.5});
  ASSERT_TRUE(detector.TrainSupervised({normal}, labels).ok());
  // A window from far outside the training distribution but not in the
  // dictionary: novelty score.
  ts::DiscreteSequence shuffled("s", 4, {3, 1, 0, 2, 1, 3, 0, 1});
  auto scores = detector.Score(shuffled).value();
  bool any_novel = false;
  for (double s : scores) {
    if (s == 0.5) any_novel = true;
  }
  EXPECT_TRUE(any_novel);
}

TEST(RareSubsequence, CountsVocabulary) {
  const auto dataset = CanonicalSequences();
  RareSubsequenceDetector detector;
  ASSERT_TRUE(detector.Train(dataset.train).ok());
  EXPECT_GT(detector.vocabulary_size(), 0u);
}

TEST(RareSubsequence, FlagsCorruptedBursts) {
  // Substitution-free normals: an exact-frequency technique cannot tell a
  // benign rare word from an injected one, so the clean dataset isolates
  // what the technique is actually for.
  const auto dataset = detect_test::CleanSequences();
  RareSubsequenceDetector detector;
  ASSERT_TRUE(detector.Train(dataset.train).ok());
  for (size_t s = 0; s < dataset.test.size(); ++s) {
    auto scores = detector.Score(dataset.test[s]);
    ASSERT_TRUE(scores.ok());
    ExpectScoresInUnitInterval(scores.value());
    ExpectAnomaliesScoreHigher(scores.value(), dataset.test_labels[s], 0.05);
  }
}

TEST(RareSubsequence, SeriesPathDetectsSpikes) {
  const auto dataset = CanonicalSeries();
  RareSubsequenceDetector detector;
  ASSERT_TRUE(detector.TrainSeries(dataset.train).ok());
  // At least one injected anomaly region should be visible via SAX words.
  bool any_separation = false;
  for (size_t s = 0; s < dataset.test.size(); ++s) {
    auto scores = detector.ScoreSeries(dataset.test[s]);
    ASSERT_TRUE(scores.ok());
    double anomalous_mean = 0.0;
    double normal_mean = 0.0;
    size_t a = 0;
    size_t n = 0;
    for (size_t i = 0; i < scores->size(); ++i) {
      if (dataset.test_labels[s][i] != 0) {
        anomalous_mean += (*scores)[i];
        ++a;
      } else {
        normal_mean += (*scores)[i];
        ++n;
      }
    }
    if (a > 0 && n > 0 &&
        anomalous_mean / a > normal_mean / n + 0.05) {
      any_separation = true;
    }
  }
  EXPECT_TRUE(any_separation);
}

TEST(RareSubsequence, FrequentWordsScoreLowerThanRare) {
  ts::DiscreteSequence cyclic("c", 4);
  for (int i = 0; i < 300; ++i) cyclic.Append(i % 3);
  RareSubsequenceDetector detector(RareSubsequenceOptions{.word = 3});
  ASSERT_TRUE(detector.Train({cyclic}).ok());
  auto frequent = detector.Score(cyclic).value();
  ts::DiscreteSequence rare("r", 4, {3, 3, 3, 3, 3});
  auto rare_scores = detector.Score(rare).value();
  double frequent_max = 0.0;
  for (double s : frequent) frequent_max = std::max(frequent_max, s);
  double rare_max = 0.0;
  for (double s : rare_scores) rare_max = std::max(rare_max, s);
  EXPECT_GT(rare_max, frequent_max);
}

}  // namespace
}  // namespace hod::detect
