#ifndef HOD_FLEET_STATS_H_
#define HOD_FLEET_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/router.h"
#include "stream/stats.h"

namespace hod::fleet {

/// One plant's contribution to the fleet roll-up.
struct PlantStats {
  std::string plant_id;
  PlantPlacement placement;
  stream::StreamStatsSnapshot stats;
};

/// Fleet-wide counter roll-up: the elementwise sum of every live plant's
/// StreamStatsSnapshot plus the `retired` fold of plants removed since
/// startup — so `aggregate` is monotone over the fleet's whole history
/// (no counts vanish when a line is drained, none double-count when it
/// is polled again).
struct FleetStatsSnapshot {
  size_t plants = 0;            ///< live plants at snapshot time
  uint64_t removed_plants = 0;  ///< plants drained-and-removed so far
  /// Sum over live plants + `retired`.
  stream::StreamStatsSnapshot aggregate;
  /// Final snapshots of removed plants, folded at drain time.
  stream::StreamStatsSnapshot retired;
  /// Live per-plant snapshots, sorted by plant id.
  std::vector<PlantStats> per_plant;

  /// Multi-line human-readable rendering for examples/benches.
  std::string ToString() const;
};

}  // namespace hod::fleet

#endif  // HOD_FLEET_STATS_H_
