#ifndef HOD_STREAM_PEER_GROUP_H_
#define HOD_STREAM_PEER_GROUP_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "hierarchy/level.h"
#include "hierarchy/production.h"
#include "hierarchy/sensor_registry.h"
#include "stream/stats.h"
#include "timeseries/time_series.h"
#include "util/statusor.h"

namespace hod::stream {

/// Space-axis comparison options (the sysTrace-failslow split: per-sensor
/// monitors compare a channel against its own history — *time* axis —
/// which absorbs slow drifts; this layer compares it against the live
/// distribution of its redundancy group — *space* axis — where a drifting
/// channel leaves the band long before its own baseline notices).
struct PeerGroupOptions {
  /// Master switch; a disabled monitor costs one branch per sample.
  bool enabled = true;
  /// Residual ring capacity per member (the rolling robust summary).
  size_t window = 64;
  /// Residuals a member must accumulate before it is scored.
  size_t warmup = 16;
  /// Fresh peers required to form a reference; below this the sample only
  /// refreshes the member's last-value cache.
  size_t min_peers = 1;
  /// A peer whose last sample is further than this (stream time) behind
  /// the observed sample is too stale to serve as a reference.
  double peer_freshness = 64.0;
  /// Robust z threshold on the deviation of the current residual from the
  /// member's own residual history (median/MAD).
  double deviation_z = 6.0;
  /// Threshold on the slope statistic |OLS slope| * span / detrended-MAD
  /// over the residual ring — the gain-drift test: a ramp relative to the
  /// peers shows up here even while each individual residual stays in
  /// band. The scale is measured around the fitted line, so the ramp
  /// cannot inflate its own denominator.
  double slope_z = 4.0;
  /// Consecutive breaching observations before a deviation fires.
  size_t deviation_after = 4;
  /// Clean observations after a fire before the member may fire again.
  size_t rearm_streak = 64;
  /// Floor on the MAD-derived scale (degenerate identical-peer windows).
  double min_scale = 1e-3;
  /// ---- Quarantine-onset correlation (collector side) ------------------
  /// Declare a group outage when at least this many distinct sensors'
  /// quarantine onsets land within `outage_window` of each other. 0
  /// disables correlation entirely: every quarantine keeps emitting its
  /// own kSensorFault finding, exactly as before this layer existed.
  size_t outage_min_sensors = 0;
  /// Onset clustering window (stream time).
  double outage_window = 32.0;
  /// Entity name the single kGroupOutage finding is filed under.
  std::string outage_entity = "plant";
};

/// Same-configuration cohorts derived from machine-configuration
/// similarity: machines are greedily clustered (hierarchy order, each
/// joining the first cluster whose representative shares its
/// configuration schema with L2 value distance <= `tolerance`), and each
/// sensor role (name|unit) spanning >= 2 machines of a cluster becomes
/// one cohort "cfg:<representative machine>:<role>". Deterministic:
/// clustering visits machines in hierarchy order and emits sorted map
/// keys. This is the paper's "same configuration" comparison basis —
/// peers need not be redundant sensors of one machine, just like sensors
/// on machines doing the same work.
std::map<std::string, std::vector<std::string>> ConfigurationCohorts(
    const hierarchy::Production& production, double tolerance = 1e-6);

/// One fired space-axis deviation.
struct PeerDeviation {
  std::string sensor_id;
  std::string group_id;
  hierarchy::ProductionLevel level = hierarchy::ProductionLevel::kPhase;
  ts::TimePoint ts = 0.0;
  double value = 0.0;
  /// value - median(fresh peer values), the scored quantity.
  double residual = 0.0;
  /// Robust z of the residual against the member's residual history.
  double value_z = 0.0;
  /// Slope statistic of the residual ring (the drift test).
  double slope_z = 0.0;
};

/// Checkpoint unit: one member's complete rolling state.
struct PeerMemberState {
  std::string sensor_id;
  bool has_last = false;
  ts::TimePoint last_ts = 0.0;
  double last_value = 0.0;
  std::vector<ts::TimePoint> ring_ts;
  std::vector<double> ring_residual;
  uint64_t breach_streak = 0;
  uint64_t calm_streak = 0;
  bool fired = false;
  uint64_t deviations = 0;
};

/// Checkpoint unit: one group.
struct PeerGroupState {
  std::string group_id;
  std::vector<PeerMemberState> members;
};

/// Streaming peer-group comparison: per redundancy group (or any caller-
/// defined same-configuration cohort), keeps each member's last value and
/// a rolling ring of residuals against the group median, and scores every
/// observation's deviation and slope against that robust summary.
///
/// Thread model: groups are sealed before the engine starts (AddGroup is
/// not thread-safe); each group has its own mutex, so members scored on
/// different shard workers serialize only against their own group. A
/// sensor may belong to several groups; Observe visits each under its own
/// lock (never nested) and returns the strongest fired deviation.
class PeerGroupMonitor {
 public:
  /// `stats` may be nullptr (no counting); must outlive the monitor.
  explicit PeerGroupMonitor(PeerGroupOptions options = {},
                            StreamStats* stats = nullptr);

  /// Registers one peer group. InvalidArgument on an empty group id,
  /// fewer than two distinct members, or a duplicate group id.
  Status AddGroup(const std::string& group_id,
                  const std::vector<std::string>& members);

  /// Registers every redundancy group of `registry` with >= 2 members.
  Status AddGroupsFromRegistry(const hierarchy::SensorRegistry& registry);

  /// Registers every ConfigurationCohorts group of `production` — the
  /// machine-configuration-similarity counterpart of the redundancy-group
  /// path above.
  Status AddGroupsFromConfiguration(const hierarchy::Production& production,
                                    double tolerance = 1e-6);

  bool enabled() const { return options_.enabled; }
  const PeerGroupOptions& options() const { return options_; }
  size_t num_groups() const { return groups_.size(); }

  /// True when `sensor_id` belongs to at least one group.
  bool Tracks(const std::string& sensor_id) const {
    return index_.find(sensor_id) != index_.end();
  }

  /// Feeds one accepted sample (the sensor's scoring thread). Returns the
  /// strongest deviation fired by this observation, if any.
  std::optional<PeerDeviation> Observe(const std::string& sensor_id,
                                       hierarchy::ProductionLevel level,
                                       ts::TimePoint ts, double value);

  /// Every fired deviation so far, in fire order.
  std::vector<PeerDeviation> Deviations() const;

  /// Checkpoint support. RestoreState requires every group and member to
  /// already be registered (AddGroup with the same membership).
  std::vector<PeerGroupState> SaveState() const;
  Status RestoreState(const std::vector<PeerGroupState>& groups);

 private:
  struct Member {
    std::string sensor_id;
    bool has_last = false;
    ts::TimePoint last_ts = 0.0;
    double last_value = 0.0;
    std::deque<ts::TimePoint> ring_ts;
    std::deque<double> ring_residual;
    uint64_t breach_streak = 0;
    uint64_t calm_streak = 0;
    bool fired = false;
    uint64_t deviations = 0;
  };

  struct Group {
    std::string group_id;
    mutable std::mutex mu;
    std::vector<Member> members;
    std::map<std::string, size_t> member_index;
  };

  /// Scores one observation within one group. Caller holds `group.mu`.
  std::optional<PeerDeviation> ObserveInGroup(
      Group& group, size_t member_index, hierarchy::ProductionLevel level,
      ts::TimePoint ts, double value);
  void LogDeviation(const PeerDeviation& deviation);

  PeerGroupOptions options_;
  StreamStats* stats_;
  /// std::map: deterministic iteration for SaveState.
  std::map<std::string, std::unique_ptr<Group>> groups_;
  /// sensor id -> (group, member slot) for every membership.
  std::map<std::string, std::vector<std::pair<Group*, size_t>>> index_;

  mutable std::mutex log_mu_;
  std::vector<PeerDeviation> log_;
};

}  // namespace hod::stream

#endif  // HOD_STREAM_PEER_GROUP_H_
