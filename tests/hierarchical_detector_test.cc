// HierarchicalDetector unit behaviour: level primitives, caching, scope
// resolution, error paths.

#include "core/hierarchical_detector.h"

#include <gtest/gtest.h>

#include "sim/plant.h"

namespace hod::core {
namespace {

class HierarchicalDetectorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim::PlantOptions options;
    options.num_lines = 1;
    options.machines_per_line = 2;
    options.jobs_per_machine = 8;
    options.seed = 41;
    sim::ScenarioOptions scenario;
    scenario.process_anomaly_rate = 0.3;
    scenario.glitch_rate = 0.2;
    plant_ = sim::BuildPlant(options, scenario).value();
    detector_ = std::make_unique<HierarchicalDetector>(&plant_.production);
  }

  sim::SimulatedPlant plant_;
  std::unique_ptr<HierarchicalDetector> detector_;
};

TEST_F(HierarchicalDetectorTest, ScorePhaseSeriesSizesMatch) {
  const auto& machine = plant_.production.lines[0].machines[0];
  const auto& job = machine.jobs[0];
  PhaseQuery query{machine.id, job.id, "printing",
                   machine.id + ".bed_temp_a"};
  auto scores = detector_->ScorePhaseSeries(query);
  ASSERT_TRUE(scores.ok()) << scores.status().ToString();
  EXPECT_EQ(scores->size(),
            job.phases[3].sensor_series.at(query.sensor_id).size());
  for (double s : scores.value()) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST_F(HierarchicalDetectorTest, UnknownScopesRejected) {
  PhaseQuery bad{"ghost-machine", "ghost-job", "printing", "ghost"};
  EXPECT_FALSE(detector_->ScorePhaseSeries(bad).ok());
  EXPECT_FALSE(detector_->ScoreJobs("ghost").ok());
  EXPECT_FALSE(detector_->ScoreEnvironment("ghost").ok());
  EXPECT_FALSE(detector_->ScoreLineJobs("ghost").ok());
  EXPECT_FALSE(detector_->FindJobOutliers("ghost").ok());
  EXPECT_FALSE(detector_->FindEnvironmentOutliers("ghost").ok());
  EXPECT_FALSE(detector_->FindLineOutliers("ghost").ok());
}

TEST_F(HierarchicalDetectorTest, UnknownSensorInKnownJobRejected) {
  const auto& machine = plant_.production.lines[0].machines[0];
  PhaseQuery query{machine.id, machine.jobs[0].id, "printing", "ghost"};
  EXPECT_FALSE(detector_->ScorePhaseSeries(query).ok());
}

TEST_F(HierarchicalDetectorTest, ScoreJobsOnePerJob) {
  const auto& machine = plant_.production.lines[0].machines[0];
  auto scores = detector_->ScoreJobs(machine.id);
  ASSERT_TRUE(scores.ok());
  EXPECT_EQ(scores->size(), machine.jobs.size());
}

TEST_F(HierarchicalDetectorTest, ScoreEnvironmentMatchesSeriesLength) {
  auto scores = detector_->ScoreEnvironment("line1");
  ASSERT_TRUE(scores.ok());
  EXPECT_EQ(scores->size(),
            plant_.production.lines[0].environment[0].series.size());
}

TEST_F(HierarchicalDetectorTest, ScoreLineJobsAcrossMachines) {
  auto scores = detector_->ScoreLineJobs("line1");
  ASSERT_TRUE(scores.ok());
  EXPECT_EQ(scores->size(), 16u);  // 2 machines x 8 jobs
}

TEST_F(HierarchicalDetectorTest, ScoreMachinesCoversAll) {
  auto scores = detector_->ScoreMachines();
  ASSERT_TRUE(scores.ok());
  EXPECT_EQ(scores->size(), 2u);
  for (const auto& [machine_id, score] : scores.value()) {
    EXPECT_GE(score, 0.0);
    EXPECT_LE(score, 1.0);
  }
}

TEST_F(HierarchicalDetectorTest, RepeatedQueriesAreCachedAndStable) {
  const auto& machine = plant_.production.lines[0].machines[0];
  auto first = detector_->ScoreJobs(machine.id).value();
  auto second = detector_->ScoreJobs(machine.id).value();
  EXPECT_EQ(first, second);
}

TEST_F(HierarchicalDetectorTest, ReportCarriesAlgorithmAndLevel) {
  const auto& machine = plant_.production.lines[0].machines[0];
  auto report = detector_->FindJobOutliers(machine.id);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->start_level, hierarchy::ProductionLevel::kJob);
  EXPECT_EQ(report->algorithm, "ExpectationMaximization");
}

TEST_F(HierarchicalDetectorTest, FindingsRespectThreshold) {
  const auto& machine = plant_.production.lines[0].machines[0];
  auto report = detector_->FindJobOutliers(machine.id).value();
  for (const auto& finding : report.findings) {
    EXPECT_GT(finding.outlierness, detector_->options().outlier_threshold);
    EXPECT_GE(finding.global_score, 1);
    EXPECT_LE(finding.global_score, hierarchy::kNumLevels);
    EXPECT_GE(finding.support, 0.0);
    EXPECT_LE(finding.support, 1.0);
    EXPECT_FALSE(finding.confirmed_levels.empty());
  }
}

TEST_F(HierarchicalDetectorTest, GlobalScoreCountsConfirmedChain) {
  // For every finding: global_score <= confirmed levels count and the
  // start level is always confirmed.
  const auto& machine = plant_.production.lines[0].machines[0];
  auto report = detector_->FindJobOutliers(machine.id).value();
  for (const auto& finding : report.findings) {
    EXPECT_LE(static_cast<size_t>(finding.global_score),
              finding.confirmed_levels.size() +
                  static_cast<size_t>(hierarchy::kNumLevels));
    bool start_confirmed = false;
    for (auto level : finding.confirmed_levels) {
      if (level == hierarchy::ProductionLevel::kJob) start_confirmed = true;
    }
    EXPECT_TRUE(start_confirmed);
  }
}

TEST_F(HierarchicalDetectorTest, MismatchedPolicyChangesAlgorithm) {
  HierarchicalDetectorOptions options;
  options.policy = SelectorPolicy::kMismatched;
  HierarchicalDetector mismatched(&plant_.production, options);
  const auto& machine = plant_.production.lines[0].machines[0];
  auto report = mismatched.FindJobOutliers(machine.id);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->algorithm, "AutoregressiveModel+Stream");
}

TEST_F(HierarchicalDetectorTest, ProductionReportRunsGlobally) {
  auto report = detector_->FindProductionOutliers();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->start_level, hierarchy::ProductionLevel::kProduction);
  for (const auto& finding : report->findings) {
    // Production findings have no corresponding sensors.
    EXPECT_EQ(finding.corresponding_sensors, 0u);
  }
}

}  // namespace
}  // namespace hod::core
