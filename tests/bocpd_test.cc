#include "core/bocpd.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <optional>
#include <vector>

#include "util/rng.h"

namespace hod::core {
namespace {

/// Gaussian stream around `level` with one step of `delta` at `shift_at`.
std::vector<double> MakeStepStream(uint64_t seed, size_t n, size_t shift_at,
                                   double level, double sigma, double delta) {
  Rng rng(seed);
  std::vector<double> values;
  values.reserve(n);
  for (size_t t = 0; t < n; ++t) {
    const double base = t >= shift_at ? level + delta : level;
    values.push_back(base + rng.Gaussian(0.0, sigma));
  }
  return values;
}

TEST(BocpdDetector, ConfirmsStepShiftWithinSampleBudget) {
  BocpdOptions options;
  options.warmup = 32;
  BocpdDetector detector(options);

  const size_t shift_at = 200;
  const std::vector<double> values =
      MakeStepStream(7, 300, shift_at, 55.0, 0.25, 6.0);
  std::optional<BocpdShift> confirmed;
  size_t confirmed_at = 0;
  for (size_t t = 0; t < values.size(); ++t) {
    auto shift = detector.Push(values[t]);
    if (shift.has_value()) {
      ASSERT_FALSE(confirmed.has_value()) << "second confirm at t=" << t;
      confirmed = shift;
      confirmed_at = t;
    }
  }
  ASSERT_TRUE(confirmed.has_value());
  EXPECT_GE(confirmed_at, shift_at);
  // Detection delay: the posterior must concentrate within the
  // min_run_for_shift window plus slack — the budget the streaming gate
  // holds the detector to.
  EXPECT_LE(confirmed_at - shift_at, 2 * options.min_run_for_shift)
      << "confirmed at " << confirmed_at;
  EXPECT_NEAR(confirmed->shift.before_mean, 55.0, 0.5);
  // The after-level is the winning bucket's posterior mean over just a
  // few post-shift samples, so it is still pulled toward the prior — it
  // must clearly sit in the new regime, not match it exactly yet.
  EXPECT_GT(confirmed->shift.after_mean, 57.0);
  EXPECT_LT(confirmed->shift.after_mean, 62.0);
  EXPECT_GE(confirmed->shift.magnitude_sigmas, options.min_magnitude_sigmas);
  EXPECT_GE(confirmed->evidence, options.shift_posterior);
  EXPECT_GE(confirmed->run_length, 1u);
  EXPECT_EQ(detector.shifts_confirmed(), 1u);
}

TEST(BocpdDetector, StationaryStreamNeverConfirms) {
  BocpdDetector detector;
  Rng rng(13);
  for (size_t t = 0; t < 5000; ++t) {
    auto shift = detector.Push(42.0 + rng.Gaussian(0.0, 0.5));
    EXPECT_FALSE(shift.has_value()) << "false re-baseline at t=" << t;
  }
  EXPECT_EQ(detector.shifts_confirmed(), 0u);
}

TEST(BocpdDetector, MagnitudeGateIgnoresSetpointJitter) {
  BocpdOptions options;
  options.min_magnitude_sigmas = 3.0;
  BocpdDetector detector(options);
  // A 1-sigma step: a genuine changepoint statistically, but below the
  // magnitude gate — jitter, not a regime change.
  const std::vector<double> values =
      MakeStepStream(21, 400, 200, 10.0, 0.5, 0.5);
  for (double value : values) {
    EXPECT_FALSE(detector.Push(value).has_value());
  }
  EXPECT_EQ(detector.shifts_confirmed(), 0u);
}

TEST(BocpdDetector, EachPhysicalShiftConfirmsExactlyOnce) {
  BocpdOptions options;
  options.cooldown = 48;
  BocpdDetector detector(options);
  Rng rng(31);
  size_t confirms = 0;
  // Three regimes: 0, +8, -4 — two physical shifts.
  for (size_t t = 0; t < 900; ++t) {
    double level = 0.0;
    if (t >= 300) level = 8.0;
    if (t >= 600) level = -4.0;
    if (detector.Push(level + rng.Gaussian(0.0, 0.4)).has_value()) {
      ++confirms;
    }
  }
  EXPECT_EQ(confirms, 2u);
  EXPECT_EQ(detector.shifts_confirmed(), 2u);
}

TEST(BocpdDetector, SaveRestoreResumesBitIdentically) {
  BocpdOptions options;
  BocpdDetector original(options);
  const std::vector<double> values =
      MakeStepStream(43, 400, 260, 20.0, 0.3, 5.0);
  // Feed half, snapshot, then compare the tail sample by sample.
  const size_t split = 200;
  for (size_t t = 0; t < split; ++t) (void)original.Push(values[t]);

  BocpdState state = original.SaveState();
  BocpdDetector restored(options);
  ASSERT_TRUE(restored.RestoreState(state).ok());

  for (size_t t = split; t < values.size(); ++t) {
    auto a = original.Push(values[t]);
    auto b = restored.Push(values[t]);
    ASSERT_EQ(a.has_value(), b.has_value()) << "t=" << t;
    if (a.has_value()) {
      EXPECT_EQ(a->shift.before_mean, b->shift.before_mean);
      EXPECT_EQ(a->shift.after_mean, b->shift.after_mean);
      EXPECT_EQ(a->shift.magnitude_sigmas, b->shift.magnitude_sigmas);
      EXPECT_EQ(a->evidence, b->evidence);
      EXPECT_EQ(a->run_length, b->run_length);
    }
    EXPECT_EQ(original.shift_mass(), restored.shift_mass()) << "t=" << t;
    EXPECT_EQ(original.map_run_length(), restored.map_run_length());
  }
  EXPECT_EQ(original.shifts_confirmed(), restored.shifts_confirmed());
}

TEST(BocpdDetector, TruncationKeepsStateConstantSize) {
  BocpdOptions options;
  options.max_run_length = 32;
  BocpdDetector detector(options);
  Rng rng(3);
  for (size_t t = 0; t < 10000; ++t) {
    (void)detector.Push(rng.Gaussian(0.0, 1.0));
    if (t % 1000 == 999) {
      EXPECT_LE(detector.SaveState().weight.size(),
                options.max_run_length + 1);
    }
  }
}

TEST(BocpdDetector, SanitizesDegenerateOptions) {
  BocpdOptions options;
  options.hazard_lambda = 0.0;      // would divide by zero
  options.max_run_length = 0;       // no room for any posterior
  options.min_run_for_shift = 999;  // larger than the truncation bound
  options.shift_posterior = -1.0;
  options.prior_kappa = 0.0;
  BocpdDetector detector(options);
  Rng rng(5);
  for (size_t t = 0; t < 500; ++t) {
    (void)detector.Push(rng.Gaussian(0.0, 1.0));
  }
  EXPECT_TRUE(std::isfinite(detector.shift_mass()));
}

TEST(BocpdDetector, RestoreRejectsMalformedState) {
  BocpdDetector detector;
  (void)detector.Push(1.0);
  BocpdState skewed = detector.SaveState();
  skewed.mu.push_back(0.0);  // length skew across the parallel arrays
  EXPECT_FALSE(BocpdDetector().RestoreState(skewed).ok());

  BocpdState negative = detector.SaveState();
  for (double& k : negative.kappa) k = -1.0;
  EXPECT_FALSE(BocpdDetector().RestoreState(negative).ok());

  BocpdState empty_but_seeded;
  empty_but_seeded.prior_seeded = true;
  EXPECT_FALSE(BocpdDetector().RestoreState(empty_but_seeded).ok());
}

TEST(BocpdDetector, SurvivesExtremeValuesWithoutNonFiniteState) {
  BocpdDetector detector;
  Rng rng(17);
  for (size_t t = 0; t < 200; ++t) {
    (void)detector.Push(rng.Gaussian(0.0, 1.0));
  }
  // A value far outside any predictive support underflows every bucket's
  // likelihood; the detector must recover deterministically, not emit
  // NaNs forever.
  (void)detector.Push(1e300);
  for (size_t t = 0; t < 200; ++t) {
    (void)detector.Push(rng.Gaussian(0.0, 1.0));
    EXPECT_TRUE(std::isfinite(detector.shift_mass()));
  }
}

}  // namespace
}  // namespace hod::core
