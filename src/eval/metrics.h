#ifndef HOD_EVAL_METRICS_H_
#define HOD_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

#include "util/statusor.h"

namespace hod::eval {

/// Binary ground truth (1 = anomalous).
using Truth = std::vector<uint8_t>;

/// Confusion counts at a fixed threshold.
struct Confusion {
  size_t true_positives = 0;
  size_t false_positives = 0;
  size_t true_negatives = 0;
  size_t false_negatives = 0;

  double Precision() const;
  double Recall() const;
  double F1() const;
  double FalsePositiveRate() const;
};

/// Point-wise confusion of thresholded scores vs truth (size mismatch is
/// an error).
StatusOr<Confusion> Confuse(const std::vector<double>& scores,
                            const Truth& truth, double threshold);

/// Event-tolerant confusion: a true anomalous point counts as detected
/// when any score within `tolerance` indices exceeds the threshold, and a
/// flagged point is a false positive only when no true anomaly lies within
/// `tolerance`. This matches how window detectors localize anomalies.
StatusOr<Confusion> ConfuseWithTolerance(const std::vector<double>& scores,
                                         const Truth& truth, double threshold,
                                         size_t tolerance);

/// Area under the ROC curve via the rank statistic (ties get midranks).
/// Returns 0.5 when either class is empty.
StatusOr<double> RocAuc(const std::vector<double>& scores, const Truth& truth);

/// Area under the precision-recall curve (average precision).
/// Returns the positive rate when there are no positives.
StatusOr<double> PrAuc(const std::vector<double>& scores, const Truth& truth);

/// Maximum F1 over all score thresholds, with the achieving threshold.
struct BestF1Result {
  double f1 = 0.0;
  double threshold = 0.5;
  Confusion confusion;
};
StatusOr<BestF1Result> BestF1(const std::vector<double>& scores,
                              const Truth& truth);

/// BestF1 with event tolerance (sweeps distinct score values).
StatusOr<BestF1Result> BestF1WithTolerance(const std::vector<double>& scores,
                                           const Truth& truth,
                                           size_t tolerance);

/// ---- Segment-level evaluation ------------------------------------------
/// Sustained anomalies (temporary changes, level shifts) are *events*, not
/// points: an operator needs each event caught once, and pointwise metrics
/// over-reward flagging every sample of a long event. Segment scoring
/// treats each maximal run of anomalous truth labels as one event.

/// One maximal run of anomalous labels.
struct Segment {
  size_t begin = 0;
  size_t end = 0;  // half-open
};

/// Extracts maximal anomalous runs from truth labels.
std::vector<Segment> ExtractSegments(const Truth& truth);

/// Segment confusion at a threshold: an event counts as detected when any
/// score within it (or within `tolerance` samples of its edges) exceeds
/// the threshold; flagged points not within `tolerance` of any event are
/// false-positive points.
struct SegmentConfusion {
  size_t detected_events = 0;
  size_t missed_events = 0;
  size_t false_positive_points = 0;

  double EventRecall() const;
};
StatusOr<SegmentConfusion> ConfuseSegments(const std::vector<double>& scores,
                                           const Truth& truth,
                                           double threshold,
                                           size_t tolerance);

/// Segment F1 at a threshold: harmonic mean of event recall and a point
/// precision that charges each false-positive point (events detected /
/// (events detected + FP points) as the precision proxy).
StatusOr<double> SegmentF1(const std::vector<double>& scores,
                           const Truth& truth, double threshold,
                           size_t tolerance);

/// Max segment F1 over all thresholds.
StatusOr<BestF1Result> BestSegmentF1(const std::vector<double>& scores,
                                     const Truth& truth, size_t tolerance);

}  // namespace hod::eval

#endif  // HOD_EVAL_METRICS_H_
