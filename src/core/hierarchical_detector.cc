#include "core/hierarchical_detector.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "detect/baseline.h"
#include "detect/fsa_detector.h"
#include "detect/score_utils.h"
#include "hierarchy/level_data.h"

namespace hod::core {

namespace {

/// Largest score within `tolerance` seconds of `t` among timed scores.
double MaxScoreNear(const std::vector<double>& scores,
                    ts::TimePoint series_start, double interval,
                    ts::TimePoint t, double tolerance) {
  if (scores.empty() || interval <= 0.0) return 0.0;
  const double lo = (t - tolerance - series_start) / interval;
  const double hi = (t + tolerance - series_start) / interval;
  const size_t begin =
      lo <= 0.0 ? 0 : std::min(static_cast<size_t>(lo), scores.size());
  const size_t end =
      hi <= 0.0 ? 0
                : std::min(static_cast<size_t>(hi) + 1, scores.size());
  double best = 0.0;
  for (size_t i = begin; i < end; ++i) best = std::max(best, scores[i]);
  return best;
}

}  // namespace

HierarchicalDetector::HierarchicalDetector(
    const hierarchy::Production* production,
    HierarchicalDetectorOptions options)
    : production_(production),
      options_(options),
      selector_(options.policy) {}

StatusOr<std::string> HierarchicalDetector::LineOfMachine(
    const std::string& machine_id) const {
  for (const hierarchy::ProductionLine& line : production_->lines) {
    for (const hierarchy::Machine& machine : line.machines) {
      if (machine.id == machine_id) return line.id;
    }
  }
  return Status::NotFound("unknown machine '" + machine_id + "'");
}

// ---- Epoch cache ----------------------------------------------------------
//
// Every cached entry carries the epoch it was built at. A scope's dirty
// watermark is the epoch of the last MarkDirty/Invalidate touching it; an
// entry is stale when its build epoch is below that watermark (or below
// the global all_dirty_ watermark). Stale entries are rebuilt in place on
// the next query — invalidation itself is O(1) and never frees models.

uint64_t HierarchicalDetector::MachineEpochFloor(
    const std::string& machine_id) const {
  uint64_t floor = all_dirty_;
  const auto it = machine_dirty_.find(machine_id);
  if (it != machine_dirty_.end()) floor = std::max(floor, it->second);
  return floor;
}

uint64_t HierarchicalDetector::LineJobsEpochFloor(
    const std::string& line_id) const {
  uint64_t floor = all_dirty_;
  const auto it = line_jobs_dirty_.find(line_id);
  if (it != line_jobs_dirty_.end()) floor = std::max(floor, it->second);
  return floor;
}

uint64_t HierarchicalDetector::LineEnvEpochFloor(
    const std::string& line_id) const {
  uint64_t floor = all_dirty_;
  const auto it = line_env_dirty_.find(line_id);
  if (it != line_env_dirty_.end()) floor = std::max(floor, it->second);
  return floor;
}

uint64_t HierarchicalDetector::MachineScoresEpochFloor() const {
  return std::max(all_dirty_, production_dirty_);
}

void HierarchicalDetector::DirtyMachine(const std::string& machine_id) {
  ++epoch_;
  machine_dirty_[machine_id] = epoch_;
  // The machine's jobs feed its line's job series and the production-wide
  // machine summary matrix, so those scopes inherit the dirt.
  production_dirty_ = epoch_;
  auto line_or = LineOfMachine(machine_id);
  if (line_or.ok()) line_jobs_dirty_[line_or.value()] = epoch_;
  cache_stats_.epoch = epoch_;
}

Status HierarchicalDetector::MarkDirty(const std::string& entity_id) {
  // Machine id?
  if (hierarchy::FindMachine(*production_, entity_id).ok()) {
    DirtyMachine(entity_id);
    ++cache_stats_.invalidations;
    return Status::Ok();
  }
  // Line id? New line data touches both the environment channel and the
  // line-level job series.
  if (hierarchy::FindLine(*production_, entity_id).ok()) {
    ++epoch_;
    line_env_dirty_[entity_id] = epoch_;
    line_jobs_dirty_[entity_id] = epoch_;
    cache_stats_.epoch = epoch_;
    ++cache_stats_.invalidations;
    return Status::Ok();
  }
  // Sensor id: resolve to its machine, or — for environment sensors — to
  // the line whose environment channel it feeds.
  auto info_or = production_->sensors.Get(entity_id);
  if (info_or.ok()) {
    const hierarchy::SensorInfo& info = info_or.value();
    if (!info.machine_id.empty()) {
      DirtyMachine(info.machine_id);
      ++cache_stats_.invalidations;
      return Status::Ok();
    }
    for (const hierarchy::ProductionLine& line : production_->lines) {
      for (const hierarchy::EnvironmentChannel& channel : line.environment) {
        if (channel.sensor_id == entity_id) {
          ++epoch_;
          line_env_dirty_[line.id] = epoch_;
          cache_stats_.epoch = epoch_;
          ++cache_stats_.invalidations;
          return Status::Ok();
        }
      }
    }
  }
  return Status::NotFound("MarkDirty: entity '" + entity_id +
                          "' is not a known machine, line, or sensor");
}

Status HierarchicalDetector::Invalidate(hierarchy::ProductionLevel level,
                                        const std::string& id) {
  switch (level) {
    case hierarchy::ProductionLevel::kPhase:
    case hierarchy::ProductionLevel::kJob: {
      HOD_RETURN_IF_ERROR(hierarchy::FindMachine(*production_, id).status());
      DirtyMachine(id);
      ++cache_stats_.invalidations;
      return Status::Ok();
    }
    case hierarchy::ProductionLevel::kEnvironment: {
      HOD_RETURN_IF_ERROR(hierarchy::FindLine(*production_, id).status());
      ++epoch_;
      line_env_dirty_[id] = epoch_;
      cache_stats_.epoch = epoch_;
      ++cache_stats_.invalidations;
      return Status::Ok();
    }
    case hierarchy::ProductionLevel::kProductionLine: {
      HOD_RETURN_IF_ERROR(hierarchy::FindLine(*production_, id).status());
      ++epoch_;
      line_jobs_dirty_[id] = epoch_;
      cache_stats_.epoch = epoch_;
      ++cache_stats_.invalidations;
      return Status::Ok();
    }
    case hierarchy::ProductionLevel::kProduction:
      InvalidateAll();
      return Status::Ok();
  }
  return Status::InvalidArgument("Invalidate: unknown level");
}

void HierarchicalDetector::InvalidateAll() {
  all_dirty_ = ++epoch_;
  cache_stats_.epoch = epoch_;
  ++cache_stats_.invalidations;
}

// ---- Level primitives ----------------------------------------------------

StatusOr<std::vector<double>> HierarchicalDetector::ScorePhaseSeries(
    const PhaseQuery& query) {
  HOD_ASSIGN_OR_RETURN(const hierarchy::Machine* machine,
                       hierarchy::FindMachine(*production_, query.machine_id));
  // Lazily train one detector per (machine, sensor, phase) on all series
  // that sensor recorded in that phase across the machine's jobs.
  const std::string key =
      query.machine_id + "/" + query.sensor_id + "/" + query.phase_name;
  const uint64_t floor = MachineEpochFloor(query.machine_id);
  auto it = phase_detectors_.find(key);
  if (it == phase_detectors_.end() || it->second.epoch < floor) {
    std::vector<const ts::TimeSeries*> training_ptrs =
        hierarchy::CollectSensorSeries(*machine, query.sensor_id,
                                       query.phase_name);
    if (training_ptrs.empty()) {
      return Status::NotFound("no series for sensor '" + query.sensor_id +
                              "' in phase '" + query.phase_name + "'");
    }
    std::vector<ts::TimeSeries> training;
    training.reserve(training_ptrs.size());
    for (const ts::TimeSeries* s : training_ptrs) training.push_back(*s);
    std::unique_ptr<detect::SeriesDetector> detector =
        selector_.MakePhaseDetector();
    HOD_RETURN_IF_ERROR(detector->Train(training));
    auto& entry = phase_detectors_[key];
    entry.epoch = epoch_;
    entry.value = std::move(detector);
    it = phase_detectors_.find(key);
    ++cache_stats_.models_built;
  } else {
    ++cache_stats_.models_reused;
  }
  // Locate the queried job's series.
  HOD_ASSIGN_OR_RETURN(const hierarchy::Job* job,
                       hierarchy::FindJob(*production_, query.job_id));
  for (const hierarchy::Phase& phase : job->phases) {
    if (phase.name != query.phase_name) continue;
    const auto series_it = phase.sensor_series.find(query.sensor_id);
    if (series_it == phase.sensor_series.end()) break;
    return it->second.value->Score(series_it->second);
  }
  return Status::NotFound("job '" + query.job_id + "' has no series for '" +
                          query.sensor_id + "' in phase '" +
                          query.phase_name + "'");
}

StatusOr<std::vector<double>> HierarchicalDetector::ScorePhaseEvents(
    const std::string& machine_id, const std::string& job_id,
    const std::string& phase_name) {
  HOD_ASSIGN_OR_RETURN(const hierarchy::Machine* machine,
                       hierarchy::FindMachine(*production_, machine_id));
  const std::string key = machine_id + "/" + phase_name;
  const uint64_t floor = MachineEpochFloor(machine_id);
  auto it = event_detectors_.find(key);
  if (it == event_detectors_.end() || it->second.epoch < floor) {
    // Train on every job's event sequence for this phase name (the
    // queried job included — contamination is acceptable, anomalous FAULT
    // symbols are rare).
    std::vector<ts::DiscreteSequence> training;
    for (const hierarchy::Job& job : machine->jobs) {
      for (const hierarchy::Phase& phase : job.phases) {
        if (phase.name == phase_name && !phase.events.empty()) {
          training.push_back(phase.events);
        }
      }
    }
    if (training.empty()) {
      return Status::NotFound("no event sequences for phase '" + phase_name +
                              "'");
    }
    auto detector = std::make_unique<detect::FsaDetector>();
    HOD_RETURN_IF_ERROR(detector->Train(training));
    auto& entry = event_detectors_[key];
    entry.epoch = epoch_;
    entry.value = std::move(detector);
    it = event_detectors_.find(key);
    ++cache_stats_.models_built;
  } else {
    ++cache_stats_.models_reused;
  }
  HOD_ASSIGN_OR_RETURN(const hierarchy::Job* job,
                       hierarchy::FindJob(*production_, job_id));
  for (const hierarchy::Phase& phase : job->phases) {
    if (phase.name == phase_name) return it->second.value->Score(phase.events);
  }
  return Status::NotFound("job '" + job_id + "' has no phase '" +
                          phase_name + "'");
}

namespace {

/// Aligned channel vector of a phase, in deterministic (map) order.
std::vector<ts::TimeSeries> PhaseChannels(const hierarchy::Phase& phase) {
  std::vector<ts::TimeSeries> channels;
  for (const auto& [sensor_id, series] : phase.sensor_series) {
    channels.push_back(series);
  }
  return channels;
}

}  // namespace

StatusOr<std::vector<double>> HierarchicalDetector::ScorePhaseMultivariate(
    const std::string& machine_id, const std::string& job_id,
    const std::string& phase_name) {
  HOD_ASSIGN_OR_RETURN(const hierarchy::Machine* machine,
                       hierarchy::FindMachine(*production_, machine_id));
  const std::string key = machine_id + "/" + phase_name;
  const uint64_t floor = MachineEpochFloor(machine_id);
  auto it = var_models_.find(key);
  if (it == var_models_.end() || it->second.epoch < floor) {
    std::vector<std::vector<ts::TimeSeries>> groups;
    for (const hierarchy::Job& job : machine->jobs) {
      for (const hierarchy::Phase& phase : job.phases) {
        if (phase.name == phase_name && !phase.sensor_series.empty()) {
          groups.push_back(PhaseChannels(phase));
        }
      }
    }
    if (groups.empty()) {
      return Status::NotFound("no sensor channels for phase '" + phase_name +
                              "'");
    }
    auto model = std::make_unique<detect::VarDetector>();
    HOD_RETURN_IF_ERROR(model->Train(groups));
    auto& entry = var_models_[key];
    entry.epoch = epoch_;
    entry.value = std::move(model);
    it = var_models_.find(key);
    ++cache_stats_.models_built;
  } else {
    ++cache_stats_.models_reused;
  }
  HOD_ASSIGN_OR_RETURN(const hierarchy::Job* job,
                       hierarchy::FindJob(*production_, job_id));
  for (const hierarchy::Phase& phase : job->phases) {
    if (phase.name == phase_name) {
      return it->second.value->Score(PhaseChannels(phase));
    }
  }
  return Status::NotFound("job '" + job_id + "' has no phase '" +
                          phase_name + "'");
}

StatusOr<const std::vector<HierarchicalDetector::TimedScore>*>
HierarchicalDetector::JobScores(const std::string& machine_id) {
  const uint64_t floor = MachineEpochFloor(machine_id);
  auto it = job_scores_.find(machine_id);
  if (it != job_scores_.end() && it->second.epoch >= floor) {
    ++cache_stats_.scores_reused;
    return &it->second.value;
  }

  HOD_ASSIGN_OR_RETURN(const hierarchy::Machine* machine,
                       hierarchy::FindMachine(*production_, machine_id));
  HOD_ASSIGN_OR_RETURN(hierarchy::JobMatrix matrix,
                       hierarchy::JobFeatureMatrix(*machine));
  if (matrix.vectors.empty()) {
    return Status::NotFound("machine '" + machine_id + "' has no jobs");
  }
  std::unique_ptr<detect::VectorDetector> detector =
      selector_.MakeJobDetector();
  HOD_RETURN_IF_ERROR(detector->Train(matrix.vectors));
  HOD_ASSIGN_OR_RETURN(std::vector<double> scores,
                       detector->Score(matrix.vectors));
  std::vector<TimedScore> timed(matrix.vectors.size());
  for (size_t j = 0; j < matrix.vectors.size(); ++j) {
    timed[j].entity = matrix.job_ids[j];
    timed[j].start = machine->jobs[j].start_time;
    timed[j].end = machine->jobs[j].end_time;
    timed[j].score = scores[j];
  }
  auto& entry = job_scores_[machine_id];
  entry.epoch = epoch_;
  entry.value = std::move(timed);
  ++cache_stats_.scores_built;
  return &entry.value;
}

StatusOr<std::vector<double>> HierarchicalDetector::ScoreJobs(
    const std::string& machine_id) {
  HOD_ASSIGN_OR_RETURN(const std::vector<TimedScore>* timed,
                       JobScores(machine_id));
  std::vector<double> scores;
  scores.reserve(timed->size());
  for (const TimedScore& entry : *timed) scores.push_back(entry.score);
  return scores;
}

StatusOr<const std::vector<double>*> HierarchicalDetector::EnvironmentScores(
    const std::string& line_id) {
  const uint64_t floor = LineEnvEpochFloor(line_id);
  auto it = environment_scores_.find(line_id);
  if (it != environment_scores_.end() && it->second.epoch >= floor) {
    ++cache_stats_.scores_reused;
    return &it->second.value;
  }

  HOD_ASSIGN_OR_RETURN(const hierarchy::ProductionLine* line,
                       hierarchy::FindLine(*production_, line_id));
  if (line->environment.empty()) {
    return Status::NotFound("line '" + line_id +
                            "' has no environment channel");
  }
  const ts::TimeSeries& series = line->environment.front().series;
  std::unique_ptr<detect::SeriesDetector> detector =
      selector_.MakeEnvironmentDetector();
  HOD_RETURN_IF_ERROR(detector->Train({series}));
  HOD_ASSIGN_OR_RETURN(std::vector<double> scores, detector->Score(series));
  auto& entry = environment_scores_[line_id];
  entry.epoch = epoch_;
  entry.value = std::move(scores);
  ++cache_stats_.scores_built;
  return &entry.value;
}

StatusOr<std::vector<double>> HierarchicalDetector::ScoreEnvironment(
    const std::string& line_id) {
  HOD_ASSIGN_OR_RETURN(const std::vector<double>* scores,
                       EnvironmentScores(line_id));
  return *scores;
}

StatusOr<const std::vector<HierarchicalDetector::TimedScore>*>
HierarchicalDetector::LineJobScores(const std::string& line_id) {
  const uint64_t floor = LineJobsEpochFloor(line_id);
  auto it = line_job_scores_.find(line_id);
  if (it != line_job_scores_.end() && it->second.epoch >= floor) {
    ++cache_stats_.scores_reused;
    return &it->second.value;
  }

  HOD_ASSIGN_OR_RETURN(const hierarchy::ProductionLine* line,
                       hierarchy::FindLine(*production_, line_id));
  HOD_ASSIGN_OR_RETURN(hierarchy::JobMatrix matrix,
                       hierarchy::JobFeatureMatrix(*line));
  if (matrix.vectors.empty()) {
    return Status::NotFound("line '" + line_id + "' has no jobs");
  }
  HOD_ASSIGN_OR_RETURN(std::vector<ts::TimeSeries> feature_series,
                       hierarchy::LineJobSeries(*line));
  std::unique_ptr<detect::SeriesDetector> detector =
      selector_.MakeLineDetector();
  // Per-job score = mean of the top-3 per-feature scores: a real line
  // event (bad powder lot) shifts several setup/CAQ features at once,
  // while measurement noise spikes a single feature.
  std::vector<std::vector<double>> per_feature(matrix.vectors.size());
  for (const ts::TimeSeries& series : feature_series) {
    HOD_RETURN_IF_ERROR(detector->Train({series}));
    HOD_ASSIGN_OR_RETURN(std::vector<double> scores,
                         detector->Score(series));
    for (size_t j = 0; j < per_feature.size() && j < scores.size(); ++j) {
      per_feature[j].push_back(scores[j]);
    }
  }
  std::vector<double> combined(matrix.vectors.size(), 0.0);
  for (size_t j = 0; j < combined.size(); ++j) {
    combined[j] = detect::TopKMean(per_feature[j], 3);
  }
  std::vector<TimedScore> timed(combined.size());
  for (size_t j = 0; j < combined.size(); ++j) {
    timed[j].entity = matrix.job_ids[j];
    timed[j].start = matrix.times[j];
    timed[j].end = matrix.times[j];
    timed[j].score = combined[j];
  }
  auto& entry = line_job_scores_[line_id];
  entry.epoch = epoch_;
  entry.value = std::move(timed);
  ++cache_stats_.scores_built;
  return &entry.value;
}

StatusOr<std::vector<double>> HierarchicalDetector::ScoreLineJobs(
    const std::string& line_id) {
  HOD_ASSIGN_OR_RETURN(const std::vector<TimedScore>* timed,
                       LineJobScores(line_id));
  std::vector<double> scores;
  scores.reserve(timed->size());
  for (const TimedScore& entry : *timed) scores.push_back(entry.score);
  return scores;
}

StatusOr<const std::map<std::string, double>*>
HierarchicalDetector::MachineScores() {
  const uint64_t floor = MachineScoresEpochFloor();
  if (machine_scores_.epoch > 0 && machine_scores_.epoch >= floor) {
    ++cache_stats_.scores_reused;
    return &machine_scores_.value;
  }
  HOD_ASSIGN_OR_RETURN(hierarchy::MachineMatrix matrix,
                       hierarchy::MachineSummaryMatrix(*production_));
  if (matrix.vectors.empty()) {
    return Status::NotFound("production has no machines with jobs");
  }
  detect::RobustZVectorDetector detector;
  HOD_RETURN_IF_ERROR(detector.Train(matrix.vectors));
  HOD_ASSIGN_OR_RETURN(std::vector<double> scores,
                       detector.Score(matrix.vectors));
  machine_scores_.value.clear();
  for (size_t m = 0; m < matrix.machine_ids.size(); ++m) {
    machine_scores_.value[matrix.machine_ids[m]] = scores[m];
  }
  machine_scores_.epoch = epoch_;
  ++cache_stats_.scores_built;
  return &machine_scores_.value;
}

StatusOr<std::map<std::string, double>> HierarchicalDetector::ScoreMachines() {
  HOD_ASSIGN_OR_RETURN(const auto* scores,
                       MachineScores());
  return *scores;
}

// ---- Cross-level visibility ----------------------------------------------

StatusOr<bool> HierarchicalDetector::VisibleAtLevel(
    hierarchy::ProductionLevel level, const std::string& line_id,
    const std::string& machine_id, ts::TimePoint t) {
  const double threshold = options_.outlier_threshold;
  switch (level) {
    case hierarchy::ProductionLevel::kPhase: {
      // Any sensor in the job covering `t` showing a phase outlier.
      HOD_ASSIGN_OR_RETURN(
          const hierarchy::Machine* machine,
          hierarchy::FindMachine(*production_, machine_id));
      for (const hierarchy::Job& job : machine->jobs) {
        if (t < job.start_time - options_.cross_level_tolerance ||
            t > job.end_time + options_.cross_level_tolerance) {
          continue;
        }
        for (const hierarchy::Phase& phase : job.phases) {
          for (const auto& [sensor_id, series] : phase.sensor_series) {
            PhaseQuery query{machine_id, job.id, phase.name, sensor_id};
            HOD_ASSIGN_OR_RETURN(std::vector<double> scores,
                                 ScorePhaseSeries(query));
            if (MaxScoreNear(scores, series.start_time(), series.interval(),
                             t, options_.cross_level_tolerance) > threshold) {
              return true;
            }
          }
        }
      }
      return false;
    }
    case hierarchy::ProductionLevel::kJob: {
      HOD_ASSIGN_OR_RETURN(const std::vector<TimedScore>* jobs,
                           JobScores(machine_id));
      for (const TimedScore& job : *jobs) {
        if (t >= job.start - options_.cross_level_tolerance &&
            t <= job.end + options_.cross_level_tolerance &&
            job.score > threshold) {
          return true;
        }
      }
      return false;
    }
    case hierarchy::ProductionLevel::kEnvironment: {
      auto scores_or = EnvironmentScores(line_id);
      if (!scores_or.ok()) return false;  // no environment channel
      HOD_ASSIGN_OR_RETURN(const hierarchy::ProductionLine* line,
                           hierarchy::FindLine(*production_, line_id));
      const ts::TimeSeries& series = line->environment.front().series;
      return MaxScoreNear(*scores_or.value(), series.start_time(),
                          series.interval(), t,
                          options_.cross_level_tolerance) > threshold;
    }
    case hierarchy::ProductionLevel::kProductionLine: {
      HOD_ASSIGN_OR_RETURN(const std::vector<TimedScore>* jobs,
                           LineJobScores(line_id));
      for (const TimedScore& job : *jobs) {
        if (std::fabs(job.start - t) <= options_.cross_level_tolerance &&
            job.score > threshold) {
          return true;
        }
      }
      return false;
    }
    case hierarchy::ProductionLevel::kProduction: {
      HOD_ASSIGN_OR_RETURN(const auto* machines,
                           MachineScores());
      const auto it = machines->find(machine_id);
      return it != machines->end() && it->second > threshold;
    }
  }
  return false;
}

// ---- Algorithm 1 ----------------------------------------------------------

StatusOr<OutlierFinding> HierarchicalDetector::BuildFinding(
    const LevelOutlier& origin, const std::string& line_id,
    const std::string& machine_id, double support,
    size_t corresponding_sensors) {
  OutlierFinding finding;
  finding.origin = origin;
  finding.outlierness = origin.score;
  finding.support = support;
  finding.corresponding_sensors = corresponding_sensors;
  finding.global_score = 1;
  finding.confirmed_levels.push_back(origin.level);

  // Upward recursion: CalcGlobalScore(level++, true) — increment while
  // each next-higher level confirms, stop at the first miss.
  hierarchy::ProductionLevel level = origin.level;
  bool chain_alive = true;
  while (true) {
    auto above_or = hierarchy::LevelAbove(level);
    if (!above_or.ok()) break;
    level = above_or.value();
    HOD_ASSIGN_OR_RETURN(
        bool visible, VisibleAtLevel(level, line_id, machine_id, origin.time));
    if (visible) {
      finding.confirmed_levels.push_back(level);
      if (chain_alive) ++finding.global_score;
    } else {
      chain_alive = false;  // the global-score chain ends; keep auditing
    }
  }

  // Downward recursion: CalcGlobalScore(level--, false) — a higher-level
  // outlier with no lower-level trace means a measurement error.
  level = origin.level;
  while (true) {
    auto below_or = hierarchy::LevelBelow(level);
    if (!below_or.ok()) break;
    level = below_or.value();
    HOD_ASSIGN_OR_RETURN(
        bool visible, VisibleAtLevel(level, line_id, machine_id, origin.time));
    if (visible) {
      finding.confirmed_levels.push_back(level);
    } else {
      finding.measurement_error_warning = true;
      finding.warnings.push_back(
          "Warning for Wrong Measurement: no outlier at " +
          std::string(hierarchy::LevelName(level)) + " near t=" +
          std::to_string(origin.time));
    }
  }
  std::sort(finding.confirmed_levels.begin(), finding.confirmed_levels.end());
  finding.confirmed_levels.erase(
      std::unique(finding.confirmed_levels.begin(),
                  finding.confirmed_levels.end()),
      finding.confirmed_levels.end());
  return finding;
}

StatusOr<std::pair<double, size_t>> HierarchicalDetector::ComputePhaseSupport(
    const PhaseQuery& query, ts::TimePoint outlier_time) {
  HOD_ASSIGN_OR_RETURN(
      std::vector<std::string> corresponding,
      production_->sensors.CorrespondingSensors(query.sensor_id));
  if (corresponding.empty()) return std::make_pair(0.0, size_t{0});
  size_t supporting = 0;
  for (const std::string& sensor_id : corresponding) {
    PhaseQuery other = query;
    other.sensor_id = sensor_id;
    auto scores_or = ScorePhaseSeries(other);
    if (!scores_or.ok()) continue;  // sensor absent in this phase
    HOD_ASSIGN_OR_RETURN(const hierarchy::Job* job,
                         hierarchy::FindJob(*production_, query.job_id));
    for (const hierarchy::Phase& phase : job->phases) {
      if (phase.name != query.phase_name) continue;
      const auto it = phase.sensor_series.find(sensor_id);
      if (it == phase.sensor_series.end()) break;
      if (MaxScoreNear(scores_or.value(), it->second.start_time(),
                       it->second.interval(), outlier_time,
                       options_.support_time_tolerance) >
          options_.outlier_threshold) {
        ++supporting;
      }
      break;
    }
  }
  return std::make_pair(
      static_cast<double>(supporting) /
          static_cast<double>(corresponding.size()),
      corresponding.size());
}

StatusOr<HierarchicalOutlierReport> HierarchicalDetector::FindPhaseOutliers(
    const PhaseQuery& query) {
  HierarchicalOutlierReport report;
  report.start_level = hierarchy::ProductionLevel::kPhase;
  report.algorithm = selector_.Describe(report.start_level);
  HOD_ASSIGN_OR_RETURN(std::string line_id, LineOfMachine(query.machine_id));

  HOD_ASSIGN_OR_RETURN(std::vector<double> scores, ScorePhaseSeries(query));
  HOD_ASSIGN_OR_RETURN(const hierarchy::Job* job,
                       hierarchy::FindJob(*production_, query.job_id));
  const ts::TimeSeries* series = nullptr;
  for (const hierarchy::Phase& phase : job->phases) {
    if (phase.name != query.phase_name) continue;
    const auto it = phase.sensor_series.find(query.sensor_id);
    if (it != phase.sensor_series.end()) series = &it->second;
    break;
  }
  if (series == nullptr) {
    return Status::NotFound("queried series not found");
  }
  for (size_t i = 0; i < scores.size(); ++i) {
    if (scores[i] <= options_.outlier_threshold) continue;
    LevelOutlier origin;
    origin.level = hierarchy::ProductionLevel::kPhase;
    origin.entity = query.sensor_id;
    origin.index = i;
    origin.time = series->TimeAt(i);
    origin.score = scores[i];
    HOD_ASSIGN_OR_RETURN(auto support,
                         ComputePhaseSupport(query, origin.time));
    HOD_ASSIGN_OR_RETURN(OutlierFinding finding,
                         BuildFinding(origin, line_id, query.machine_id,
                                      support.first, support.second));
    report.findings.push_back(std::move(finding));
  }
  return report;
}

StatusOr<HierarchicalOutlierReport> HierarchicalDetector::FindJobOutliers(
    const std::string& machine_id) {
  HierarchicalOutlierReport report;
  report.start_level = hierarchy::ProductionLevel::kJob;
  report.algorithm = selector_.Describe(report.start_level);
  HOD_ASSIGN_OR_RETURN(std::string line_id, LineOfMachine(machine_id));
  HOD_ASSIGN_OR_RETURN(const std::vector<TimedScore>* jobs,
                       JobScores(machine_id));
  for (size_t j = 0; j < jobs->size(); ++j) {
    const TimedScore& job = (*jobs)[j];
    if (job.score <= options_.outlier_threshold) continue;
    LevelOutlier origin;
    origin.level = hierarchy::ProductionLevel::kJob;
    origin.entity = job.entity;
    origin.index = j;
    origin.time = (job.start + job.end) / 2.0;
    origin.score = job.score;
    HOD_ASSIGN_OR_RETURN(
        OutlierFinding finding,
        BuildFinding(origin, line_id, machine_id, 0.0, 0));
    report.findings.push_back(std::move(finding));
  }
  return report;
}

StatusOr<HierarchicalOutlierReport>
HierarchicalDetector::FindEnvironmentOutliers(const std::string& line_id) {
  HierarchicalOutlierReport report;
  report.start_level = hierarchy::ProductionLevel::kEnvironment;
  report.algorithm = selector_.Describe(report.start_level);
  HOD_ASSIGN_OR_RETURN(const hierarchy::ProductionLine* line,
                       hierarchy::FindLine(*production_, line_id));
  if (line->environment.empty()) {
    return Status::NotFound("line has no environment channel");
  }
  const hierarchy::EnvironmentChannel& channel = line->environment.front();
  HOD_ASSIGN_OR_RETURN(const std::vector<double>* scores,
                       EnvironmentScores(line_id));
  // Environment outliers are machine-agnostic; use the line's first
  // machine as the scope for job/production checks (any machine works for
  // the downward audit — the event either left a trace or it did not).
  const std::string machine_id =
      line->machines.empty() ? "" : line->machines.front().id;
  for (size_t i = 0; i < scores->size(); ++i) {
    if ((*scores)[i] <= options_.outlier_threshold) continue;
    LevelOutlier origin;
    origin.level = hierarchy::ProductionLevel::kEnvironment;
    origin.entity = channel.sensor_id;
    origin.index = i;
    origin.time = channel.series.TimeAt(i);
    origin.score = (*scores)[i];
    HOD_ASSIGN_OR_RETURN(
        std::vector<std::string> corresponding,
        production_->sensors.CorrespondingSensors(channel.sensor_id));
    HOD_ASSIGN_OR_RETURN(
        OutlierFinding finding,
        BuildFinding(origin, line_id, machine_id, 0.0, corresponding.size()));
    report.findings.push_back(std::move(finding));
  }
  return report;
}

StatusOr<HierarchicalOutlierReport> HierarchicalDetector::FindLineOutliers(
    const std::string& line_id) {
  HierarchicalOutlierReport report;
  report.start_level = hierarchy::ProductionLevel::kProductionLine;
  report.algorithm = selector_.Describe(report.start_level);
  HOD_ASSIGN_OR_RETURN(const std::vector<TimedScore>* jobs,
                       LineJobScores(line_id));
  for (size_t j = 0; j < jobs->size(); ++j) {
    const TimedScore& job = (*jobs)[j];
    if (job.score <= options_.outlier_threshold) continue;
    HOD_ASSIGN_OR_RETURN(const hierarchy::Job* job_ref,
                         hierarchy::FindJob(*production_, job.entity));
    LevelOutlier origin;
    origin.level = hierarchy::ProductionLevel::kProductionLine;
    origin.entity = job.entity;
    origin.index = j;
    origin.time = job.start;
    origin.score = job.score;
    HOD_ASSIGN_OR_RETURN(
        OutlierFinding finding,
        BuildFinding(origin, line_id, job_ref->machine_id, 0.0, 0));
    report.findings.push_back(std::move(finding));
  }
  return report;
}

StatusOr<HierarchicalOutlierReport>
HierarchicalDetector::FindProductionOutliers() {
  HierarchicalOutlierReport report;
  report.start_level = hierarchy::ProductionLevel::kProduction;
  report.algorithm = selector_.Describe(report.start_level);
  HOD_ASSIGN_OR_RETURN(const auto* machines,
                       MachineScores());
  for (const auto& [machine_id, score] : *machines) {
    if (score <= options_.outlier_threshold) continue;
    HOD_ASSIGN_OR_RETURN(std::string line_id, LineOfMachine(machine_id));
    HOD_ASSIGN_OR_RETURN(const hierarchy::Machine* machine,
                         hierarchy::FindMachine(*production_, machine_id));
    LevelOutlier origin;
    origin.level = hierarchy::ProductionLevel::kProduction;
    origin.entity = machine_id;
    origin.index = 0;
    // A machine-level anomaly spans its whole activity; anchor mid-way.
    origin.time = machine->jobs.empty()
                      ? 0.0
                      : (machine->jobs.front().start_time +
                         machine->jobs.back().end_time) /
                            2.0;
    origin.score = score;
    HOD_ASSIGN_OR_RETURN(OutlierFinding finding,
                         BuildFinding(origin, line_id, machine_id, 0.0, 0));
    report.findings.push_back(std::move(finding));
  }
  return report;
}

// ---- Incremental escalation -----------------------------------------------

StatusOr<HierarchicalOutlierReport> HierarchicalDetector::EscalateAlarm(
    hierarchy::ProductionLevel level, const std::string& entity_id,
    ts::TimePoint t) {
  switch (level) {
    case hierarchy::ProductionLevel::kPhase: {
      // A phase-level alarm names a sensor. Resolve it to its machine and
      // the job covering `t`, then run Algorithm 1 only for the phases of
      // that job the sensor recorded — every neighbor consulted by the
      // upward/downward passes comes from the cache.
      HOD_ASSIGN_OR_RETURN(hierarchy::SensorInfo info,
                           production_->sensors.Get(entity_id));
      if (info.machine_id.empty()) {
        // Environment sensors carry no machine; escalate at their level.
        return EscalateAlarm(hierarchy::ProductionLevel::kEnvironment,
                             entity_id, t);
      }
      HOD_ASSIGN_OR_RETURN(
          const hierarchy::Machine* machine,
          hierarchy::FindMachine(*production_, info.machine_id));
      const hierarchy::Job* covering = nullptr;
      for (const hierarchy::Job& job : machine->jobs) {
        if (t >= job.start_time - options_.cross_level_tolerance &&
            t <= job.end_time + options_.cross_level_tolerance) {
          covering = &job;
          break;
        }
      }
      if (covering == nullptr) {
        return Status::NotFound("no job on machine '" + info.machine_id +
                                "' near t=" + std::to_string(t));
      }
      HierarchicalOutlierReport report;
      report.start_level = hierarchy::ProductionLevel::kPhase;
      report.algorithm = selector_.Describe(report.start_level);
      bool any_series = false;
      for (const hierarchy::Phase& phase : covering->phases) {
        if (phase.sensor_series.find(entity_id) ==
            phase.sensor_series.end()) {
          continue;
        }
        any_series = true;
        PhaseQuery query{info.machine_id, covering->id, phase.name,
                         entity_id};
        HOD_ASSIGN_OR_RETURN(HierarchicalOutlierReport phase_report,
                             FindPhaseOutliers(query));
        report.algorithm = phase_report.algorithm;
        for (OutlierFinding& finding : phase_report.findings) {
          report.findings.push_back(std::move(finding));
        }
      }
      if (!any_series) {
        return Status::NotFound("sensor '" + entity_id +
                                "' recorded no series in job '" +
                                covering->id + "'");
      }
      return report;
    }
    case hierarchy::ProductionLevel::kJob: {
      // A job-level alarm names a machine (or a sensor on one).
      if (hierarchy::FindMachine(*production_, entity_id).ok()) {
        return FindJobOutliers(entity_id);
      }
      HOD_ASSIGN_OR_RETURN(hierarchy::SensorInfo info,
                           production_->sensors.Get(entity_id));
      if (info.machine_id.empty()) {
        return Status::NotFound("entity '" + entity_id +
                                "' resolves to no machine");
      }
      return FindJobOutliers(info.machine_id);
    }
    case hierarchy::ProductionLevel::kEnvironment: {
      // A line id, or an environment sensor id on some line.
      if (hierarchy::FindLine(*production_, entity_id).ok()) {
        return FindEnvironmentOutliers(entity_id);
      }
      for (const hierarchy::ProductionLine& line : production_->lines) {
        for (const hierarchy::EnvironmentChannel& channel :
             line.environment) {
          if (channel.sensor_id == entity_id) {
            return FindEnvironmentOutliers(line.id);
          }
        }
      }
      return Status::NotFound("entity '" + entity_id +
                              "' resolves to no environment channel");
    }
    case hierarchy::ProductionLevel::kProductionLine: {
      if (hierarchy::FindLine(*production_, entity_id).ok()) {
        return FindLineOutliers(entity_id);
      }
      HOD_ASSIGN_OR_RETURN(std::string line_id, LineOfMachine(entity_id));
      return FindLineOutliers(line_id);
    }
    case hierarchy::ProductionLevel::kProduction:
      return FindProductionOutliers();
  }
  return Status::InvalidArgument("EscalateAlarm: unknown level");
}

}  // namespace hod::core
