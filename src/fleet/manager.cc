#include "fleet/manager.h"

#include <fstream>
#include <iterator>
#include <utility>

namespace hod::fleet {

namespace {

/// A plant's full board contribution: process episodes plus the
/// calibration queue (suspected sensor faults). The fleet board shows
/// both — a quarantined line is exactly what a fleet operator must see —
/// with the `suspected_measurement_error` flag telling the two apart.
std::vector<core::AlertEpisode> PlantEpisodes(
    const stream::StreamEngine& engine) {
  std::vector<core::AlertEpisode> episodes = engine.Episodes();
  std::vector<core::AlertEpisode> calibration = engine.CalibrationQueue();
  episodes.insert(episodes.end(),
                  std::make_move_iterator(calibration.begin()),
                  std::make_move_iterator(calibration.end()));
  return episodes;
}

std::string SanitizeForFilename(const std::string& plant_id) {
  std::string out;
  out.reserve(plant_id.size());
  for (const char c : plant_id) {
    const bool safe = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                      c == '-';
    out.push_back(safe ? c : '_');
  }
  return out;
}

}  // namespace

FleetManager::FleetManager(FleetManagerOptions options)
    : options_(std::move(options)), router_(options_.router_slots) {
  if (options_.executor != nullptr) {
    pool_ = options_.executor;
  } else {
    util::ThreadPoolOptions pool_options;
    pool_options.num_threads = options_.pool_threads;
    pool_options.service_threads = options_.service_threads;
    owned_pool_ = std::make_unique<util::ThreadPool>(pool_options);
    pool_ = owned_pool_.get();
  }
  if (options_.enable_serving) {
    serving_ = std::make_unique<serve::FleetHub>(options_.serving);
  }
}

FleetManager::~FleetManager() {
  // Engines quiesce their pooled tasks before the owned pool (destroyed
  // after this body) shuts down — the ThreadPool lifetime contract.
  (void)Stop();
}

stream::StreamEngineOptions FleetManager::BuildEngineOptions(
    const std::string& plant_id) const {
  stream::StreamEngineOptions engine = options_.engine;
  engine.executor = pool_;
  engine.checkpoint_path = CheckpointPathFor(plant_id);
  engine.checkpoint_interval = engine.checkpoint_path.empty()
                                   ? std::chrono::milliseconds(0)
                                   : options_.checkpoint_interval;
  engine.checkpoint_phase = CheckpointPhaseOf(plant_id);
  if (serving_ != nullptr) {
    // One hub per plant; re-adding after RestorePlant reuses the existing
    // hub, whose sequence-regression guard keyframes the resync.
    serve::SnapshotHub* hub = serving_->AddPlant(plant_id);
    engine.snapshot_sink = [hub](const stream::EngineSnapshot& snapshot) {
      hub->Publish(snapshot);
    };
  }
  return engine;
}

std::chrono::milliseconds FleetManager::CheckpointPhaseOf(
    const std::string& plant_id) const {
  if (options_.checkpoint_interval.count() <= 0) {
    return std::chrono::milliseconds(0);
  }
  const size_t slots =
      options_.checkpoint_stagger_slots == 0 ? 1
                                             : options_.checkpoint_stagger_slots;
  const uint64_t slot = stream::StableHash64(plant_id) % slots;
  // Phase 0 would collapse onto "one full interval" (the engine's
  // unstaggered default), which is exactly what slot `slots` would give —
  // so the slot space maps to (0, interval] evenly.
  return std::chrono::milliseconds(
      (static_cast<uint64_t>(options_.checkpoint_interval.count()) *
       (slot + 1)) /
      slots);
}

std::string FleetManager::CheckpointPathFor(const std::string& plant_id) const {
  if (options_.checkpoint_dir.empty()) return {};
  return options_.checkpoint_dir + "/" + SanitizeForFilename(plant_id) +
         ".ckpt";
}

Status FleetManager::AddPlant(const std::string& plant_id,
                              const std::vector<PlantSensorSpec>& sensors) {
  if (stopped_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("fleet already stopped");
  }
  if (sensors.empty()) {
    return Status::InvalidArgument("plant needs at least one sensor: " +
                                   plant_id);
  }
  std::lock_guard<std::mutex> lock(admin_mu_);
  if (router_.Resolve(plant_id) != nullptr) {
    return Status::InvalidArgument("plant already routed: " + plant_id);
  }
  auto handle = std::make_shared<PlantHandle>();
  handle->plant_id = plant_id;
  handle->placement = router_.Place(plant_id);
  handle->engine =
      std::make_unique<stream::StreamEngine>(BuildEngineOptions(plant_id));
  for (const PlantSensorSpec& sensor : sensors) {
    HOD_RETURN_IF_ERROR(
        handle->engine->AddSensor(sensor.sensor_id, sensor.level,
                                  sensor.policy));
  }
  HOD_RETURN_IF_ERROR(handle->engine->Start());
  // A re-added id starts a new line; its predecessor's archived episodes
  // must not shadow the fresh board.
  board_.ForgetPlant(plant_id);
  return router_.Add(plant_id, std::move(handle));
}

Status FleetManager::RestorePlant(const std::string& plant_id) {
  if (stopped_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("fleet already stopped");
  }
  const std::string path = CheckpointPathFor(plant_id);
  if (path.empty()) {
    return Status::FailedPrecondition(
        "fleet checkpointing is off (no checkpoint_dir)");
  }
  std::lock_guard<std::mutex> lock(admin_mu_);
  if (router_.Resolve(plant_id) != nullptr) {
    return Status::InvalidArgument("plant already routed: " + plant_id);
  }
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    return Status::NotFound("no checkpoint for plant: " + path);
  }
  auto handle = std::make_shared<PlantHandle>();
  handle->plant_id = plant_id;
  handle->placement = router_.Place(plant_id);
  HOD_ASSIGN_OR_RETURN(
      handle->engine,
      stream::StreamEngine::Restore(is, BuildEngineOptions(plant_id)));
  board_.ForgetPlant(plant_id);
  return router_.Add(plant_id, std::move(handle));
}

Status FleetManager::RemovePlant(const std::string& plant_id) {
  std::lock_guard<std::mutex> lock(admin_mu_);
  return RemovePlantLocked(plant_id);
}

Status FleetManager::RemovePlantLocked(const std::string& plant_id) {
  std::shared_ptr<PlantHandle> handle = router_.Remove(plant_id);
  if (handle == nullptr) {
    return Status::NotFound("no such plant: " + plant_id);
  }
  // Drain-on-remove: new samples stopped resolving above; settle what was
  // already accepted, then freeze the board and the counters. Episodes
  // are archived (still visible, flagged historical) and the final stats
  // fold into `retired` so the fleet aggregate never loses the plant's
  // history.
  (void)handle->engine->Flush();  // best-effort: engine may already be stopped
  (void)handle->engine->Stop();
  board_.ArchivePlant(plant_id, PlantEpisodes(*handle->engine));
  {
    std::lock_guard<std::mutex> retired_lock(retired_mu_);
    retired_ += handle->engine->stats();
    ++removed_plants_;
  }
  // The engine above is stopped, so its sink can no longer fire; the
  // plant's hub (and any reader still holding a Subscription into it)
  // goes away with it.
  if (serving_ != nullptr) serving_->RemovePlant(plant_id);
  return Status::Ok();
}

StatusOr<stream::IngestAck> FleetManager::Ingest(
    const std::string& plant_id, const stream::SensorSample& sample) {
  std::shared_ptr<PlantHandle> handle = router_.Resolve(plant_id);
  if (handle == nullptr) {
    return Status::NotFound("no such plant: " + plant_id);
  }
  return handle->engine->Ingest(sample);
}

Status FleetManager::FlushPlant(const std::string& plant_id) {
  std::shared_ptr<PlantHandle> handle = router_.Resolve(plant_id);
  if (handle == nullptr) {
    return Status::NotFound("no such plant: " + plant_id);
  }
  return handle->engine->Flush();
}

Status FleetManager::Flush() {
  for (const auto& handle : router_.Handles()) {
    HOD_RETURN_IF_ERROR(handle->engine->Flush());
  }
  return Status::Ok();
}

Status FleetManager::CheckpointPlant(const std::string& plant_id) {
  const std::string path = CheckpointPathFor(plant_id);
  if (path.empty()) {
    return Status::FailedPrecondition(
        "fleet checkpointing is off (no checkpoint_dir)");
  }
  std::shared_ptr<PlantHandle> handle = router_.Resolve(plant_id);
  if (handle == nullptr) {
    return Status::NotFound("no such plant: " + plant_id);
  }
  return handle->engine->CheckpointToFile(path);
}

Status FleetManager::Stop() {
  if (stopped_.exchange(true, std::memory_order_acq_rel)) {
    return Status::Ok();
  }
  std::lock_guard<std::mutex> lock(admin_mu_);
  // Handles stay routed: a stopped fleet still answers Stats() and
  // AlertBoard() from the engines' final state.
  for (const auto& handle : router_.Handles()) {
    (void)handle->engine->Stop();
  }
  return Status::Ok();
}

FleetStatsSnapshot FleetManager::Stats() const {
  FleetStatsSnapshot snapshot;
  for (const auto& handle : router_.Handles()) {
    PlantStats plant;
    plant.plant_id = handle->plant_id;
    plant.placement = handle->placement;
    plant.stats = handle->engine->stats();
    snapshot.aggregate += plant.stats;
    snapshot.per_plant.push_back(std::move(plant));
    ++snapshot.plants;
  }
  {
    std::lock_guard<std::mutex> lock(retired_mu_);
    snapshot.retired = retired_;
    snapshot.removed_plants = removed_plants_;
  }
  snapshot.aggregate += snapshot.retired;
  return snapshot;
}

std::vector<FleetAlertRow> FleetManager::AlertBoard() {
  for (const auto& handle : router_.Handles()) {
    board_.UpdatePlant(handle->plant_id, PlantEpisodes(*handle->engine));
  }
  return board_.Board();
}

stream::EngineSnapshot FleetManager::PlantSnapshot(
    const std::string& plant_id) const {
  std::shared_ptr<PlantHandle> handle = router_.Resolve(plant_id);
  if (handle == nullptr) return {};
  return handle->engine->Snapshot();
}

stream::SensorHealthSnapshot FleetManager::PlantHealth(
    const std::string& plant_id) const {
  std::shared_ptr<PlantHandle> handle = router_.Resolve(plant_id);
  if (handle == nullptr) return {};
  return handle->engine->Health();
}

}  // namespace hod::fleet
