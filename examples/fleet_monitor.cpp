// Fleet monitor: 64 plants behind one FleetManager, one shared thread
// pool, one merged alert board.
//
// Every plant streams clean AR(1) telemetry from 8 sensors; one line —
// "plant_41" — has a stuck-at fault injected on a sensor mid-stream by
// the sim::FaultInjector. The example demonstrates the fleet-tier
// contract end to end:
//
//   1. 64 engines run on ONE util::ThreadPool: the OS thread bill is the
//      pool size, not 64 * (shards + collector + watchdog),
//   2. the faulted sensor is quarantined by its own plant's health layer
//      and surfaces on the merged, plant-tagged FleetAlertBoard — the
//      operator reads one board, not 64,
//   3. the fleet stats roll-up stays exact: aggregate ingested equals
//      what the 64 producers pushed, and the conservation identity
//      `ingested == scored + dropped + rejected + quarantined` holds for
//      the sum.
//
// Like every example, this doubles as an end-to-end smoke test: it exits
// non-zero if any of the three guarantees is violated.

#include <cstdio>
#include <string>
#include <vector>

#include "fleet/manager.h"
#include "sim/fault_injector.h"
#include "util/rng.h"

int main() {
  using namespace hod;
  using hierarchy::ProductionLevel;

  constexpr size_t kPlants = 64;
  constexpr size_t kSensorsPerPlant = 8;
  constexpr size_t kSteps = 600;  // stream seconds, 1 Hz per sensor
  const std::string kVictimPlant = "plant_41";
  const std::string kVictimSensor = "s3";

  // --- Schedule the fault on one line --------------------------------------
  sim::FaultInjector injector;
  sim::FaultProfile profile;
  profile.kind = sim::FaultKind::kStuckAt;
  profile.start = 250.0;
  profile.duration = 350.0;  // stuck until the end of the stream
  if (!injector.AddFault(kVictimSensor, profile).ok()) return 1;

  // --- Build the fleet ------------------------------------------------------
  fleet::FleetManagerOptions options;
  options.engine.num_shards = 2;
  options.engine.queue_capacity = 512;
  options.engine.monitor.warmup = 100;
  options.engine.snapshot_every = 64;
  options.engine.health.flatline_window = 16;
  options.engine.health.suspect_after = 4;
  options.engine.health.quarantine_after = 8;
  options.pool_threads = 4;  // the whole fleet's worker budget

  fleet::FleetManager fleet(options);
  std::vector<fleet::PlantSensorSpec> sensors;
  for (size_t s = 0; s < kSensorsPerPlant; ++s) {
    sensors.push_back(
        {"s" + std::to_string(s), ProductionLevel::kPhase, {}});
  }
  std::vector<std::string> plant_ids;
  for (size_t p = 0; p < kPlants; ++p) {
    plant_ids.push_back("plant_" + std::to_string(p));
    if (!fleet.AddPlant(plant_ids.back(), sensors).ok()) return 1;
  }
  std::printf("fleet: %zu plants x %zu sensors on a %zu-thread pool\n",
              kPlants, kSensorsPerPlant, options.pool_threads);

  // --- Stream every plant; corrupt only the victim's sensor ----------------
  uint64_t pushed = 0;
  std::vector<std::vector<Rng>> rngs(kPlants);
  std::vector<std::vector<double>> noise(kPlants);
  for (size_t p = 0; p < kPlants; ++p) {
    noise[p].assign(kSensorsPerPlant, 0.0);
    for (size_t s = 0; s < kSensorsPerPlant; ++s) {
      rngs[p].emplace_back(7000 + p * kSensorsPerPlant + s);
    }
  }
  for (size_t t = 0; t < kSteps; ++t) {
    for (size_t p = 0; p < kPlants; ++p) {
      for (size_t s = 0; s < kSensorsPerPlant; ++s) {
        noise[p][s] = 0.7 * noise[p][s] + rngs[p][s].Gaussian(0.0, 0.25);
        stream::SensorSample clean{"s" + std::to_string(s),
                                   ProductionLevel::kPhase,
                                   static_cast<double>(t),
                                   50.0 + noise[p][s]};
        if (plant_ids[p] == kVictimPlant && clean.sensor_id == kVictimSensor) {
          for (const auto& sample : injector.Apply(clean)) {
            if (fleet.Ingest(plant_ids[p], sample).ok()) ++pushed;
          }
        } else {
          if (fleet.Ingest(plant_ids[p], clean).ok()) ++pushed;
        }
      }
    }
  }
  if (!fleet.Flush().ok()) return 1;

  // --- The merged board: one view over 64 plants ----------------------------
  const std::vector<fleet::FleetAlertRow> board = fleet.AlertBoard();
  std::printf("\nfleet alert board (%zu rows)\n", board.size());
  std::printf("%-10s %-8s %-10s %8s %s\n", "plant", "entity", "severity",
              "peak", "measurement-error?");
  bool victim_on_board = false;
  for (const auto& row : board) {
    std::printf("%-10s %-8s %-10s %8.2f %s\n", row.plant_id.c_str(),
                row.episode.entity.c_str(),
                std::string(core::AlertSeverityName(row.episode.severity))
                    .c_str(),
                row.episode.peak_outlierness,
                row.episode.suspected_measurement_error ? "yes" : "no");
    if (row.plant_id == kVictimPlant && row.episode.entity == kVictimSensor) {
      victim_on_board = true;
    }
  }

  // Guarantee 2: the quarantined line is on the board, tagged with its
  // plant, and the victim sensor really is quarantined in its own plant.
  const stream::SensorHealthSnapshot health = fleet.PlantHealth(kVictimPlant);
  bool victim_quarantined = false;
  for (const auto& sensor : health.sensors) {
    if (sensor.sensor_id == kVictimSensor &&
        sensor.state == stream::SensorHealthState::kQuarantined) {
      victim_quarantined = true;
    }
  }
  std::printf("\nvictim %s/%s: quarantined=%s on_board=%s\n",
              kVictimPlant.c_str(), kVictimSensor.c_str(),
              victim_quarantined ? "yes" : "NO", victim_on_board ? "yes" : "NO");

  // Guarantee 3: exact fleet roll-up.
  const fleet::FleetStatsSnapshot stats = fleet.Stats();
  std::printf("\n%s\n", stats.ToString().c_str());
  const stream::StreamStatsSnapshot& agg = stats.aggregate;
  const bool conserved =
      agg.ingested == agg.scored + agg.dropped + agg.rejected_total() +
                          agg.quarantined_samples;
  const bool exact = agg.ingested == pushed;
  std::printf("conservation: %s   ingested==pushed: %s (%llu)\n",
              conserved ? "ok" : "VIOLATED", exact ? "ok" : "VIOLATED",
              static_cast<unsigned long long>(pushed));

  if (!fleet.Stop().ok()) return 1;
  if (!victim_quarantined || !victim_on_board) return 1;
  if (!conserved || !exact) return 1;
  std::printf("\nfleet monitor: all guarantees hold\n");
  return 0;
}
