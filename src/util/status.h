#ifndef HOD_UTIL_STATUS_H_
#define HOD_UTIL_STATUS_H_

#include <string>
#include <string_view>

namespace hod {

/// Error categories used throughout the library. Modeled after the
/// RocksDB/Abseil status idiom: functions that can fail return a `Status`
/// (or `StatusOr<T>`, see statusor.h) instead of throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kDeadlineExceeded,
};

/// A lightweight success-or-error result. Cheap to copy in the OK case
/// (no allocation); carries a message only on error.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and human-readable message.
  Status(StatusCode code, std::string_view message)
      : code_(code), message_(message) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string_view msg) {
    return Status(StatusCode::kInvalidArgument, msg);
  }
  static Status NotFound(std::string_view msg) {
    return Status(StatusCode::kNotFound, msg);
  }
  static Status FailedPrecondition(std::string_view msg) {
    return Status(StatusCode::kFailedPrecondition, msg);
  }
  static Status OutOfRange(std::string_view msg) {
    return Status(StatusCode::kOutOfRange, msg);
  }
  static Status Unimplemented(std::string_view msg) {
    return Status(StatusCode::kUnimplemented, msg);
  }
  static Status Internal(std::string_view msg) {
    return Status(StatusCode::kInternal, msg);
  }
  static Status DeadlineExceeded(std::string_view msg) {
    return Status(StatusCode::kDeadlineExceeded, msg);
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders e.g. "InvalidArgument: window must be positive".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Name of a status code, e.g. "NotFound".
std::string_view StatusCodeName(StatusCode code);

/// Evaluates `expr` (a Status expression); returns it from the enclosing
/// function if it is not OK. The enclosing function must return Status.
#define HOD_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::hod::Status hod_return_if_error_s = (expr); \
    if (!hod_return_if_error_s.ok()) return hod_return_if_error_s; \
  } while (false)

}  // namespace hod

#endif  // HOD_UTIL_STATUS_H_
