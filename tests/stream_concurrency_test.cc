// Multi-threaded smoke tests for hod::stream — these are the tests the CI
// ThreadSanitizer job runs. Assertions avoid timing-dependent quantities:
// per-sensor results are deterministic because each sensor's samples are
// produced by one thread and scored by one worker, in order.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/monitor.h"
#include "stream/engine.h"
#include "stream/sharded_scorer.h"
#include "util/rng.h"

namespace hod::stream {
namespace {

using hierarchy::ProductionLevel;

/// Per-sensor deterministic stream: stationary noise plus one fault burst
/// at a sensor-dependent position.
std::vector<double> SensorStream(uint64_t seed, size_t n) {
  Rng rng(seed);
  std::vector<double> values;
  values.reserve(n);
  double noise = 0.0;
  const size_t fault_at = 300 + static_cast<size_t>(seed % 7) * 50;
  for (size_t t = 0; t < n; ++t) {
    noise = 0.7 * noise + rng.Gaussian(0.0, 0.25);
    double value = 50.0 + noise;
    if (t >= fault_at && t < fault_at + 12) value += 6.0;
    values.push_back(value);
  }
  return values;
}

std::string SensorId(size_t i) { return "sensor_" + std::to_string(i); }

TEST(StreamConcurrency, MultiProducerParityWithSerialReference) {
  constexpr size_t kSensors = 8;
  constexpr size_t kProducers = 4;
  constexpr size_t kSamplesPerSensor = 1200;

  StreamEngineOptions options;
  options.num_shards = 4;
  options.queue_capacity = 256;
  options.max_batch = 32;
  options.monitor.warmup = 64;
  StreamEngine engine(options);
  for (size_t i = 0; i < kSensors; ++i) {
    ASSERT_TRUE(engine.AddSensor(SensorId(i), ProductionLevel::kPhase).ok());
  }
  ASSERT_TRUE(engine.Start().ok());

  // Each producer owns a disjoint set of sensors, so per-sensor sample
  // order is well-defined.
  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&engine, p] {
      for (size_t i = p; i < kSensors; i += kProducers) {
        const std::vector<double> values = SensorStream(i + 1, kSamplesPerSensor);
        for (size_t t = 0; t < values.size(); ++t) {
          auto ack = engine.Ingest({SensorId(i), ProductionLevel::kPhase,
                                    static_cast<double>(t), values[t]});
          ASSERT_TRUE(ack.ok()) << ack.status().ToString();
        }
      }
    });
  }
  for (auto& producer : producers) producer.join();
  ASSERT_TRUE(engine.Flush().ok());
  ASSERT_TRUE(engine.Stop().ok());

  StreamStatsSnapshot stats = engine.stats();
  EXPECT_EQ(stats.ingested, kSensors * kSamplesPerSensor);
  EXPECT_EQ(stats.scored, kSensors * kSamplesPerSensor)
      << "Stop() must drain every queue";
  EXPECT_EQ(stats.dropped, 0u) << "kBlock loses nothing";
  EXPECT_EQ(stats.rejected_total(), 0u);

  // Every sensor's monitor must agree exactly with a serial reference run:
  // the sharded engine may not reorder any sensor's samples.
  uint64_t total_alarms = 0;
  for (size_t i = 0; i < kSensors; ++i) {
    core::OnlineMonitor reference(options.monitor);
    for (double value : SensorStream(i + 1, kSamplesPerSensor)) {
      ASSERT_TRUE(reference.Push(value).ok());
    }
    auto probe = engine.Probe(SensorId(i));
    ASSERT_TRUE(probe.ok()) << probe.status().ToString();
    EXPECT_EQ(probe->samples_seen, kSamplesPerSensor) << SensorId(i);
    EXPECT_EQ(probe->alarms_raised, reference.alarms_raised()) << SensorId(i);
    EXPECT_EQ(probe->alarm, reference.alarm()) << SensorId(i);
    total_alarms += probe->alarms_raised;
  }
  EXPECT_GE(total_alarms, kSensors) << "every fault burst must alarm";
  EXPECT_EQ(stats.alarms_raised, total_alarms);

  // The collector saw the alarms too.
  EngineSnapshot snapshot = engine.Snapshot();
  EXPECT_GT(snapshot.sequence, 0u);
  const LevelOutlierState& phase =
      snapshot.levels[hierarchy::LevelValue(ProductionLevel::kPhase) - 1];
  EXPECT_EQ(phase.alarms_raised, total_alarms);
  EXPECT_FALSE(engine.Episodes().empty());
}

TEST(StreamConcurrency, FlushMakesCountersExactMidStream) {
  StreamEngineOptions options;
  options.num_shards = 2;
  options.queue_capacity = 64;
  options.monitor.warmup = 32;
  // Constant-value feeds would trip the flatline quarantine; this test is
  // about drain accounting only.
  options.health.enabled = false;
  StreamEngine engine(options);
  ASSERT_TRUE(engine.AddSensor("a").ok());
  ASSERT_TRUE(engine.AddSensor("b").ok());
  ASSERT_TRUE(engine.Start().ok());
  for (size_t t = 0; t < 500; ++t) {
    ASSERT_TRUE(engine
                    .Ingest({"a", ProductionLevel::kPhase,
                             static_cast<double>(t), 50.0})
                    .ok());
    ASSERT_TRUE(engine
                    .Ingest({"b", ProductionLevel::kPhase,
                             static_cast<double>(t), 60.0})
                    .ok());
  }
  ASSERT_TRUE(engine.Flush().ok());
  StreamStatsSnapshot stats = engine.stats();
  EXPECT_EQ(stats.ingested, 1000u);
  EXPECT_EQ(stats.scored, 1000u) << "Flush waits for full drain";
  ASSERT_TRUE(engine.Stop().ok());
}

TEST(StreamConcurrency, DropOldestShedsLoadButTerminates) {
  StreamEngineOptions options;
  options.num_shards = 2;
  options.queue_capacity = 4;  // deliberately starved
  options.max_batch = 2;
  options.backpressure = BackpressurePolicy::kDropOldest;
  options.monitor.warmup = 16;
  // This test is about eviction accounting, not sensor health: the
  // constant-value feed would flatline-quarantine the sensors once the
  // worker outpaces ~48 samples (timing-dependent — it reliably happens
  // under TSan's slowdown), and quarantined samples are deliberately
  // neither scored nor dropped.
  options.health.enabled = false;
  StreamEngine engine(options);
  ASSERT_TRUE(engine.AddSensor("a").ok());
  ASSERT_TRUE(engine.AddSensor("b").ok());
  ASSERT_TRUE(engine.Start().ok());
  constexpr size_t kTotal = 4000;
  for (size_t t = 0; t < kTotal; ++t) {
    const std::string& id = (t % 2 == 0) ? "a" : "b";
    ASSERT_TRUE(engine
                    .Ingest({id, ProductionLevel::kPhase,
                             static_cast<double>(t), 50.0})
                    .ok());
  }
  ASSERT_TRUE(engine.Stop().ok());
  StreamStatsSnapshot stats = engine.stats();
  EXPECT_EQ(stats.ingested, kTotal);
  // Conservation: every accepted sample was either scored or evicted.
  EXPECT_EQ(stats.scored + stats.dropped, kTotal);
  EXPECT_EQ(stats.rejected_total(), 0u);
}

TEST(StreamConcurrency, RejectPolicyConservesSamples) {
  StreamEngineOptions options;
  options.num_shards = 1;
  options.queue_capacity = 8;
  options.backpressure = BackpressurePolicy::kReject;
  options.monitor.warmup = 16;
  // Same as above: isolate the backpressure policy from the flatline
  // quarantine a constant feed would otherwise (timing-dependently) earn.
  options.health.enabled = false;
  StreamEngine engine(options);
  ASSERT_TRUE(engine.AddSensor("a").ok());
  ASSERT_TRUE(engine.Start().ok());
  size_t accepted = 0;
  for (size_t t = 0; t < 2000; ++t) {
    auto ack = engine.Ingest(
        {"a", ProductionLevel::kPhase, static_cast<double>(t), 50.0});
    if (ack.ok()) {
      ++accepted;
    } else {
      ASSERT_EQ(ack.status().code(), StatusCode::kOutOfRange);
    }
  }
  ASSERT_TRUE(engine.Stop().ok());
  StreamStatsSnapshot stats = engine.stats();
  EXPECT_EQ(stats.ingested, 2000u) << "reject happens after validation";
  EXPECT_EQ(stats.scored, accepted);
  EXPECT_EQ(stats.rejected_queue_full, 2000u - accepted);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_GT(stats.scored, 0u);
}

TEST(StreamConcurrency, StopWithoutFlushDrainsEverything) {
  StreamEngineOptions options;
  options.num_shards = 4;
  options.queue_capacity = 1024;
  options.monitor.warmup = 32;
  // Constant-value feeds would trip the flatline quarantine; this test is
  // about drain-on-stop accounting only.
  options.health.enabled = false;
  StreamEngine engine(options);
  for (size_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(engine.AddSensor(SensorId(i)).ok());
  }
  ASSERT_TRUE(engine.Start().ok());
  for (size_t t = 0; t < 300; ++t) {
    for (size_t i = 0; i < 6; ++i) {
      ASSERT_TRUE(engine
                      .Ingest({SensorId(i), ProductionLevel::kPhase,
                               static_cast<double>(t), 50.0})
                      .ok());
    }
  }
  // No Flush: Stop alone must not lose queued samples.
  ASSERT_TRUE(engine.Stop().ok());
  StreamStatsSnapshot stats = engine.stats();
  EXPECT_EQ(stats.ingested, 1800u);
  EXPECT_EQ(stats.scored, 1800u);
}

TEST(StreamConcurrency, SpscEnginePartityWithSerialReference) {
  // producer_hint = kSinglePerShard with producers partitioned by the
  // router's own shard hash: each shard's queue genuinely has exactly one
  // producer, so the SPSC ring is legal — and per-sensor results must
  // still match a serial reference exactly.
  constexpr size_t kSensors = 8;
  constexpr size_t kSamplesPerSensor = 1200;

  StreamEngineOptions options;
  options.num_shards = 4;
  options.queue_capacity = 256;
  options.max_batch = 32;
  options.monitor.warmup = 64;
  options.producer_hint = ProducerHint::kSinglePerShard;
  StreamEngine engine(options);
  for (size_t i = 0; i < kSensors; ++i) {
    ASSERT_TRUE(engine.AddSensor(SensorId(i), ProductionLevel::kPhase).ok());
  }
  ASSERT_TRUE(engine.Start().ok());

  // One producer thread per shard, owning exactly the sensors the router
  // hashes there.
  std::vector<std::thread> producers;
  for (size_t shard = 0; shard < options.num_shards; ++shard) {
    producers.emplace_back([&engine, &options, shard] {
      for (size_t i = 0; i < kSensors; ++i) {
        if (StableHash64(SensorId(i)) % options.num_shards != shard) continue;
        const std::vector<double> values =
            SensorStream(i + 1, kSamplesPerSensor);
        for (size_t t = 0; t < values.size(); ++t) {
          auto ack = engine.Ingest({SensorId(i), ProductionLevel::kPhase,
                                    static_cast<double>(t), values[t]});
          ASSERT_TRUE(ack.ok()) << ack.status().ToString();
        }
      }
    });
  }
  for (auto& producer : producers) producer.join();
  ASSERT_TRUE(engine.Flush().ok());
  ASSERT_TRUE(engine.Stop().ok());

  StreamStatsSnapshot stats = engine.stats();
  EXPECT_EQ(stats.ingested, kSensors * kSamplesPerSensor);
  EXPECT_EQ(stats.scored, kSensors * kSamplesPerSensor);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.rejected_total(), 0u);
  EXPECT_EQ(stats.forward_failed, 0u);

  for (size_t i = 0; i < kSensors; ++i) {
    core::OnlineMonitor reference(options.monitor);
    for (double value : SensorStream(i + 1, kSamplesPerSensor)) {
      ASSERT_TRUE(reference.Push(value).ok());
    }
    auto probe = engine.Probe(SensorId(i));
    ASSERT_TRUE(probe.ok()) << probe.status().ToString();
    EXPECT_EQ(probe->samples_seen, kSamplesPerSensor) << SensorId(i);
    EXPECT_EQ(probe->alarms_raised, reference.alarms_raised()) << SensorId(i);
    EXPECT_EQ(probe->alarm, reference.alarm()) << SensorId(i);
  }
}

// Direct-scorer fixture for the bugfix regressions: its own stats block
// and collector queue, no engine around it, so the collector can be closed
// mid-stream deterministically.
struct ScorerHarness {
  explicit ScorerHarness(ShardedScorerOptions options)
      : stats(options.num_shards),
        collector(1 << 16, BackpressurePolicy::kBlock),
        scorer(options, &stats, &collector, nullptr) {}
  StreamStats stats;
  BoundedQueue<ScoredSample> collector;
  ShardedScorer scorer;
};

ShardedScorerOptions TinyScorerOptions(ProducerHint hint) {
  ShardedScorerOptions options;
  options.num_shards = 2;
  options.queue_capacity = 32;
  options.max_batch = 8;
  // Enough warmup rows for the AR(4) fit: an underdetermined fit makes
  // the warmup-completing Push fail, which is monitor behavior, not what
  // these tests are about.
  options.monitor.warmup = 32;
  // Forward every scored sample, so collector failures are exercised hard.
  options.forward_threshold = -1.0;
  options.producer_hint = hint;
  return options;
}

TEST(StreamConcurrency, ClosedCollectorCountsForwardFailuresNotForwards) {
  // Regression (sharded_scorer.cc bugfix): forwarded_ used to increment
  // even when collector_->Push failed, so forwarded() overstated what the
  // collector would ever see and the engine's Flush could wait forever.
  for (ProducerHint hint :
       {ProducerHint::kUnknown, ProducerHint::kSinglePerShard}) {
    ScorerHarness h(TinyScorerOptions(hint));
    ASSERT_TRUE(h.scorer.AddSensor(0, "a").ok());
    ASSERT_TRUE(h.scorer.Start().ok());
    constexpr size_t kBefore = 400, kAfter = 400;
    for (size_t t = 0; t < kBefore; ++t) {
      ASSERT_TRUE(h.scorer
                      .Submit(0,
                              {"a", ProductionLevel::kPhase,
                               static_cast<double>(t), 50.0},
                              BackpressurePolicy::kBlock)
                      .ok());
    }
    ASSERT_TRUE(h.scorer.Flush().ok());
    const uint64_t forwarded_before = h.scorer.forwarded();
    EXPECT_EQ(h.scorer.forward_failed(), 0u);

    // Close the collector mid-stream; every further forward must fail.
    h.collector.Close();
    for (size_t t = kBefore; t < kBefore + kAfter; ++t) {
      ASSERT_TRUE(h.scorer
                      .Submit(0,
                              {"a", ProductionLevel::kPhase,
                               static_cast<double>(t), 50.0},
                              BackpressurePolicy::kBlock)
                      .ok());
    }
    ASSERT_TRUE(h.scorer.Flush().ok());  // must not hang
    h.scorer.Stop();

    StreamStatsSnapshot stats = h.stats.Snapshot();
    EXPECT_EQ(stats.scored, kBefore + kAfter) << "scoring is unaffected";
    EXPECT_EQ(h.scorer.forwarded(), forwarded_before)
        << "failed pushes must not count as forwarded";
    EXPECT_EQ(h.scorer.forward_failed(), kAfter)
        << "warmup is over, every post-close sample forwards and fails";
    EXPECT_EQ(stats.forward_failed, h.scorer.forward_failed());
    // Conservation: the collector received exactly forwarded() events.
    std::vector<ScoredSample> received;
    while (h.collector.TryPopBatch(received, 1024) > 0) {
    }
    EXPECT_EQ(received.size(), h.scorer.forwarded());
  }
}

TEST(StreamConcurrency, StartScoreStopInterleavingIsRaceFree) {
  // Regression (sharded_scorer.h bugfix): running_/stopped_ were plain
  // bools written by Stop() while Submit callers read them — a data race
  // TSan flags. Now atomics: hammer Submit from two threads while another
  // stops the scorer mid-stream; every sample must still be accounted.
  for (ProducerHint hint :
       {ProducerHint::kUnknown, ProducerHint::kSinglePerShard}) {
    ShardedScorerOptions options = TinyScorerOptions(hint);
    options.num_shards = 2;
    ScorerHarness h(options);
    ASSERT_TRUE(h.scorer.AddSensor(0, "a").ok());
    ASSERT_TRUE(h.scorer.AddSensor(1, "b").ok());
    ASSERT_TRUE(h.scorer.Start().ok());
    EXPECT_TRUE(h.scorer.running());

    std::atomic<uint64_t> accepted{0};
    std::atomic<uint64_t> rejected_closed{0};
    auto submitter = [&](size_t shard, const char* id) {
      for (size_t t = 0; t < 20000; ++t) {
        Status status = h.scorer.Submit(
            shard,
            {id, ProductionLevel::kPhase, static_cast<double>(t), 50.0},
            BackpressurePolicy::kBlock);
        if (status.ok()) {
          accepted.fetch_add(1);
        } else {
          ASSERT_EQ(status.code(), StatusCode::kFailedPrecondition);
          rejected_closed.fetch_add(1);
          break;  // queue closed under us: the scorer is stopping
        }
        if (!h.scorer.running()) break;  // racy read — the point of the test
      }
    };
    std::thread p1(submitter, 0, "a");
    std::thread p2(submitter, 1, "b");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    h.scorer.Stop();
    p1.join();
    p2.join();
    EXPECT_FALSE(h.scorer.running());

    // Conservation across the shutdown race: every accepted sample was
    // scored (kBlock drops nothing), every refused one was counted.
    StreamStatsSnapshot stats = h.stats.Snapshot();
    EXPECT_EQ(stats.scored, accepted.load());
    EXPECT_EQ(stats.rejected_closed, rejected_closed.load());
  }
}

TEST(StreamConcurrency, SubmitOnClosedQueueIsRecordedAsRejected) {
  // Regression (sharded_scorer.cc bugfix): Submit on a closed queue used
  // to silently vanish — submitted was decremented but nothing recorded,
  // so `ingested == scored + dropped + rejected + quarantined` broke on
  // every shutdown race.
  ScorerHarness h(TinyScorerOptions(ProducerHint::kUnknown));
  ASSERT_TRUE(h.scorer.AddSensor(0, "a").ok());
  ASSERT_TRUE(h.scorer.Start().ok());
  h.scorer.Stop();
  Status status = h.scorer.Submit(
      0, {"a", ProductionLevel::kPhase, 0.0, 50.0},
      BackpressurePolicy::kBlock);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  StreamStatsSnapshot stats = h.stats.Snapshot();
  EXPECT_EQ(stats.rejected_closed, 1u);
  EXPECT_EQ(stats.rejected_total(), 1u);
  const size_t phase_index =
      StreamStats::LevelIndex(ProductionLevel::kPhase);
  EXPECT_EQ(stats.level_rejected[phase_index], 1u);
}

TEST(StreamConcurrency, FlushConvergesUnderEvictionStorm) {
  // Flush's predicate is processed + dropped == submitted per shard;
  // kDropOldest evictions move the `dropped` term concurrently with the
  // drain loop. Flush must still return, for both queue kinds.
  for (ProducerHint hint :
       {ProducerHint::kUnknown, ProducerHint::kSinglePerShard}) {
    ShardedScorerOptions options = TinyScorerOptions(hint);
    options.num_shards = 1;
    options.queue_capacity = 8;  // deliberately starved: constant eviction
    options.max_batch = 4;
    ScorerHarness h(options);
    ASSERT_TRUE(h.scorer.AddSensor(0, "a").ok());
    ASSERT_TRUE(h.scorer.Start().ok());

    std::atomic<bool> done{false};
    std::thread producer([&] {
      for (size_t t = 0; t < 30000; ++t) {
        ASSERT_TRUE(h.scorer
                        .Submit(0,
                                {"a", ProductionLevel::kPhase,
                                 static_cast<double>(t), 50.0},
                                BackpressurePolicy::kDropOldest)
                        .ok());
      }
      done.store(true);
    });
    // Flush repeatedly while evictions race the drain loop. Each call must
    // return (the wait predicate converges between pushes), not deadlock.
    while (!done.load()) {
      ASSERT_TRUE(h.scorer.Flush().ok());
    }
    producer.join();
    ASSERT_TRUE(h.scorer.Flush().ok());
    h.scorer.Stop();

    StreamStatsSnapshot stats = h.stats.Snapshot();
    h.scorer.FillQueueStats(stats);
    EXPECT_EQ(stats.scored + stats.dropped, 30000u)
        << "hint=" << ProducerHintName(hint);
  }
}

}  // namespace
}  // namespace hod::stream
