#include "detect/score_utils.h"

#include <algorithm>
#include <cmath>

#include "timeseries/stats.h"

namespace hod::detect {

void ClampScores(std::vector<double>& scores) {
  for (double& s : scores) {
    if (!(s >= 0.0)) s = 0.0;  // also catches NaN
    if (s > 1.0) s = 1.0;
  }
}

std::vector<double> MinMaxNormalize(const std::vector<double>& raw) {
  std::vector<double> out(raw.size(), 0.0);
  if (raw.empty()) return out;
  const double lo = *std::min_element(raw.begin(), raw.end());
  const double hi = *std::max_element(raw.begin(), raw.end());
  if (hi <= lo) return out;
  for (size_t i = 0; i < raw.size(); ++i) out[i] = (raw[i] - lo) / (hi - lo);
  return out;
}

std::vector<double> SoftNormalize(const std::vector<double>& raw) {
  std::vector<double> positives;
  for (double r : raw) {
    if (r > 0.0 && std::isfinite(r)) positives.push_back(r);
  }
  double scale = positives.empty() ? 1.0 : ts::Median(std::move(positives));
  if (scale <= 0.0) scale = 1.0;
  std::vector<double> out(raw.size(), 0.0);
  for (size_t i = 0; i < raw.size(); ++i) {
    const double r = raw[i];
    if (r > 0.0 && std::isfinite(r)) out[i] = r / (r + scale);
    else if (r > 0.0) out[i] = 1.0;  // +inf deviation
  }
  return out;
}

std::vector<Outlier> ExtractOutliers(const std::vector<double>& scores,
                                     double threshold, double start_time,
                                     double interval) {
  std::vector<Outlier> outliers;
  for (size_t i = 0; i < scores.size(); ++i) {
    if (scores[i] > threshold) {
      outliers.push_back(Outlier{i, scores[i],
                                 start_time + interval * static_cast<double>(i)});
    }
  }
  return outliers;
}

Detection MakeDetection(std::vector<double> scores, double threshold,
                        double start_time, double interval) {
  Detection detection;
  ClampScores(scores);
  detection.outliers =
      ExtractOutliers(scores, threshold, start_time, interval);
  detection.scores = std::move(scores);
  return detection;
}

double TopKMean(const std::vector<double>& scores, size_t k) {
  if (scores.empty() || k == 0) return 0.0;
  std::vector<double> sorted(scores);
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());
  const size_t count = std::min(k, sorted.size());
  double sum = 0.0;
  for (size_t i = 0; i < count; ++i) sum += sorted[i];
  return sum / static_cast<double>(count);
}

}  // namespace hod::detect
