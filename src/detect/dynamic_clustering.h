#ifndef HOD_DETECT_DYNAMIC_CLUSTERING_H_
#define HOD_DETECT_DYNAMIC_CLUSTERING_H_

#include <vector>

#include "detect/detector.h"

namespace hod::detect {

/// Dynamic (sequential leader) clustering, ADMIT-style (Sequeira & Zaki
/// 2002) — Table 1 row 6, family DA, data types SSQ + TSS.
///
/// Windows stream through a leader clusterer: a window joins the first
/// cluster whose leader is within `radius` (match-fraction distance), or
/// founds a new cluster. Clusters that stay small relative to the training
/// mass are anomalous; a test window inherits the outlierness of the
/// cluster it lands in (or 1.0 if it founds a new one).
struct DynamicClusteringOptions {
  size_t window = 8;
  /// Maximum mismatch fraction for joining a cluster, in [0,1].
  double radius = 0.25;
  /// Clusters holding fewer than this fraction of training windows are
  /// considered anomalous neighborhoods.
  double small_cluster_fraction = 0.02;
};

class DynamicClusteringDetector : public SequenceDetector {
 public:
  explicit DynamicClusteringDetector(DynamicClusteringOptions options = {});

  std::string name() const override { return "DynamicClustering"; }

  Status Train(const std::vector<ts::DiscreteSequence>& normal) override;

  StatusOr<std::vector<double>> Score(
      const ts::DiscreteSequence& sequence) const override;

  size_t num_clusters() const { return leaders_.size(); }

 private:
  DynamicClusteringOptions options_;
  std::vector<std::vector<ts::Symbol>> leaders_;
  std::vector<size_t> cluster_counts_;
  size_t total_windows_ = 0;
  bool trained_ = false;
};

}  // namespace hod::detect

#endif  // HOD_DETECT_DYNAMIC_CLUSTERING_H_
