#include "sim/anomaly.h"

#include <algorithm>
#include <cmath>

namespace hod::sim {

std::string_view OutlierTypeName(OutlierType type) {
  switch (type) {
    case OutlierType::kAdditive:
      return "Additive Outlier";
    case OutlierType::kInnovative:
      return "Innovative Outlier";
    case OutlierType::kTemporaryChange:
      return "Temporary Change";
    case OutlierType::kLevelShift:
      return "Level Shift";
  }
  return "Unknown";
}

const std::vector<OutlierType>& AllOutlierTypes() {
  static const std::vector<OutlierType>* kTypes =
      new std::vector<OutlierType>{
          OutlierType::kAdditive, OutlierType::kInnovative,
          OutlierType::kTemporaryChange, OutlierType::kLevelShift};
  return *kTypes;
}

Status Inject(const InjectionSpec& spec, std::vector<double>& values,
              std::vector<uint8_t>& labels,
              const InjectionLabeling& labeling) {
  if (spec.position >= values.size()) {
    return Status::OutOfRange("injection position beyond series end");
  }
  if (labels.size() < values.size()) labels.resize(values.size(), 0);
  const size_t n = values.size();
  const double threshold =
      std::fabs(spec.magnitude) * labeling.label_threshold_fraction;

  switch (spec.type) {
    case OutlierType::kAdditive: {
      values[spec.position] += spec.magnitude;
      labels[spec.position] = 1;
      break;
    }
    case OutlierType::kInnovative: {
      // Shock propagates through the AR(1) impulse response phi^k.
      double effect = spec.magnitude;
      for (size_t k = spec.position; k < n; ++k) {
        values[k] += effect;
        if (std::fabs(effect) > threshold) labels[k] = 1;
        effect *= spec.ar_coefficient;
        if (std::fabs(effect) < 1e-6 * std::fabs(spec.magnitude)) break;
      }
      break;
    }
    case OutlierType::kTemporaryChange: {
      double effect = spec.magnitude;
      for (size_t k = spec.position; k < n; ++k) {
        values[k] += effect;
        if (std::fabs(effect) > threshold) labels[k] = 1;
        effect *= spec.decay;
        if (std::fabs(effect) < 1e-6 * std::fabs(spec.magnitude)) break;
      }
      break;
    }
    case OutlierType::kLevelShift: {
      for (size_t k = spec.position; k < n; ++k) {
        values[k] += spec.magnitude;
      }
      const size_t span =
          std::min(n, spec.position + labeling.level_shift_label_span);
      for (size_t k = spec.position; k < span; ++k) labels[k] = 1;
      break;
    }
  }
  return Status::Ok();
}

}  // namespace hod::sim
