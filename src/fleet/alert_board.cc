#include "fleet/alert_board.h"

#include <algorithm>
#include <utility>

namespace hod::fleet {

void FleetAlertBoard::UpdatePlant(const std::string& plant_id,
                                  std::vector<core::AlertEpisode> episodes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (episodes.empty()) {
    live_.erase(plant_id);
    return;
  }
  live_[plant_id] = std::move(episodes);
}

void FleetAlertBoard::ArchivePlant(const std::string& plant_id,
                                   std::vector<core::AlertEpisode> episodes) {
  std::lock_guard<std::mutex> lock(mu_);
  live_.erase(plant_id);
  if (episodes.empty()) {
    archived_.erase(plant_id);
    return;
  }
  archived_[plant_id] = std::move(episodes);
}

void FleetAlertBoard::ForgetPlant(const std::string& plant_id) {
  std::lock_guard<std::mutex> lock(mu_);
  live_.erase(plant_id);
  archived_.erase(plant_id);
}

std::vector<FleetAlertRow> FleetAlertBoard::Board() const {
  std::vector<FleetAlertRow> rows;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [plant_id, episodes] : live_) {
      for (const core::AlertEpisode& episode : episodes) {
        rows.push_back({plant_id, episode, /*archived=*/false});
      }
    }
    for (const auto& [plant_id, episodes] : archived_) {
      for (const core::AlertEpisode& episode : episodes) {
        rows.push_back({plant_id, episode, /*archived=*/true});
      }
    }
  }
  std::stable_sort(rows.begin(), rows.end(),
                   [](const FleetAlertRow& a, const FleetAlertRow& b) {
                     const int sa = static_cast<int>(a.episode.severity);
                     const int sb = static_cast<int>(b.episode.severity);
                     if (sa != sb) return sa > sb;  // critical first
                     if (a.episode.group_outage != b.episode.group_outage) {
                       // A line-down incident outranks any single-entity
                       // episode of the same severity.
                       return a.episode.group_outage;
                     }
                     if (a.episode.peak_outlierness !=
                         b.episode.peak_outlierness) {
                       return a.episode.peak_outlierness >
                              b.episode.peak_outlierness;
                     }
                     if (a.plant_id != b.plant_id) {
                       return a.plant_id < b.plant_id;
                     }
                     return a.episode.entity < b.episode.entity;
                   });
  return rows;
}

size_t FleetAlertBoard::live_plants() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_.size();
}

size_t FleetAlertBoard::archived_plants() const {
  std::lock_guard<std::mutex> lock(mu_);
  return archived_.size();
}

}  // namespace hod::fleet
