// EscalationBridge behaviour: snapshot diffing, one-shot escalation per
// alarm, stats accounting, alert-board integration, and thread-safety of
// the bridge loop against producers, the collector, and the checkpoint
// timer.

#include "stream/escalation.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/hierarchical_detector.h"
#include "sim/plant.h"
#include "stream/engine.h"
#include "util/rng.h"

namespace hod::stream {
namespace {

using hierarchy::ProductionLevel;

class StreamEscalationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim::PlantOptions options;
    options.num_lines = 1;
    options.machines_per_line = 2;
    options.jobs_per_machine = 6;
    options.seed = 41;
    sim::ScenarioOptions scenario;
    scenario.process_anomaly_rate = 0.3;
    scenario.glitch_rate = 0.2;
    plant_ = sim::BuildPlant(options, scenario).value();
  }

  StreamEngineOptions SyncOptions() const {
    StreamEngineOptions options;
    options.synchronous = true;
    options.monitor.warmup = 32;
    options.snapshot_every = 8;
    options.health.staleness_timeout = 0.0;
    return options;
  }

  /// Feeds baseline noise then a spike, timestamped inside the machine's
  /// first job so the escalated alarm resolves to a real production scope.
  void FeedAlarm(StreamEngine& engine, const std::string& sensor_id,
                 double t0) {
    Rng rng(7);
    double noise = 0.0;
    for (size_t i = 0; i < 120; ++i) {
      noise = 0.7 * noise + rng.Gaussian(0.0, 0.25);
      double value = 50.0 + noise;
      if (i >= 100) value += 8.0;  // sustained spike -> alarm
      auto ack = engine.Ingest(
          {sensor_id, ProductionLevel::kPhase, t0 + i, value});
      ASSERT_TRUE(ack.ok()) << ack.status().ToString();
    }
  }

  sim::SimulatedPlant plant_;
};

TEST_F(StreamEscalationTest, PollEscalatesEachNewAlarmExactlyOnce) {
  const auto& machine = plant_.production.lines[0].machines[0];
  const std::string sensor = machine.id + ".bed_temp_a";
  const double t0 = machine.jobs.front().start_time;

  StreamEngine engine(SyncOptions());
  ASSERT_TRUE(engine.AddSensor(sensor, ProductionLevel::kPhase).ok());
  // A sensor the detector's production does not know: escalation must
  // count it as unresolved, not fail the run.
  ASSERT_TRUE(engine.AddSensor("ghost.x", ProductionLevel::kPhase).ok());
  ASSERT_TRUE(engine.Start().ok());
  FeedAlarm(engine, sensor, t0);
  FeedAlarm(engine, "ghost.x", t0);
  ASSERT_TRUE(engine.Flush().ok());
  ASSERT_EQ(engine.Snapshot().active_alarms.size(), 2u);

  core::HierarchicalDetector detector(&plant_.production);
  EscalationBridge bridge(&engine, &detector);
  auto escalated = bridge.Poll();
  ASSERT_TRUE(escalated.ok()) << escalated.status().ToString();
  EXPECT_EQ(escalated.value(), 2u);

  const StreamStatsSnapshot stats = engine.stats();
  EXPECT_EQ(stats.escalation_runs, 1u);
  EXPECT_EQ(stats.escalation_entities, 2u);
  EXPECT_EQ(stats.escalation_unresolved, 1u);
  EXPECT_GT(stats.escalation_cache_misses, 0u);

  // Same snapshot: nothing to do.
  EXPECT_EQ(bridge.Poll().value(), 0u);
  // A fresh snapshot with the SAME alarms must not re-escalate them.
  ASSERT_TRUE(engine.Flush().ok());
  EXPECT_EQ(bridge.Poll().value(), 0u);
  EXPECT_EQ(engine.stats().escalation_runs, 1u);
}

TEST_F(StreamEscalationTest, EscalatedTripleLandsOnTheAlertBoard) {
  auto& machine = plant_.production.lines[0].machines[0];
  const std::string sensor = machine.id + ".bed_temp_a";
  const double t0 = machine.jobs.front().start_time;

  // Plant a real anomaly in the production data (whole redundancy group,
  // so the triple carries support) — the stream alarm below is what
  // triggers escalation, but the detector scores the plant's own series.
  for (auto& phase : machine.jobs.front().phases) {
    for (auto& [series_sensor, series] : phase.sensor_series) {
      if (series.empty()) continue;
      series[series.size() / 2] += 1000.0;
    }
  }

  StreamEngine engine(SyncOptions());
  ASSERT_TRUE(engine.AddSensor(sensor, ProductionLevel::kPhase).ok());
  ASSERT_TRUE(engine.Start().ok());
  FeedAlarm(engine, sensor, t0);
  ASSERT_TRUE(engine.Flush().ok());

  core::HierarchicalDetector detector(&plant_.production);
  EscalationBridge bridge(&engine, &detector);
  ASSERT_TRUE(bridge.Poll().ok());
  const StreamStatsSnapshot stats = engine.stats();
  ASSERT_GT(stats.escalation_findings, 0u);

  // The hierarchical findings merge into the sensor's episode and carry
  // the Algorithm-1 triple (support is unreachable for raw stream
  // findings, which always report support 0).
  bool found_escalated = false;
  for (const auto& episode : engine.Episodes()) {
    if (episode.entity != sensor) continue;
    if (episode.escalated_findings == 0) continue;
    found_escalated = true;
    EXPECT_GE(episode.peak_global_score, 1);
    EXPECT_GT(episode.peak_outlierness, 0.0);
  }
  EXPECT_TRUE(found_escalated);
}

TEST_F(StreamEscalationTest, ReRaisedAlarmEscalatesAgain) {
  const auto& machine = plant_.production.lines[0].machines[0];
  const std::string sensor = machine.id + ".bed_temp_a";
  const double t0 = machine.jobs.front().start_time;

  StreamEngineOptions options = SyncOptions();
  StreamEngine engine(options);
  ASSERT_TRUE(engine.AddSensor(sensor, ProductionLevel::kPhase).ok());
  ASSERT_TRUE(engine.Start().ok());
  FeedAlarm(engine, sensor, t0);
  ASSERT_TRUE(engine.Flush().ok());

  core::HierarchicalDetector detector(&plant_.production);
  EscalationBridge bridge(&engine, &detector);
  EXPECT_EQ(bridge.Poll().value(), 1u);

  // Let the alarm clear (baseline values), then re-raise it later in the
  // same job: a NEW alarm (different `since`) must escalate again.
  Rng rng(9);
  double noise = 0.0;
  for (size_t i = 0; i < 40; ++i) {
    noise = 0.7 * noise + rng.Gaussian(0.0, 0.25);
    auto ack = engine.Ingest(
        {sensor, ProductionLevel::kPhase, t0 + 120 + i, 50.0 + noise});
    ASSERT_TRUE(ack.ok());
  }
  ASSERT_TRUE(engine.Flush().ok());
  ASSERT_TRUE(engine.Snapshot().active_alarms.empty());
  EXPECT_EQ(bridge.Poll().value(), 0u);  // cleared, pruned

  for (size_t i = 0; i < 10; ++i) {
    auto ack = engine.Ingest(
        {sensor, ProductionLevel::kPhase, t0 + 160 + i, 58.0});
    ASSERT_TRUE(ack.ok());
  }
  ASSERT_TRUE(engine.Flush().ok());
  ASSERT_EQ(engine.Snapshot().active_alarms.size(), 1u);
  EXPECT_EQ(bridge.Poll().value(), 1u);
  EXPECT_EQ(engine.stats().escalation_runs, 2u);
}

TEST_F(StreamEscalationTest, PollBeforeAnySnapshotIsANoop) {
  StreamEngine engine(SyncOptions());
  ASSERT_TRUE(engine.AddSensor("a", ProductionLevel::kPhase).ok());
  ASSERT_TRUE(engine.Start().ok());
  core::HierarchicalDetector detector(&plant_.production);
  EscalationBridge bridge(&engine, &detector);
  EXPECT_EQ(bridge.Poll().value(), 0u);
  EXPECT_EQ(engine.stats().escalation_runs, 0u);
}

TEST_F(StreamEscalationTest, BridgeThreadRunsAgainstLiveEngine) {
  // Thread-safety soak for TSan: two producers, the collector, the
  // watchdog, the background checkpoint timer, and the bridge loop all
  // run concurrently against one engine.
  const auto& machine = plant_.production.lines[0].machines[0];
  const std::string sensor_a = machine.id + ".bed_temp_a";
  const std::string sensor_b = machine.id + ".bed_temp_b";
  const double t0 = machine.jobs.front().start_time;

  StreamEngineOptions options;
  options.num_shards = 2;
  options.monitor.warmup = 32;
  options.snapshot_every = 8;
  options.health.staleness_timeout = 0.0;
  options.watchdog_interval = std::chrono::milliseconds(5);
  options.checkpoint_path =
      ::testing::TempDir() + "/escalation_soak_checkpoint.bin";
  options.checkpoint_interval = std::chrono::milliseconds(5);
  StreamEngine engine(options);
  ASSERT_TRUE(engine.AddSensor(sensor_a, ProductionLevel::kPhase).ok());
  ASSERT_TRUE(engine.AddSensor(sensor_b, ProductionLevel::kPhase).ok());
  ASSERT_TRUE(engine.Start().ok());

  core::HierarchicalDetector detector(&plant_.production);
  EscalationOptions bridge_options;
  bridge_options.poll_interval = std::chrono::milliseconds(2);
  EscalationBridge bridge(&engine, &detector, bridge_options);
  bridge.Start();

  auto produce = [&](const std::string& sensor_id, uint64_t seed) {
    Rng rng(seed);
    double noise = 0.0;
    for (size_t i = 0; i < 400; ++i) {
      noise = 0.7 * noise + rng.Gaussian(0.0, 0.25);
      double value = 50.0 + noise;
      if (i % 100 >= 80) value += 8.0;  // periodic alarm bursts
      (void)engine.Ingest(
          {sensor_id, ProductionLevel::kPhase, t0 + i, value});
    }
  };
  std::thread producer_a(produce, sensor_a, 11);
  std::thread producer_b(produce, sensor_b, 12);
  producer_a.join();
  producer_b.join();
  ASSERT_TRUE(engine.Flush().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  bridge.Stop();
  ASSERT_TRUE(engine.Stop().ok());
  const StreamStatsSnapshot stats = engine.stats();
  EXPECT_EQ(stats.ingested, 800u);
  EXPECT_EQ(stats.checkpoint_failures, 0u);
}

TEST_F(StreamEscalationTest, ConceptShiftMarksCoveringScopesDirtyOnce) {
  const auto& machine = plant_.production.lines[0].machines[0];
  const std::string sensor = machine.id + ".bed_temp_a";
  const double t0 = machine.jobs.front().start_time;

  StreamEngineOptions options = SyncOptions();
  options.shift.enabled = true;
  StreamEngine engine(options);
  ASSERT_TRUE(engine.AddSensor(sensor, ProductionLevel::kPhase).ok());
  ASSERT_TRUE(engine.AddSensor("ghost.x", ProductionLevel::kPhase).ok());
  ASSERT_TRUE(engine.Start().ok());
  // A genuine setpoint change on both: +6 units from sample 300 on.
  auto feed_shift = [&](const std::string& id, uint64_t seed) {
    Rng rng(seed);
    for (size_t i = 0; i < 500; ++i) {
      const double base = i >= 300 ? 56.0 : 50.0;
      auto ack = engine.Ingest({id, ProductionLevel::kPhase, t0 + i,
                                base + rng.Gaussian(0.0, 0.25)});
      ASSERT_TRUE(ack.ok()) << ack.status().ToString();
    }
  };
  feed_shift(sensor, 7);
  feed_shift("ghost.x", 9);
  ASSERT_TRUE(engine.Flush().ok());
  ASSERT_EQ(engine.stats().concept_shifts, 2u);

  core::HierarchicalDetector detector(&plant_.production);
  const uint64_t epoch_before = detector.cache_stats().epoch;
  EscalationBridge bridge(&engine, &detector);
  ASSERT_TRUE(bridge.Poll().ok());
  // Both shifts were consumed; only the one the production knows dirtied
  // a scope (ghost.x is NotFound — tolerated, not fatal).
  EXPECT_EQ(bridge.shifts_marked(), 2u);
  EXPECT_EQ(detector.cache_stats().invalidations, 1u);
  EXPECT_GT(detector.cache_stats().epoch, epoch_before)
      << "MarkDirty must bump the epoch so stale models rebuild";

  // Re-published snapshots must not re-dirty the same shift.
  ASSERT_TRUE(engine.Flush().ok());
  ASSERT_TRUE(bridge.Poll().ok());
  EXPECT_EQ(bridge.shifts_marked(), 2u);
  EXPECT_EQ(detector.cache_stats().invalidations, 1u);
  ASSERT_TRUE(engine.Stop().ok());
}

}  // namespace
}  // namespace hod::stream
