#include "util/status.h"

#include <gtest/gtest.h>

#include "util/statusor.h"

namespace hod {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotFound("missing thing").message(), "missing thing");
}

TEST(Status, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::InvalidArgument("bad window").ToString(),
            "InvalidArgument: bad window");
}

TEST(Status, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(Status, ReturnIfErrorPropagates) {
  auto inner = []() { return Status::OutOfRange("boom"); };
  auto outer = [&]() -> Status {
    HOD_RETURN_IF_ERROR(inner());
    return Status::Ok();
  };
  EXPECT_EQ(outer().code(), StatusCode::kOutOfRange);
}

TEST(Status, ReturnIfErrorPassesOk) {
  auto outer = []() -> Status {
    HOD_RETURN_IF_ERROR(Status::Ok());
    return Status::Internal("reached");
  };
  EXPECT_EQ(outer().code(), StatusCode::kInternal);
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.value_or(-1), -1);
}

TEST(StatusOr, OkStatusBecomesInternalError) {
  StatusOr<int> v = Status::Ok();
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInternal);
}

TEST(StatusOr, MoveOutValue) {
  StatusOr<std::string> v = std::string("hello");
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "hello");
}

TEST(StatusOr, AssignOrReturnMacro) {
  auto source = [](bool fail) -> StatusOr<int> {
    if (fail) return Status::InvalidArgument("fail");
    return 7;
  };
  auto consumer = [&](bool fail) -> StatusOr<int> {
    HOD_ASSIGN_OR_RETURN(int x, source(fail));
    HOD_ASSIGN_OR_RETURN(int y, source(fail));
    return x + y;
  };
  auto ok = consumer(false);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 14);
  EXPECT_EQ(consumer(true).status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusOr, ArrowOperator) {
  StatusOr<std::string> v = std::string("abc");
  EXPECT_EQ(v->size(), 3u);
}

}  // namespace
}  // namespace hod
