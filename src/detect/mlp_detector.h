#ifndef HOD_DETECT_MLP_DETECTOR_H_
#define HOD_DETECT_MLP_DETECTOR_H_

#include <cstdint>
#include <vector>

#include "detect/detector.h"
#include "detect/kmeans.h"

namespace hod::detect {

/// Neural-network behavior profiling (Ghosh et al. 1999) — Table 1 row 15,
/// family SA, data types PTS + SSQ + TSS.
///
/// A from-scratch multilayer perceptron (one tanh hidden layer, sigmoid
/// output) trained with SGD + backprop on labeled vectors; the predicted
/// anomaly probability is the outlierness. Class imbalance is handled by
/// weighting the minority (anomalous) class inversely to its frequency.
struct MlpOptions {
  size_t hidden_units = 16;
  size_t epochs = 80;
  double learning_rate = 0.05;
  double l2 = 1e-4;
  uint64_t seed = 42;
};

class MlpDetector : public VectorDetector {
 public:
  explicit MlpDetector(MlpOptions options = {});

  std::string name() const override { return "NeuralNetwork"; }
  bool supervised() const override { return true; }

  Status Train(const std::vector<std::vector<double>>& data) override;

  Status TrainSupervised(const std::vector<std::vector<double>>& data,
                         const Labels& labels) override;

  StatusOr<std::vector<double>> Score(
      const std::vector<std::vector<double>>& data) const override;

  /// Mean cross-entropy on the training set after fitting.
  double train_loss() const { return train_loss_; }

 private:
  double Forward(const std::vector<double>& x,
                 std::vector<double>* hidden) const;

  MlpOptions options_;
  ColumnScaler scaler_;
  /// w1_[h]: input weights of hidden unit h; b1_[h] its bias.
  std::vector<std::vector<double>> w1_;
  std::vector<double> b1_;
  /// Output weights/bias.
  std::vector<double> w2_;
  double b2_ = 0.0;
  double train_loss_ = 0.0;
  size_t dim_ = 0;
  bool trained_ = false;
};

}  // namespace hod::detect

#endif  // HOD_DETECT_MLP_DETECTOR_H_
