#ifndef HOD_DETECT_AR_DETECTOR_H_
#define HOD_DETECT_AR_DETECTOR_H_

#include <vector>

#include "detect/detector.h"

namespace hod::detect {

/// Autoregressive prediction-model detection (Hill & Minsker 2010,
/// streaming environmental sensors) — Table 1 row 20, family PM, data
/// types PTS + TSS.
///
/// Fits AR(p) coefficients by least squares (normal equations with ridge
/// regularization) on normal series. "Prediction models define the
/// outlier score based on the delta value to the predicted value": each
/// sample's outlierness grows with its one-step-ahead forecast residual in
/// units of the training residual sigma.
struct ArOptions {
  /// Model order p.
  size_t order = 5;
  /// Ridge term added to the normal equations' diagonal.
  double ridge = 1e-6;
  /// Residual (in training sigmas) at which outlierness reaches 0.5.
  double sigma_scale = 3.0;
};

class ArDetector : public SeriesDetector {
 public:
  explicit ArDetector(ArOptions options = {});

  std::string name() const override { return "AutoregressiveModel"; }

  Status Train(const std::vector<ts::TimeSeries>& normal) override;

  StatusOr<std::vector<double>> Score(
      const ts::TimeSeries& series) const override;

  /// AR coefficients (phi_1..phi_p) and intercept after training.
  const std::vector<double>& coefficients() const { return phi_; }
  double intercept() const { return intercept_; }
  double residual_sigma() const { return residual_sigma_; }

  /// One-step-ahead forecasts for a series (first `order` samples take the
  /// series mean). Exposed for the predictive-maintenance example.
  StatusOr<std::vector<double>> Forecast(const ts::TimeSeries& series) const;

 private:
  ArOptions options_;
  std::vector<double> phi_;
  double intercept_ = 0.0;
  double residual_sigma_ = 1.0;
  bool trained_ = false;
};

/// Solves the symmetric positive-definite system A x = b by Gaussian
/// elimination with partial pivoting (exposed for reuse/tests).
StatusOr<std::vector<double>> SolveLinearSystem(
    std::vector<std::vector<double>> a, std::vector<double> b);

}  // namespace hod::detect

#endif  // HOD_DETECT_AR_DETECTOR_H_
