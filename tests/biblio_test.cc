#include "biblio/corpus.h"

#include <gtest/gtest.h>

namespace hod::biblio {
namespace {

TEST(Corpus, AddAndCount) {
  Corpus corpus;
  corpus.Add({0, 2015, {"anomaly detection", "time series"}, {"cs"}});
  corpus.Add({0, 2016, {"anomaly detection"}, {"cs"}});
  corpus.Add({0, 2017, {"clustering", "time series"}, {"engineering"}});
  EXPECT_EQ(corpus.size(), 3u);
  EXPECT_EQ(corpus.Count({{"anomaly detection"}, {}}), 2u);
  EXPECT_EQ(corpus.Count({{"anomaly detection", "time series"}, {}}), 1u);
  EXPECT_EQ(corpus.Count({{"time series"}, {"engineering"}}), 1u);
  EXPECT_EQ(corpus.Count({{"ghost"}, {}}), 0u);
  EXPECT_EQ(corpus.Count({{"time series"}, {"ghost"}}), 0u);
}

TEST(Corpus, EmptyQueryMatchesEverything) {
  Corpus corpus;
  corpus.Add({0, 2015, {"a"}, {}});
  corpus.Add({0, 2015, {"b"}, {}});
  EXPECT_EQ(corpus.Count({}), 2u);
}

TEST(Corpus, SearchReturnsSortedIds) {
  Corpus corpus;
  corpus.Add({0, 2015, {"x"}, {}});
  corpus.Add({0, 2015, {"y"}, {}});
  corpus.Add({0, 2015, {"x"}, {}});
  auto hits = corpus.Search({{"x"}, {}});
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_LT(hits[0], hits[1]);
}

TEST(Corpus, KeywordFrequency) {
  Corpus corpus;
  corpus.Add({0, 2015, {"x"}, {}});
  corpus.Add({0, 2015, {"x", "y"}, {}});
  EXPECT_EQ(corpus.KeywordFrequency("x"), 2u);
  EXPECT_EQ(corpus.KeywordFrequency("z"), 0u);
}

TEST(Corpus, DuplicateKeywordInOneRecordCountsOnce) {
  Corpus corpus;
  corpus.Add({0, 2015, {"x", "x", "y"}, {"c", "c"}});
  EXPECT_EQ(corpus.Count({{"x"}, {}}), 1u);
  EXPECT_EQ(corpus.KeywordFrequency("x"), 1u);
  EXPECT_EQ(corpus.Count({{}, {"c"}}), 1u);
  auto hits = corpus.Search({{"x"}, {}});
  EXPECT_EQ(hits.size(), 1u);
}

TEST(Fig3, EightFieldsInFigureOrder) {
  const auto& fields = Fig3Fields();
  ASSERT_EQ(fields.size(), 8u);
  EXPECT_EQ(fields.front(), "anomaly detection");
  EXPECT_EQ(fields.back(), "intrusion detection");
}

TEST(Fig3, GeneratedCorpusReproducesShape) {
  CorpusOptions options;
  options.records = 40000;
  options.seed = 13;
  const Corpus corpus = GenerateResearchCorpus(options);
  EXPECT_EQ(corpus.size(), 40000u);
  const auto rows = RunFig3Queries(corpus);
  ASSERT_EQ(rows.size(), 8u);

  auto count_of = [&rows](const std::string& field) {
    for (const auto& row : rows) {
      if (row.field == field) return row;
    }
    return Fig3Row{};
  };
  const auto anomaly = count_of("anomaly detection");
  const auto fault = count_of("fault detection");
  const auto deviant = count_of("deviant discovery");
  const auto outlier = count_of("outlier detection");

  // Shape assertions from the paper's bar chart:
  // anomaly detection dominates the time-series literature...
  for (const auto& row : rows) {
    EXPECT_LE(row.time_series_count, anomaly.time_series_count)
        << row.field;
    // refinement can only shrink counts
    EXPECT_LE(row.automation_count, row.time_series_count) << row.field;
  }
  // ...fault detection is second and owns the automation-control niche...
  EXPECT_GT(fault.time_series_count, outlier.time_series_count);
  for (const auto& row : rows) {
    EXPECT_LE(row.automation_count, fault.automation_count) << row.field;
  }
  // ...and deviant discovery is a ghost term.
  EXPECT_LT(deviant.time_series_count, 20u);
}

TEST(Fig3, CorpusGenerationDeterministic) {
  CorpusOptions options;
  options.records = 5000;
  const auto a = RunFig3Queries(GenerateResearchCorpus(options));
  const auto b = RunFig3Queries(GenerateResearchCorpus(options));
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time_series_count, b[i].time_series_count);
    EXPECT_EQ(a[i].automation_count, b[i].automation_count);
  }
}

TEST(Fig3, FieldTermWithoutTimeSeriesTagExcluded) {
  // The paper filters every term with "time series"; documents using a
  // field term in other contexts must not count.
  Corpus corpus;
  corpus.Add({0, 2015, {"fault detection"}, {}});
  const auto rows = RunFig3Queries(corpus);
  for (const auto& row : rows) {
    EXPECT_EQ(row.time_series_count, 0u);
  }
}

}  // namespace
}  // namespace hod::biblio
