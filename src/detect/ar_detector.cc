#include "detect/ar_detector.h"

#include <algorithm>
#include <cmath>

#include "timeseries/stats.h"

namespace hod::detect {

StatusOr<std::vector<double>> SolveLinearSystem(
    std::vector<std::vector<double>> a, std::vector<double> b) {
  const size_t n = a.size();
  if (n == 0 || b.size() != n) {
    return Status::InvalidArgument("bad system dimensions");
  }
  for (size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    size_t pivot = col;
    for (size_t row = col + 1; row < n; ++row) {
      if (std::fabs(a[row][col]) > std::fabs(a[pivot][col])) pivot = row;
    }
    if (std::fabs(a[pivot][col]) < 1e-12) {
      return Status::Internal("singular system in AR fit");
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (size_t row = col + 1; row < n; ++row) {
      const double factor = a[row][col] / a[col][col];
      for (size_t k = col; k < n; ++k) a[row][k] -= factor * a[col][k];
      b[row] -= factor * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (size_t row = n; row-- > 0;) {
    double sum = b[row];
    for (size_t k = row + 1; k < n; ++k) sum -= a[row][k] * x[k];
    x[row] = sum / a[row][row];
  }
  return x;
}

ArDetector::ArDetector(ArOptions options) : options_(options) {}

Status ArDetector::Train(const std::vector<ts::TimeSeries>& normal) {
  if (options_.order == 0) return Status::InvalidArgument("order must be > 0");
  const size_t p = options_.order;
  // Assemble the least-squares normal equations over all training series:
  // design rows are [1, x_{t-1}, ..., x_{t-p}], target x_t.
  const size_t d = p + 1;
  std::vector<std::vector<double>> ata(d, std::vector<double>(d, 0.0));
  std::vector<double> atb(d, 0.0);
  size_t rows = 0;
  for (const auto& series : normal) {
    HOD_RETURN_IF_ERROR(series.Validate());
    const auto& x = series.values();
    for (size_t t = p; t < x.size(); ++t) {
      std::vector<double> row(d);
      row[0] = 1.0;
      for (size_t k = 0; k < p; ++k) row[k + 1] = x[t - 1 - k];
      for (size_t i = 0; i < d; ++i) {
        for (size_t j = i; j < d; ++j) ata[i][j] += row[i] * row[j];
        atb[i] += row[i] * x[t];
      }
      ++rows;
    }
  }
  if (rows < d) {
    return Status::InvalidArgument("not enough samples for AR order");
  }
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = 0; j < i; ++j) ata[i][j] = ata[j][i];
    ata[i][i] += options_.ridge * static_cast<double>(rows);
  }
  HOD_ASSIGN_OR_RETURN(std::vector<double> beta,
                       SolveLinearSystem(std::move(ata), std::move(atb)));
  intercept_ = beta[0];
  phi_.assign(beta.begin() + 1, beta.end());

  // Training residual sigma (robust: MAD over all residuals).
  std::vector<double> residuals;
  for (const auto& series : normal) {
    const auto& x = series.values();
    for (size_t t = p; t < x.size(); ++t) {
      double pred = intercept_;
      for (size_t k = 0; k < p; ++k) pred += phi_[k] * x[t - 1 - k];
      residuals.push_back(x[t] - pred);
    }
  }
  residual_sigma_ = ts::Mad(residuals);
  if (residual_sigma_ <= 0.0) residual_sigma_ = ts::StdDev(residuals);
  if (residual_sigma_ <= 0.0) residual_sigma_ = 1e-6;
  trained_ = true;
  return Status::Ok();
}

StatusOr<std::vector<double>> ArDetector::Forecast(
    const ts::TimeSeries& series) const {
  if (!trained_) return Status::FailedPrecondition("detector not trained");
  const auto& x = series.values();
  const size_t p = options_.order;
  std::vector<double> forecast(x.size(), ts::Mean(x));
  for (size_t t = p; t < x.size(); ++t) {
    double pred = intercept_;
    for (size_t k = 0; k < p; ++k) pred += phi_[k] * x[t - 1 - k];
    forecast[t] = pred;
  }
  return forecast;
}

StatusOr<std::vector<double>> ArDetector::Score(
    const ts::TimeSeries& series) const {
  if (!trained_) return Status::FailedPrecondition("detector not trained");
  HOD_RETURN_IF_ERROR(series.Validate());
  HOD_ASSIGN_OR_RETURN(std::vector<double> forecast, Forecast(series));
  const auto& x = series.values();
  std::vector<double> scores(x.size(), 0.0);
  for (size_t t = options_.order; t < x.size(); ++t) {
    const double z = std::fabs(x[t] - forecast[t]) / residual_sigma_;
    const double excess = z - 1.0;  // one sigma of slack
    scores[t] =
        excess <= 0.0 ? 0.0 : excess / (excess + options_.sigma_scale);
  }
  return scores;
}

}  // namespace hod::detect
