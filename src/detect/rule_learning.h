#ifndef HOD_DETECT_RULE_LEARNING_H_
#define HOD_DETECT_RULE_LEARNING_H_

#include <map>
#include <vector>

#include "detect/detector.h"

namespace hod::detect {

/// Supervised rule learning on sequences (Lee & Stolfo 1998, data-mining
/// intrusion detection) — Table 1 row 14, family SA, data types SSQ + TSS.
///
/// From labeled training sequences the detector mines association rules
/// "context n-gram => anomaly probability": every window of length 1..
/// max_order is a rule body whose head is the empirical anomaly rate of
/// the window's final position. Scoring looks up the longest matching rule
/// (longer bodies are more specific) with a support threshold, backing off
/// to shorter bodies.
struct RuleLearningOptions {
  size_t max_order = 4;
  /// Rules observed fewer than this many times are not trusted.
  size_t min_support = 3;
};

class RuleLearningDetector : public SequenceDetector {
 public:
  explicit RuleLearningDetector(RuleLearningOptions options = {});

  std::string name() const override { return "RuleLearning"; }
  bool supervised() const override { return true; }

  /// Supervised detectors refuse unlabeled training.
  Status Train(const std::vector<ts::DiscreteSequence>& normal) override;

  Status TrainSupervised(const std::vector<ts::DiscreteSequence>& sequences,
                         const std::vector<Labels>& labels) override;

  StatusOr<std::vector<double>> Score(
      const ts::DiscreteSequence& sequence) const override;

  size_t num_rules() const;

 private:
  struct RuleStats {
    size_t count = 0;
    size_t anomalous = 0;
  };

  RuleLearningOptions options_;
  /// rules_[L]: window of length L+1 (ending at the scored position) ->
  /// stats of the label at that position.
  std::vector<std::map<std::vector<ts::Symbol>, RuleStats>> rules_;
  double base_rate_ = 0.0;
  bool trained_ = false;
};

}  // namespace hod::detect

#endif  // HOD_DETECT_RULE_LEARNING_H_
