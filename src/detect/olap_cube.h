#ifndef HOD_DETECT_OLAP_CUBE_H_
#define HOD_DETECT_OLAP_CUBE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "detect/detector.h"

namespace hod::detect {

/// OLAP-cube anomaly detection over multi-dimensional data (Li & Han 2007,
/// approximate subspace anomalies) — Table 1 row 13, family UOA, data
/// types PTS + TSS.
///
/// Records carry categorical dimension coordinates plus one numeric
/// measure. Training aggregates the measure into every cell of every
/// analyzed subspace (all single dimensions and the full group-by) and
/// stores per-cell mean/spread. A record is anomalous when its measure
/// deviates from its cell statistics in some subspace — "analyzing the
/// cube with each cell as a measure".
struct OlapCubeOptions {
  /// Quantile bins used when quantizing continuous columns to dimensions.
  size_t bins = 4;
  /// Deviation (in cell robust sigmas) at which outlierness reaches 0.5.
  double sigma_scale = 3.0;
  /// Cells with fewer training records than this fall back to their
  /// parent (whole-subspace) statistics.
  size_t min_cell_support = 5;
};

/// One multidimensional record: integer coordinates per dimension plus the
/// numeric measure to analyze.
struct CubeRecord {
  std::vector<int64_t> dims;
  double measure = 0.0;
};

class OlapCubeDetector : public VectorDetector {
 public:
  explicit OlapCubeDetector(OlapCubeOptions options = {});

  std::string name() const override { return "OlapCube"; }

  /// Native interface: fit cell statistics from training records. All
  /// records must have the same dimensionality (>= 1).
  Status TrainRecords(const std::vector<CubeRecord>& records);

  /// Outlierness per record: max deviation across analyzed subspaces.
  StatusOr<std::vector<double>> ScoreRecords(
      const std::vector<CubeRecord>& records) const;

  /// VectorDetector view: the last column is the measure, earlier columns
  /// are quantized into `bins` quantile bins to form dimensions. For
  /// 1-column input a single constant dimension is synthesized (global
  /// histogram cell).
  Status Train(const std::vector<std::vector<double>>& data) override;
  StatusOr<std::vector<double>> Score(
      const std::vector<std::vector<double>>& data) const override;

  /// Number of populated cells across all analyzed subspaces.
  size_t num_cells() const;

 private:
  struct CellStats {
    double mean = 0.0;
    double stddev = 0.0;
    size_t count = 0;
  };
  /// Key: coordinates restricted to a subspace.
  using CellMap = std::map<std::vector<int64_t>, CellStats>;

  StatusOr<CubeRecord> ToRecord(const std::vector<double>& row) const;
  double ScoreRecord(const CubeRecord& record) const;

  OlapCubeOptions options_;
  size_t num_dims_ = 0;
  /// Analyzed subspaces: one CellMap per single dimension, plus the full
  /// group-by as the last entry.
  std::vector<CellMap> subspaces_;
  CellStats global_;
  /// Quantile breakpoints per continuous column (VectorDetector view).
  std::vector<std::vector<double>> breakpoints_;
  size_t vector_dim_ = 0;
  bool trained_ = false;
};

}  // namespace hod::detect

#endif  // HOD_DETECT_OLAP_CUBE_H_
