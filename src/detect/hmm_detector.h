#ifndef HOD_DETECT_HMM_DETECTOR_H_
#define HOD_DETECT_HMM_DETECTOR_H_

#include <cstdint>
#include <vector>

#include "detect/detector.h"

namespace hod::detect {

/// Discrete hidden Markov model anomaly detection (Florez-Larrahondo et
/// al. 2005) — Table 1 row 12, family UPA, data type SSQ (+ TSS via SAX).
///
/// A discrete-emission HMM is trained on normal sequences with Baum-Welch.
/// Scoring runs the scaled forward algorithm; the per-position outlierness
/// derives from the instantaneous log-likelihood of each symbol given the
/// filtered state distribution — an "efficient modeling of discrete
/// events" that flags symbols the model finds improbable in context.
struct HmmOptions {
  size_t states = 4;
  size_t baum_welch_iters = 20;
  uint64_t seed = 42;
  /// Per-symbol surprisal (nats above the training median) at which
  /// outlierness reaches 0.5.
  double surprisal_scale = 2.0;
  /// Laplace smoothing added to every probability during training.
  double smoothing = 1e-3;
};

class HmmDetector : public SequenceDetector {
 public:
  explicit HmmDetector(HmmOptions options = {});

  std::string name() const override { return "HiddenMarkovModel"; }

  Status Train(const std::vector<ts::DiscreteSequence>& normal) override;

  StatusOr<std::vector<double>> Score(
      const ts::DiscreteSequence& sequence) const override;

  /// Model internals (rows are probability distributions).
  const std::vector<std::vector<double>>& transition() const { return a_; }
  const std::vector<std::vector<double>>& emission() const { return b_; }
  const std::vector<double>& initial() const { return pi_; }

  /// Total scaled-forward log-likelihood of a sequence under the model.
  StatusOr<double> LogLikelihood(const ts::DiscreteSequence& sequence) const;

 private:
  /// Per-position surprisal -log P(o_t | o_1..o_{t-1}) via scaled forward.
  StatusOr<std::vector<double>> Surprisals(
      const std::vector<ts::Symbol>& symbols) const;

  HmmOptions options_;
  size_t alphabet_ = 0;
  std::vector<std::vector<double>> a_;   // states x states
  std::vector<std::vector<double>> b_;   // states x alphabet
  std::vector<double> pi_;               // states
  double baseline_surprisal_ = 0.0;
  bool trained_ = false;
};

}  // namespace hod::detect

#endif  // HOD_DETECT_HMM_DETECTOR_H_
