#include "timeseries/discrete_sequence.h"

namespace hod::ts {

Symbol Vocabulary::Intern(const std::string& label) {
  auto it = by_label_.find(label);
  if (it != by_label_.end()) return it->second;
  Symbol id = static_cast<Symbol>(labels_.size());
  labels_.push_back(label);
  by_label_.emplace(label, id);
  return id;
}

StatusOr<Symbol> Vocabulary::Lookup(const std::string& label) const {
  auto it = by_label_.find(label);
  if (it == by_label_.end()) {
    return Status::NotFound("unknown label '" + label + "'");
  }
  return it->second;
}

StatusOr<std::string> Vocabulary::LabelOf(Symbol id) const {
  if (id < 0 || static_cast<size_t>(id) >= labels_.size()) {
    return Status::OutOfRange("symbol id out of range");
  }
  return labels_[static_cast<size_t>(id)];
}

DiscreteSequence::DiscreteSequence(std::string name, int alphabet_size)
    : name_(std::move(name)), alphabet_size_(alphabet_size) {}

DiscreteSequence::DiscreteSequence(std::string name, int alphabet_size,
                                   std::vector<Symbol> symbols)
    : name_(std::move(name)),
      alphabet_size_(alphabet_size),
      symbols_(std::move(symbols)) {}

StatusOr<DiscreteSequence> DiscreteSequence::Slice(size_t begin,
                                                   size_t end) const {
  if (begin > end || end > symbols_.size()) {
    return Status::InvalidArgument("invalid slice range");
  }
  DiscreteSequence out(name_, alphabet_size_);
  out.symbols_.assign(symbols_.begin() + begin, symbols_.begin() + end);
  return out;
}

Status DiscreteSequence::Validate() const {
  if (alphabet_size_ <= 0) {
    return Status::InvalidArgument("alphabet size must be positive");
  }
  for (Symbol s : symbols_) {
    if (s < 0 || s >= alphabet_size_) {
      return Status::InvalidArgument("symbol outside alphabet in '" + name_ +
                                     "'");
    }
  }
  return Status::Ok();
}

std::vector<std::vector<Symbol>> SymbolWindows(
    const std::vector<Symbol>& symbols, size_t n) {
  std::vector<std::vector<Symbol>> windows;
  if (n == 0 || n > symbols.size()) return windows;
  windows.reserve(symbols.size() - n + 1);
  for (size_t i = 0; i + n <= symbols.size(); ++i) {
    windows.emplace_back(symbols.begin() + i, symbols.begin() + i + n);
  }
  return windows;
}

}  // namespace hod::ts
