#ifndef HOD_SIM_SENSOR_MODEL_H_
#define HOD_SIM_SENSOR_MODEL_H_

#include <string>
#include <vector>

#include "util/rng.h"
#include "util/statusor.h"

namespace hod::sim {

/// Deterministic nominal trajectory of a physical quantity during one
/// production phase: a piecewise profile (start level ramping to end
/// level, optional periodic component) that the sensor-noise model rides
/// on. This is the "true" process signal shared by redundant sensors.
struct PhaseProfile {
  double start_level = 0.0;
  double end_level = 0.0;
  /// Amplitude of a superimposed sinusoid (e.g. layer cycling while
  /// printing); 0 disables it.
  double periodic_amplitude = 0.0;
  /// Period in samples of the sinusoid.
  double periodic_period = 50.0;

  /// Nominal value at sample `i` of `n`.
  double ValueAt(size_t i, size_t n) const;
};

/// AR(1) measurement/process noise parameters.
struct NoiseModel {
  double sigma = 1.0;
  double ar_coefficient = 0.6;
};

/// Generates `n` samples of profile + AR(1) process noise. The process
/// noise is part of the *true* signal (shared across redundant sensors);
/// per-sensor measurement noise is added separately by ObserveSignal.
StatusOr<std::vector<double>> GenerateTrueSignal(const PhaseProfile& profile,
                                                 const NoiseModel& process,
                                                 size_t n, Rng& rng);

/// A sensor's reading of a true signal: adds iid Gaussian measurement
/// noise and a constant calibration bias.
std::vector<double> ObserveSignal(const std::vector<double>& true_signal,
                                  double measurement_sigma, double bias,
                                  Rng& rng);

/// Nominal phase profiles of the additive-manufacturing (industrial
/// 3D-printing) use case, keyed by phase name. Supported names:
/// "preparation", "warm_up", "calibration", "printing", "cool_down".
StatusOr<PhaseProfile> PrinterPhaseProfile(const std::string& phase_name,
                                           const std::string& quantity);

}  // namespace hod::sim

#endif  // HOD_SIM_SENSOR_MODEL_H_
