#include "sim/sensor_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "timeseries/stats.h"

namespace hod::sim {
namespace {

TEST(PhaseProfile, LinearRamp) {
  PhaseProfile profile{0.0, 100.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(profile.ValueAt(0, 11), 0.0);
  EXPECT_DOUBLE_EQ(profile.ValueAt(10, 11), 100.0);
  EXPECT_DOUBLE_EQ(profile.ValueAt(5, 11), 50.0);
}

TEST(PhaseProfile, PeriodicComponent) {
  PhaseProfile profile{0.0, 0.0, 2.0, 8.0};
  EXPECT_NEAR(profile.ValueAt(2, 100), 2.0, 1e-9);  // sin(pi/2) peak
  EXPECT_NEAR(profile.ValueAt(4, 100), 0.0, 1e-9);
}

TEST(GenerateTrueSignal, MarginalVarianceMatchesSigma) {
  Rng rng(5);
  PhaseProfile flat{0.0, 0.0, 0.0, 0.0};
  NoiseModel noise{2.0, 0.7};
  auto signal = GenerateTrueSignal(flat, noise, 20000, rng).value();
  EXPECT_NEAR(ts::StdDev(signal), 2.0, 0.15);
  EXPECT_NEAR(ts::Mean(signal), 0.0, 0.3);
}

TEST(GenerateTrueSignal, ArStructurePresent) {
  Rng rng(6);
  PhaseProfile flat{0.0, 0.0, 0.0, 0.0};
  NoiseModel noise{1.0, 0.8};
  auto signal = GenerateTrueSignal(flat, noise, 5000, rng).value();
  EXPECT_GT(ts::Autocorrelation(signal, 1), 0.6);
}

TEST(GenerateTrueSignal, RejectsBadParameters) {
  Rng rng(7);
  PhaseProfile flat{};
  EXPECT_FALSE(GenerateTrueSignal(flat, NoiseModel{1.0, 1.0}, 10, rng).ok());
  EXPECT_FALSE(GenerateTrueSignal(flat, NoiseModel{1.0, 0.5}, 0, rng).ok());
}

TEST(ObserveSignal, AddsBiasAndNoise) {
  Rng rng(8);
  const std::vector<double> truth(5000, 10.0);
  auto reading = ObserveSignal(truth, 0.5, 1.0, rng);
  EXPECT_NEAR(ts::Mean(reading), 11.0, 0.05);
  EXPECT_NEAR(ts::StdDev(reading), 0.5, 0.05);
}

TEST(PrinterPhaseProfile, KnownPhasesResolve) {
  for (const char* phase :
       {"preparation", "warm_up", "calibration", "printing", "cool_down"}) {
    for (const char* quantity : {"bed_temp", "chamber_temp", "laser_power",
                                 "vibration", "oxygen"}) {
      EXPECT_TRUE(PrinterPhaseProfile(phase, quantity).ok())
          << phase << "/" << quantity;
    }
  }
  EXPECT_TRUE(PrinterPhaseProfile("", "room_temp").ok());
  EXPECT_FALSE(PrinterPhaseProfile("printing", "ghost").ok());
}

TEST(PrinterPhaseProfile, WarmUpRampsBedTemperature) {
  auto profile = PrinterPhaseProfile("warm_up", "bed_temp").value();
  EXPECT_LT(profile.start_level, profile.end_level);
  EXPECT_NEAR(profile.start_level, 25.0, 1.0);
}

TEST(PrinterPhaseProfile, LaserOffOutsidePrinting) {
  EXPECT_DOUBLE_EQ(
      PrinterPhaseProfile("preparation", "laser_power")->start_level, 0.0);
  EXPECT_GT(PrinterPhaseProfile("printing", "laser_power")->start_level,
            100.0);
}

}  // namespace
}  // namespace hod::sim
