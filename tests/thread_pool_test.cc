#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

namespace hod::util {
namespace {

using std::chrono::milliseconds;

TEST(ThreadPoolTest, ExecutesSubmittedTasks) {
  ThreadPool pool(ThreadPoolOptions{2, 1});
  std::atomic<int> count{0};
  std::mutex mu;
  std::condition_variable cv;
  constexpr int kTasks = 64;
  for (int i = 0; i < kTasks; ++i) {
    ASSERT_TRUE(pool.Submit([&] {
      if (count.fetch_add(1) + 1 == kTasks) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    }));
  }
  std::unique_lock<std::mutex> lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                          [&] { return count.load() == kTasks; }));
  EXPECT_GE(pool.tasks_executed(), static_cast<uint64_t>(kTasks));
}

TEST(ThreadPoolTest, ServiceLaneRunsWhileWorkerLaneIsBusy) {
  // One worker thread, wedged on a latch; the service lane must still
  // execute — it is what un-wedges workers blocked on internal queues.
  ThreadPool pool(ThreadPoolOptions{1, 1});
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  bool service_ran = false;
  ASSERT_TRUE(pool.Submit([&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  }));
  ASSERT_TRUE(pool.SubmitService([&] {
    std::lock_guard<std::mutex> lock(mu);
    service_ran = true;
    cv.notify_all();
  }));
  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                            [&] { return service_ran; }));
    release = true;
    cv.notify_all();
  }
}

TEST(ThreadPoolTest, TimerFiresRepeatedlyAndCancelStopsIt) {
  ThreadPool pool(ThreadPoolOptions{1, 1});
  std::atomic<int> fires{0};
  std::mutex mu;
  std::condition_variable cv;
  const ThreadPool::TimerId id =
      pool.ScheduleEvery(milliseconds(1), milliseconds(2), [&] {
        fires.fetch_add(1);
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      });
  ASSERT_NE(id, 0u);
  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                            [&] { return fires.load() >= 3; }));
  }
  pool.Cancel(id);
  // Cancel has join semantics: no callback is in flight on return and none
  // fires afterwards.
  const int at_cancel = fires.load();
  std::this_thread::sleep_for(milliseconds(30));
  EXPECT_EQ(fires.load(), at_cancel);
}

TEST(ThreadPoolTest, CancelUnknownTimerIsANoOp) {
  ThreadPool pool(ThreadPoolOptions{1, 1});
  pool.Cancel(12345);
}

TEST(ThreadPoolTest, TwoTimersBothFire) {
  ThreadPool pool(ThreadPoolOptions{1, 1});
  std::atomic<int> a{0}, b{0};
  const auto ta = pool.ScheduleEvery(milliseconds(1), milliseconds(2),
                                     [&] { a.fetch_add(1); });
  const auto tb = pool.ScheduleEvery(milliseconds(2), milliseconds(3),
                                     [&] { b.fetch_add(1); });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while ((a.load() < 2 || b.load() < 2) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  pool.Cancel(ta);
  pool.Cancel(tb);
  EXPECT_GE(a.load(), 2);
  EXPECT_GE(b.load(), 2);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(ThreadPoolOptions{1, 1});
    for (int i = 0; i < 32; ++i) {
      ASSERT_TRUE(pool.Submit([&] { count.fetch_add(1); }));
    }
    pool.Shutdown();  // must run everything already queued
  }
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPoolTest, SubmitAfterShutdownIsRejected) {
  ThreadPool pool(ThreadPoolOptions{1, 1});
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([] {}));
  EXPECT_FALSE(pool.SubmitService([] {}));
  EXPECT_EQ(pool.ScheduleEvery(milliseconds(1), milliseconds(1), [] {}), 0u);
}

TEST(ThreadPoolTest, ManyProducersOnePool) {
  ThreadPool pool(ThreadPoolOptions{2, 1});
  std::atomic<int> count{0};
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> producers;
  producers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        while (!pool.Submit([&] { count.fetch_add(1); })) {
        }
      }
    });
  }
  for (auto& producer : producers) producer.join();
  pool.Shutdown();
  EXPECT_EQ(count.load(), kThreads * kPerThread);
}

}  // namespace
}  // namespace hod::util
