// End-to-end smoke test: build a plant, run Algorithm 1 from several start
// levels, and check the paper's headline semantics hold (real anomalies get
// support and higher global scores; single-sensor glitches trigger
// measurement-error handling).

#include <gtest/gtest.h>

#include <cmath>

#include "core/hierarchical_detector.h"
#include "detect/ar_detector.h"
#include "eval/metrics.h"
#include "sim/datasets.h"
#include "sim/plant.h"

namespace hod {
namespace {

TEST(Smoke, PlantBuildsAndValidates) {
  sim::PlantOptions plant_options;
  plant_options.num_lines = 1;
  plant_options.machines_per_line = 2;
  plant_options.jobs_per_machine = 6;
  sim::ScenarioOptions scenario;
  auto plant_or = sim::BuildPlant(plant_options, scenario);
  ASSERT_TRUE(plant_or.ok()) << plant_or.status().ToString();
  const sim::SimulatedPlant& plant = plant_or.value();
  EXPECT_EQ(hierarchy::CountJobs(plant.production), 12u);
  EXPECT_FALSE(plant.truth.records.empty());
}

TEST(Smoke, ArDetectorFindsInjectedAnomalies) {
  sim::SeriesDatasetOptions options;
  options.seed = 21;
  auto dataset_or = sim::GenerateSeriesDataset(options);
  ASSERT_TRUE(dataset_or.ok()) << dataset_or.status().ToString();
  const sim::SeriesDataset& dataset = dataset_or.value();

  detect::ArDetector detector;
  ASSERT_TRUE(detector.Train(dataset.train).ok());
  // Event-tolerant F1: a prediction model localizes the *onset* of each
  // disturbance; decaying tails (IO/TC) are absorbed by the model and are
  // not expected to stay flagged.
  double total_f1 = 0.0;
  for (size_t s = 0; s < dataset.test.size(); ++s) {
    auto scores_or = detector.Score(dataset.test[s]);
    ASSERT_TRUE(scores_or.ok()) << scores_or.status().ToString();
    auto f1_or = eval::BestF1WithTolerance(scores_or.value(),
                                           dataset.test_labels[s], 3);
    ASSERT_TRUE(f1_or.ok());
    total_f1 += f1_or.value().f1;
  }
  const double mean_f1 = total_f1 / static_cast<double>(dataset.test.size());
  EXPECT_GT(mean_f1, 0.6) << "AR detector should localize injected anomalies";
}

TEST(Smoke, HierarchicalDetectorRunsFromEveryLevel) {
  sim::PlantOptions plant_options;
  plant_options.num_lines = 1;
  plant_options.machines_per_line = 2;
  plant_options.jobs_per_machine = 6;
  plant_options.seed = 11;
  sim::ScenarioOptions scenario;
  scenario.process_anomaly_rate = 0.4;
  scenario.glitch_rate = 0.3;
  auto plant_or = sim::BuildPlant(plant_options, scenario);
  ASSERT_TRUE(plant_or.ok()) << plant_or.status().ToString();
  const sim::SimulatedPlant& plant = plant_or.value();

  core::HierarchicalDetector detector(&plant.production);

  // Phase level: query a sensor with a known process anomaly.
  const sim::AnomalyRecord* process_record = nullptr;
  const sim::AnomalyRecord* glitch_record = nullptr;
  for (const sim::AnomalyRecord& record : plant.truth.records) {
    if (record.level != hierarchy::ProductionLevel::kPhase) continue;
    if (!record.measurement_error && process_record == nullptr) {
      process_record = &record;
    }
    if (record.measurement_error && glitch_record == nullptr) {
      glitch_record = &record;
    }
  }
  ASSERT_NE(process_record, nullptr) << "scenario should inject anomalies";
  ASSERT_NE(glitch_record, nullptr) << "scenario should inject glitches";

  core::PhaseQuery query{process_record->machine_id, process_record->job_id,
                         process_record->phase_name,
                         process_record->sensor_id};
  auto report_or = detector.FindPhaseOutliers(query);
  ASSERT_TRUE(report_or.ok()) << report_or.status().ToString();
  EXPECT_FALSE(report_or.value().findings.empty())
      << "injected 6-sigma anomaly should be detected at the phase level";

  // Other levels run without error.
  auto job_report = detector.FindJobOutliers(process_record->machine_id);
  ASSERT_TRUE(job_report.ok()) << job_report.status().ToString();
  auto env_report = detector.FindEnvironmentOutliers("line1");
  ASSERT_TRUE(env_report.ok()) << env_report.status().ToString();
  auto line_report = detector.FindLineOutliers("line1");
  ASSERT_TRUE(line_report.ok()) << line_report.status().ToString();
  auto production_report = detector.FindProductionOutliers();
  ASSERT_TRUE(production_report.ok()) << production_report.status().ToString();
}

TEST(Smoke, SupportSeparatesProcessAnomaliesFromGlitches) {
  sim::PlantOptions plant_options;
  plant_options.num_lines = 1;
  plant_options.machines_per_line = 2;
  plant_options.jobs_per_machine = 10;
  plant_options.seed = 31;
  sim::ScenarioOptions scenario;
  scenario.process_anomaly_rate = 0.5;
  scenario.glitch_rate = 0.5;
  scenario.magnitude_sigmas = 8.0;
  auto plant_or = sim::BuildPlant(plant_options, scenario);
  ASSERT_TRUE(plant_or.ok()) << plant_or.status().ToString();
  const sim::SimulatedPlant& plant = plant_or.value();

  core::HierarchicalDetector detector(&plant.production);

  double process_support_sum = 0.0;
  size_t process_count = 0;
  double glitch_support_sum = 0.0;
  size_t glitch_count = 0;
  for (const sim::AnomalyRecord& record : plant.truth.records) {
    if (record.level != hierarchy::ProductionLevel::kPhase) continue;
    // Support is only meaningful for sensors with redundancy.
    if (record.sensor_id.find("_a") == std::string::npos &&
        record.sensor_id.find("_b") == std::string::npos) {
      continue;
    }
    core::PhaseQuery query{record.machine_id, record.job_id,
                           record.phase_name, record.sensor_id};
    auto report_or = detector.FindPhaseOutliers(query);
    if (!report_or.ok()) continue;
    // Find the finding nearest the injected time.
    const core::OutlierFinding* nearest = nullptr;
    double best_gap = 1e18;
    for (const core::OutlierFinding& finding : report_or.value().findings) {
      const double gap = std::fabs(finding.origin.time - record.start_time);
      if (gap < best_gap) {
        best_gap = gap;
        nearest = &finding;
      }
    }
    if (nearest == nullptr || best_gap > 30.0) continue;
    if (record.measurement_error) {
      glitch_support_sum += nearest->support;
      ++glitch_count;
    } else {
      process_support_sum += nearest->support;
      ++process_count;
    }
  }
  ASSERT_GT(process_count, 0u);
  ASSERT_GT(glitch_count, 0u);
  const double process_support =
      process_support_sum / static_cast<double>(process_count);
  const double glitch_support =
      glitch_support_sum / static_cast<double>(glitch_count);
  EXPECT_GT(process_support, glitch_support)
      << "real process anomalies must be supported by redundant sensors "
         "more often than single-sensor glitches (process="
      << process_support << ", glitch=" << glitch_support << ")";
}

}  // namespace
}  // namespace hod
