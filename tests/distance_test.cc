#include "timeseries/distance.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hod::ts {
namespace {

TEST(Distance, Euclidean) {
  EXPECT_DOUBLE_EQ(EuclideanDistance({0.0, 0.0}, {3.0, 4.0}).value(), 5.0);
  EXPECT_DOUBLE_EQ(SquaredEuclideanDistance({0.0, 0.0}, {3.0, 4.0}).value(),
                   25.0);
  EXPECT_FALSE(EuclideanDistance({1.0}, {1.0, 2.0}).ok());
}

TEST(Distance, DtwEqualSeriesIsZero) {
  const std::vector<double> a = {1.0, 2.0, 3.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(DtwDistance(a, a), 0.0);
}

TEST(Distance, DtwAbsorbsTimeShift) {
  // A shifted copy should be much closer under DTW than Euclidean.
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 50; ++i) {
    a.push_back(std::sin(0.3 * i));
    b.push_back(std::sin(0.3 * (i - 3)));
  }
  double pointwise = 0.0;
  for (size_t i = 0; i < a.size(); ++i) pointwise += std::fabs(a[i] - b[i]);
  EXPECT_LT(DtwDistance(a, b), 0.5 * pointwise);
}

TEST(Distance, DtwHandlesUnequalLengths) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {1.0, 1.5, 2.0, 2.5, 3.0};
  const double d = DtwDistance(a, b);
  EXPECT_GE(d, 0.0);
  EXPECT_LT(d, 2.0);
}

TEST(Distance, DtwEmptyInputs) {
  EXPECT_DOUBLE_EQ(DtwDistance({}, {}), 0.0);
  EXPECT_TRUE(std::isinf(DtwDistance({1.0}, {})));
}

TEST(Distance, DtwBandLimitsWarping) {
  // With a tight band, the distance can only grow (fewer paths).
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 40; ++i) {
    a.push_back(std::sin(0.4 * i));
    b.push_back(std::sin(0.4 * (i - 5)));
  }
  EXPECT_LE(DtwDistance(a, b, 0), DtwDistance(a, b, 2) + 1e-9);
}

TEST(Distance, LcsLengthClassic) {
  const std::vector<Symbol> a = {1, 2, 3, 4, 1};
  const std::vector<Symbol> b = {3, 4, 1, 2, 1, 3};
  // LCS of "ABCDA"/"CDABAC" style: {3,4,1} length 3.
  EXPECT_EQ(LcsLength(a, b), 3u);
}

TEST(Distance, LcsEmptyAndIdentical) {
  EXPECT_EQ(LcsLength({}, {1, 2}), 0u);
  const std::vector<Symbol> a = {1, 2, 3};
  EXPECT_EQ(LcsLength(a, a), 3u);
}

TEST(Distance, LcsSimilarityNormalized) {
  const std::vector<Symbol> a = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(LcsSimilarity(a, a), 1.0);
  EXPECT_DOUBLE_EQ(LcsSimilarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(LcsSimilarity(a, {}), 0.0);
  const std::vector<Symbol> half = {1, 2};
  EXPECT_DOUBLE_EQ(LcsSimilarity(a, half), 0.5);
}

TEST(Distance, MatchFraction) {
  EXPECT_DOUBLE_EQ(MatchFraction({1, 2, 3, 4}, {1, 0, 3, 0}).value(), 0.5);
  EXPECT_DOUBLE_EQ(MatchFraction({}, {}).value(), 1.0);
  EXPECT_FALSE(MatchFraction({1}, {1, 2}).ok());
}

TEST(Distance, Hamming) {
  EXPECT_EQ(HammingDistance({1, 2, 3}, {1, 0, 3}).value(), 1u);
  EXPECT_EQ(HammingDistance({1, 2}, {1, 2}).value(), 0u);
  EXPECT_FALSE(HammingDistance({1}, {1, 2}).ok());
}

}  // namespace
}  // namespace hod::ts
