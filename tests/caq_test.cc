#include "hierarchy/caq.h"

#include <gtest/gtest.h>

#include "sim/plant.h"

namespace hod::hierarchy {
namespace {

TEST(CaqSpecification, AddLimitValidation) {
  CaqSpecification specification;
  EXPECT_TRUE(specification.AddLimit({"density", 97.0, 99.0, 98.0}).ok());
  EXPECT_FALSE(specification.AddLimit({"", 0.0, 1.0, 0.5}).ok());
  EXPECT_FALSE(specification.AddLimit({"x", 2.0, 1.0, 1.5}).ok());  // inverted
  EXPECT_FALSE(specification.AddLimit({"y", 0.0, 1.0, 2.0}).ok());  // target out
  EXPECT_FALSE(
      specification.AddLimit({"density", 90.0, 99.0, 95.0}).ok());  // dup
  EXPECT_TRUE(specification.LimitFor("density").ok());
  EXPECT_FALSE(specification.LimitFor("ghost").ok());
}

TEST(EvaluateCaq, PassAndMargins) {
  CaqSpecification specification;
  ASSERT_TRUE(specification.AddLimit({"density", 97.0, 99.0, 98.0}).ok());
  ts::FeatureVector on_target({"density"}, {98.0});
  auto result = EvaluateCaq(specification, on_target).value();
  EXPECT_TRUE(result.pass);
  EXPECT_DOUBLE_EQ(result.worst_margin, 1.0);

  ts::FeatureVector near_limit({"density"}, {98.9});
  result = EvaluateCaq(specification, near_limit).value();
  EXPECT_TRUE(result.pass);
  EXPECT_NEAR(result.worst_margin, 0.1, 1e-9);
}

TEST(EvaluateCaq, ViolationsReported) {
  CaqSpecification specification;
  ASSERT_TRUE(specification.AddLimit({"density", 97.0, 99.0, 98.0}).ok());
  ASSERT_TRUE(specification.AddLimit({"tensile", 45.0, 55.0, 50.0}).ok());
  ts::FeatureVector bad({"density", "tensile"}, {96.0, 50.0});
  auto result = EvaluateCaq(specification, bad).value();
  EXPECT_FALSE(result.pass);
  ASSERT_EQ(result.violations.size(), 1u);
  EXPECT_EQ(result.violations[0], "density");
  EXPECT_LT(result.worst_margin, 0.0);
}

TEST(EvaluateCaq, MissingFeatureIsError) {
  CaqSpecification specification;
  ASSERT_TRUE(specification.AddLimit({"density", 97.0, 99.0, 98.0}).ok());
  ts::FeatureVector missing({"roughness"}, {6.0});
  EXPECT_FALSE(EvaluateCaq(specification, missing).ok());
}

TEST(ProcessCapability, KnownValues) {
  CaqSpecification specification;
  ASSERT_TRUE(specification.AddLimit({"q", 0.0, 12.0, 6.0}).ok());
  // Jobs with q = {5,6,7}: mean 6, sigma ~0.8165; Cpk = 6 / (3*0.8165).
  std::vector<Job> jobs(3);
  jobs[0].caq = ts::FeatureVector({"q"}, {5.0});
  jobs[1].caq = ts::FeatureVector({"q"}, {6.0});
  jobs[2].caq = ts::FeatureVector({"q"}, {7.0});
  std::vector<const Job*> pointers = {&jobs[0], &jobs[1], &jobs[2]};
  auto cpk = ProcessCapability(specification, pointers, "q").value();
  EXPECT_NEAR(cpk, 6.0 / (3.0 * 0.816496580927726), 1e-9);
}

TEST(ProcessCapability, RejectsDegenerate) {
  CaqSpecification specification;
  ASSERT_TRUE(specification.AddLimit({"q", 0.0, 10.0, 5.0}).ok());
  std::vector<Job> jobs(2);
  jobs[0].caq = ts::FeatureVector({"q"}, {5.0});
  jobs[1].caq = ts::FeatureVector({"q"}, {5.0});
  std::vector<const Job*> pointers = {&jobs[0], &jobs[1]};
  EXPECT_FALSE(
      ProcessCapability(specification, pointers, "q").ok());  // zero sigma
  EXPECT_FALSE(
      ProcessCapability(specification, {&jobs[0]}, "q").ok());  // one job
  EXPECT_FALSE(
      ProcessCapability(specification, pointers, "ghost").ok());
}

TEST(MachineCapability, RogueMachineLessCapable) {
  sim::PlantOptions options;
  options.num_lines = 1;
  options.machines_per_line = 2;
  options.jobs_per_machine = 16;
  options.seed = 17;
  sim::ScenarioOptions scenario;
  scenario.process_anomaly_rate = 0.0;
  scenario.glitch_rate = 0.0;
  scenario.bad_batch_lines = 0;
  scenario.rogue_machines = 1;
  const auto plant = sim::BuildPlant(options, scenario).value();
  const CaqSpecification specification = DefaultPrinterCaqSpecification();

  const std::string rogue = plant.truth.machine_labels.begin()->first;
  double rogue_min_cpk = 1e9;
  double healthy_min_cpk = 1e9;
  for (const auto& machine : plant.production.lines[0].machines) {
    auto report = MachineCapability(specification, machine).value();
    double min_cpk = 1e9;
    for (double cpk : report.cpk) min_cpk = std::min(min_cpk, cpk);
    (machine.id == rogue ? rogue_min_cpk : healthy_min_cpk) = min_cpk;
  }
  EXPECT_LT(rogue_min_cpk, healthy_min_cpk);
  EXPECT_GT(healthy_min_cpk, 1.0) << "healthy machine should be capable";
}

TEST(MachineCapability, WindowRestrictsJobs) {
  sim::PlantOptions options;
  options.num_lines = 1;
  options.machines_per_line = 1;
  options.jobs_per_machine = 12;
  options.seed = 18;
  sim::ScenarioOptions scenario;
  scenario.process_anomaly_rate = 0.0;
  scenario.glitch_rate = 0.0;
  scenario.bad_batch_lines = 0;
  scenario.rogue_machines = 0;
  const auto plant = sim::BuildPlant(options, scenario).value();
  const CaqSpecification specification = DefaultPrinterCaqSpecification();
  const auto& machine = plant.production.lines[0].machines[0];
  auto full = MachineCapability(specification, machine, 0).value();
  auto windowed = MachineCapability(specification, machine, 4).value();
  EXPECT_EQ(full.features.size(), windowed.features.size());
  // Different job sets almost surely give different Cpk estimates.
  bool any_difference = false;
  for (size_t f = 0; f < full.cpk.size(); ++f) {
    if (std::abs(full.cpk[f] - windowed.cpk[f]) > 1e-12) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

}  // namespace
}  // namespace hod::hierarchy
