#include "core/batch_monitor.h"

#include <algorithm>
#include <cmath>

#include "detect/ar_detector.h"
#include "timeseries/time_series.h"
#include "util/simd.h"

namespace hod::core {

namespace {
/// Same floor Push/FitModel apply — see OnlineMonitor.
constexpr double kSigmaFloor = 1e-9;
}  // namespace

BatchMonitorBank::BatchMonitorBank(OnlineMonitorOptions options)
    : options_(options),
      order_(options.ar_order),
      alpha_(1.0 - options.scale_forgetting) {}

StatusOr<size_t> BatchMonitorBank::AddSensor(const std::string& sensor_id) {
  const size_t lane = size();
  auto [it, inserted] = index_.emplace(sensor_id, lane);
  if (!inserted) {
    return Status::InvalidArgument("sensor already in bank: " + sensor_id);
  }
  phi_.resize(phi_.size() + order_, 0.0);
  phi_len_.push_back(0);
  intercept_.push_back(0.0);
  sigma_.push_back(1.0);
  ring_.resize(ring_.size() + order_, 0.0);
  ring_pos_.push_back(0);
  model_ready_.push_back(0);
  alarm_.push_back(0);
  above_streak_.push_back(0);
  below_streak_.push_back(0);
  samples_seen_.push_back(0);
  alarms_raised_.push_back(0);
  warmup_.emplace_back();
  warmup_.back().reserve(options_.warmup);
  baseline_epoch_.push_back(0);
  frozen_.push_back(0);
  pending_reset_.push_back(0);
  pending_level_.push_back(0.0);
  pending_sigma_.push_back(0.0);
  pending_support_.push_back(0);
  return lane;
}

void BatchMonitorBank::ApplyResetLane(
    size_t lane, const std::optional<BaselineSeed>& seed) {
  warmup_[lane].clear();
  alarm_[lane] = 0;
  above_streak_[lane] = 0;
  below_streak_[lane] = 0;
  double* phi = &phi_[lane * order_];
  std::fill(phi, phi + order_, 0.0);
  double* ring = &ring_[lane * order_];
  ring_pos_[lane] = 0;
  if (seed.has_value()) {
    // Degenerate order-0 model at the seeded level: Predict() returns
    // the intercept and PushBatch's phi_len != order check routes the
    // lane to the scalar path, so sibling lanes' wave batching is
    // untouched. Scoring resumes immediately at the new regime.
    phi_len_[lane] = 0;
    intercept_[lane] = seed->level;
    sigma_[lane] = std::max(seed->sigma, kSigmaFloor);
    std::fill(ring, ring + order_, seed->level);
    model_ready_[lane] = 1;
  } else {
    phi_len_[lane] = 0;
    intercept_[lane] = 0.0;
    sigma_[lane] = 1.0;
    std::fill(ring, ring + order_, 0.0);
    model_ready_[lane] = 0;
  }
  ++baseline_epoch_[lane];
}

void BatchMonitorBank::ResetBaselineLane(
    size_t lane, BaselineActor /*actor*/,
    const std::optional<BaselineSeed>& seed) {
  if (lane >= size()) return;
  if (frozen_[lane] != 0) {
    // Deferred to the thaw; last writer wins.
    pending_reset_[lane] = seed.has_value() ? 2 : 1;
    pending_level_[lane] = seed ? seed->level : 0.0;
    pending_sigma_[lane] = seed ? seed->sigma : 0.0;
    pending_support_[lane] = seed ? seed->support : 0;
    return;
  }
  ApplyResetLane(lane, seed);
}

void BatchMonitorBank::FreezeBaselineLane(size_t lane,
                                          BaselineActor /*actor*/) {
  if (lane >= size()) return;
  frozen_[lane] = 1;
}

bool BatchMonitorBank::ThawBaselineLane(size_t lane,
                                        BaselineActor /*actor*/) {
  if (lane >= size() || frozen_[lane] == 0) return false;
  frozen_[lane] = 0;
  if (pending_reset_[lane] == 0) return false;
  std::optional<BaselineSeed> seed;
  if (pending_reset_[lane] == 2) {
    seed = BaselineSeed{pending_level_[lane], pending_sigma_[lane],
                        pending_support_[lane]};
  }
  pending_reset_[lane] = 0;
  pending_level_[lane] = 0.0;
  pending_sigma_[lane] = 0.0;
  pending_support_[lane] = 0;
  ApplyResetLane(lane, seed);
  return true;
}

size_t BatchMonitorBank::IndexOf(const std::string& sensor_id) const {
  auto it = index_.find(sensor_id);
  return it == index_.end() ? kNotFound : it->second;
}

size_t BatchMonitorBank::RingSlot(size_t lane, size_t k) const {
  // Most recent window sample sits one slot behind the write position.
  // pos + order - 1 - k lies in [0, 2*order): a conditional subtract
  // replaces the modulo (a hardware divide on the hot gather path).
  size_t slot = ring_pos_[lane] + order_ - 1 - k;
  if (slot >= order_) slot -= order_;
  return slot;
}

double BatchMonitorBank::Predict(size_t lane) const {
  double prediction = intercept_[lane];
  const double* phi = &phi_[lane * order_];
  const double* ring = &ring_[lane * order_];
  const size_t len = phi_len_[lane];
  // Same term order as OnlineMonitor::Predict: k walks from the most
  // recent sample backwards.
  for (size_t k = 0; k < len; ++k) {
    prediction += phi[k] * ring[RingSlot(lane, k)];
  }
  return prediction;
}

Status BatchMonitorBank::FitModel(size_t lane) {
  detect::ArOptions ar_options;
  ar_options.order = options_.ar_order;
  detect::ArDetector fitter(ar_options);
  ts::TimeSeries warmup("warmup", 0.0, 1.0, warmup_[lane]);
  HOD_RETURN_IF_ERROR(fitter.Train({warmup}));
  const std::vector<double>& phi = fitter.coefficients();
  if (phi.size() > order_) {
    return Status::Internal("AR fit produced more than ar_order coefficients");
  }
  double* phi_slot = &phi_[lane * order_];
  std::fill(phi_slot, phi_slot + order_, 0.0);
  std::copy(phi.begin(), phi.end(), phi_slot);
  phi_len_[lane] = static_cast<uint32_t>(phi.size());
  intercept_[lane] = fitter.intercept();
  sigma_[lane] = std::max(fitter.residual_sigma(), kSigmaFloor);
  // Seed the window with the last samples of the warmup, oldest first.
  const std::vector<double>& buffer = warmup_[lane];
  double* ring = &ring_[lane * order_];
  for (size_t j = 0; j < order_; ++j) {
    ring[j] = buffer[buffer.size() - order_ + j];
  }
  ring_pos_[lane] = 0;
  model_ready_[lane] = 1;
  return Status::Ok();
}

StatusOr<MonitorUpdate> BatchMonitorBank::PushWarmup(size_t lane,
                                                     double sample) {
  MonitorUpdate update;
  warmup_[lane].push_back(sample);
  if (warmup_[lane].size() >= options_.warmup) {
    HOD_RETURN_IF_ERROR(FitModel(lane));
  }
  update.model_ready = model_ready_[lane] != 0;
  return update;
}

void BatchMonitorBank::FinishUpdate(size_t lane, double sample, double pred,
                                    double score, MonitorUpdate& update) {
  // Hysteresis — identical to OnlineMonitor::Push.
  if (score > options_.threshold) {
    ++above_streak_[lane];
    below_streak_[lane] = 0;
    if (alarm_[lane] == 0 && above_streak_[lane] >= options_.raise_after) {
      alarm_[lane] = 1;
      update.alarm_raised = true;
      ++alarms_raised_[lane];
    }
  } else {
    ++below_streak_[lane];
    above_streak_[lane] = 0;
    if (alarm_[lane] != 0 && below_streak_[lane] >= options_.clear_after) {
      alarm_[lane] = 0;
      update.alarm_cleared = true;
    }
  }
  update.alarm = alarm_[lane] != 0;
  // Anomaly correction: an alarming sample's window slot takes the model
  // forecast instead of the raw reading (Hill & Minsker), as in
  // OnlineMonitor — the prediction is the one already computed this step.
  const double window_sample = score > options_.threshold ? pred : sample;
  ring_[lane * order_ + ring_pos_[lane]] = window_sample;
  const uint32_t next = ring_pos_[lane] + 1;
  ring_pos_[lane] = next == order_ ? 0 : next;
}

StatusOr<MonitorUpdate> BatchMonitorBank::Push(size_t lane, double sample) {
  if (lane >= size()) {
    return Status::OutOfRange("monitor lane out of range");
  }
  if (!std::isfinite(sample)) {
    return Status::InvalidArgument("non-finite sample");
  }
  ++samples_seen_[lane];
  if (model_ready_[lane] == 0) {
    return PushWarmup(lane, sample);
  }
  MonitorUpdate update;
  const double pred = Predict(lane);
  const double residual = sample - pred;
  const double z = std::fabs(residual) / sigma_[lane];
  const double excess = z - 1.0;
  update.score =
      excess <= 0.0 ? 0.0 : excess / (excess + options_.sigma_scale);
  update.model_ready = true;
  if (update.score <= options_.threshold &&
      options_.scale_forgetting < 1.0) {
    sigma_[lane] = std::sqrt((1.0 - alpha_) * sigma_[lane] * sigma_[lane] +
                             alpha_ * residual * residual);
    sigma_[lane] = std::max(sigma_[lane], kSigmaFloor);
  }
  FinishUpdate(lane, sample, pred, update.score, update);
  return update;
}

void BatchMonitorBank::PushBatch(const size_t* lanes, const double* values,
                                 size_t n, MonitorUpdate* updates,
                                 unsigned char* scored) {
  if (wave_epoch_.size() < size()) wave_epoch_.resize(size(), 0);
  if (lane_sample_.size() < n) {
    lane_sample_.resize(n);
    lane_pred_.resize(n);
    lane_sigma_.resize(n);
    lane_score_.resize(n);
    lane_phi_k_.resize(n);
    lane_recent_k_.resize(n);
  }
  const double alpha =
      options_.scale_forgetting < 1.0 ? alpha_ : 0.0;
  size_t i = 0;
  while (i < n) {
    // Wave: the maximal run of samples whose (valid) lanes are pairwise
    // distinct. A repeated lane ends the wave, so consecutive samples of
    // one sensor are applied strictly in order, state carrying between
    // waves exactly as between sequential Push calls.
    ++epoch_;
    size_t end = i;
    while (end < n) {
      const size_t lane = lanes[end];
      if (lane < size()) {
        if (wave_epoch_[lane] == epoch_) break;
        wave_epoch_[lane] = epoch_;
      }
      ++end;
    }
    // Pass 1: route every row. Warming-up lanes (and the degenerate case
    // of a fit narrower than ar_order) take the scalar path — within a
    // wave all lanes are distinct, so their relative order is free.
    wave_rows_.clear();
    wave_lanes_.clear();
    for (size_t j = i; j < end; ++j) {
      updates[j] = MonitorUpdate{};
      scored[j] = 0;
      const size_t lane = lanes[j];
      if (lane >= size() || !std::isfinite(values[j])) continue;
      if (model_ready_[lane] == 0 || phi_len_[lane] != order_) {
        StatusOr<MonitorUpdate> update = Push(lane, values[j]);
        if (update.ok()) {
          updates[j] = update.value();
          scored[j] = 1;
        }
        continue;
      }
      wave_rows_.push_back(j);
      wave_lanes_.push_back(lane);
    }
    // Pass 2: the vectorized wave. Gather lane state into contiguous
    // scratch, run the prediction dot and the score/sigma kernel across
    // lanes, scatter back, then finish each lane's scalar bookkeeping.
    const size_t w = wave_rows_.size();
    if (w > 0) {
      for (size_t t = 0; t < w; ++t) {
        const size_t lane = wave_lanes_[t];
        lane_sample_[t] = values[wave_rows_[t]];
        lane_sigma_[t] = sigma_[lane];
        lane_pred_[t] = intercept_[lane];
      }
      for (size_t k = 0; k < order_; ++k) {
        for (size_t t = 0; t < w; ++t) {
          const size_t lane = wave_lanes_[t];
          lane_phi_k_[t] = phi_[lane * order_ + k];
          lane_recent_k_[t] = ring_[lane * order_ + RingSlot(lane, k)];
        }
        util::simd::MulAccumulate(lane_pred_.data(), lane_phi_k_.data(),
                                  lane_recent_k_.data(), w);
      }
      util::simd::MonitorScoreLanes(lane_sample_.data(), lane_pred_.data(),
                                    lane_sigma_.data(), lane_score_.data(), w,
                                    options_.sigma_scale, options_.threshold,
                                    alpha, kSigmaFloor);
      for (size_t t = 0; t < w; ++t) {
        const size_t j = wave_rows_[t];
        const size_t lane = wave_lanes_[t];
        sigma_[lane] = lane_sigma_[t];
        ++samples_seen_[lane];
        MonitorUpdate& update = updates[j];
        update.score = lane_score_[t];
        update.model_ready = true;
        FinishUpdate(lane, lane_sample_[t], lane_pred_[t], lane_score_[t],
                     update);
        scored[j] = 1;
      }
    }
    i = end;
  }
}

OnlineMonitorState BatchMonitorBank::SaveState(size_t lane) const {
  OnlineMonitorState state;
  state.warmup_buffer = warmup_[lane];
  if (model_ready_[lane] != 0) {
    state.recent.reserve(order_);
    for (size_t j = 0; j < order_; ++j) {
      state.recent.push_back(
          ring_[lane * order_ + (ring_pos_[lane] + j) % order_]);
    }
  }
  const double* phi = &phi_[lane * order_];
  state.phi.assign(phi, phi + phi_len_[lane]);
  state.intercept = intercept_[lane];
  state.residual_sigma = sigma_[lane];
  state.model_ready = model_ready_[lane] != 0;
  state.alarm = alarm_[lane] != 0;
  state.above_streak = above_streak_[lane];
  state.below_streak = below_streak_[lane];
  state.samples_seen = samples_seen_[lane];
  state.alarms_raised = alarms_raised_[lane];
  state.baseline_epoch = baseline_epoch_[lane];
  state.frozen = frozen_[lane] != 0;
  state.pending_reset = pending_reset_[lane];
  state.pending_level = pending_level_[lane];
  state.pending_sigma = pending_sigma_[lane];
  state.pending_support = pending_support_[lane];
  return state;
}

Status BatchMonitorBank::RestoreState(size_t lane,
                                      const OnlineMonitorState& state) {
  if (lane >= size()) {
    return Status::OutOfRange("monitor lane out of range");
  }
  if (state.model_ready && state.recent.size() != options_.ar_order) {
    return Status::InvalidArgument(
        "monitor state window length does not match ar_order");
  }
  if (!state.model_ready && state.warmup_buffer.size() >= options_.warmup) {
    return Status::InvalidArgument(
        "monitor state has a full warmup buffer but no fitted model");
  }
  if (state.residual_sigma <= 0.0) {
    return Status::InvalidArgument("monitor state residual sigma must be > 0");
  }
  if (state.phi.size() > order_) {
    return Status::InvalidArgument(
        "monitor state has more coefficients than ar_order");
  }
  warmup_[lane] = state.warmup_buffer;
  double* ring = &ring_[lane * order_];
  std::fill(ring, ring + order_, 0.0);
  if (state.model_ready) {
    std::copy(state.recent.begin(), state.recent.end(), ring);
  }
  ring_pos_[lane] = 0;
  double* phi = &phi_[lane * order_];
  std::fill(phi, phi + order_, 0.0);
  std::copy(state.phi.begin(), state.phi.end(), phi);
  phi_len_[lane] = static_cast<uint32_t>(state.phi.size());
  intercept_[lane] = state.intercept;
  // Same floor Push and FitModel enforce: a checkpoint carrying a
  // degenerate sigma (e.g. 1e-300) must not resume into astronomical
  // z-scores and an alarm storm.
  sigma_[lane] = std::max(state.residual_sigma, kSigmaFloor);
  model_ready_[lane] = state.model_ready ? 1 : 0;
  alarm_[lane] = state.alarm ? 1 : 0;
  above_streak_[lane] = state.above_streak;
  below_streak_[lane] = state.below_streak;
  samples_seen_[lane] = state.samples_seen;
  alarms_raised_[lane] = state.alarms_raised;
  baseline_epoch_[lane] = state.baseline_epoch;
  frozen_[lane] = state.frozen ? 1 : 0;
  pending_reset_[lane] = state.pending_reset > 2 ? 0 : state.pending_reset;
  pending_level_[lane] = state.pending_level;
  pending_sigma_[lane] = state.pending_sigma;
  pending_support_[lane] = state.pending_support;
  return Status::Ok();
}

}  // namespace hod::core
