#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace hod::eval {
namespace {

TEST(Confusion, DerivedRates) {
  Confusion c;
  c.true_positives = 6;
  c.false_positives = 2;
  c.false_negatives = 4;
  c.true_negatives = 88;
  EXPECT_DOUBLE_EQ(c.Precision(), 0.75);
  EXPECT_DOUBLE_EQ(c.Recall(), 0.6);
  EXPECT_NEAR(c.F1(), 2.0 * 0.75 * 0.6 / 1.35, 1e-12);
  EXPECT_NEAR(c.FalsePositiveRate(), 2.0 / 90.0, 1e-12);
}

TEST(Confusion, DegenerateCounts) {
  Confusion empty;
  EXPECT_DOUBLE_EQ(empty.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(empty.Recall(), 0.0);
  EXPECT_DOUBLE_EQ(empty.F1(), 0.0);
}

TEST(Confuse, BasicThresholding) {
  const std::vector<double> scores = {0.1, 0.9, 0.6, 0.2};
  const Truth truth = {0, 1, 0, 1};
  auto c = Confuse(scores, truth, 0.5).value();
  EXPECT_EQ(c.true_positives, 1u);
  EXPECT_EQ(c.false_positives, 1u);
  EXPECT_EQ(c.false_negatives, 1u);
  EXPECT_EQ(c.true_negatives, 1u);
  EXPECT_FALSE(Confuse(scores, {0, 1}, 0.5).ok());
}

TEST(ConfuseWithTolerance, NearbyFlagsCount) {
  // Anomaly at 5, flag at 6: tolerance 1 counts it as detected and
  // excuses the flag.
  std::vector<double> scores(10, 0.0);
  scores[6] = 1.0;
  Truth truth(10, 0);
  truth[5] = 1;
  auto strict = ConfuseWithTolerance(scores, truth, 0.5, 0).value();
  EXPECT_EQ(strict.true_positives, 0u);
  EXPECT_EQ(strict.false_positives, 1u);
  auto tolerant = ConfuseWithTolerance(scores, truth, 0.5, 1).value();
  EXPECT_EQ(tolerant.true_positives, 1u);
  EXPECT_EQ(tolerant.false_positives, 0u);
}

TEST(RocAuc, PerfectAndInverted) {
  const Truth truth = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(RocAuc({0.1, 0.2, 0.8, 0.9}, truth).value(), 1.0);
  EXPECT_DOUBLE_EQ(RocAuc({0.9, 0.8, 0.2, 0.1}, truth).value(), 0.0);
}

TEST(RocAuc, TiesGiveHalfCredit) {
  const Truth truth = {0, 1};
  EXPECT_DOUBLE_EQ(RocAuc({0.5, 0.5}, truth).value(), 0.5);
}

TEST(RocAuc, SingleClassReturnsHalf) {
  EXPECT_DOUBLE_EQ(RocAuc({0.1, 0.9}, {0, 0}).value(), 0.5);
  EXPECT_DOUBLE_EQ(RocAuc({0.1, 0.9}, {1, 1}).value(), 0.5);
}

TEST(PrAuc, PerfectRankingIsOne) {
  const Truth truth = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(PrAuc({0.1, 0.2, 0.8, 0.9}, truth).value(), 1.0);
}

TEST(PrAuc, KnownInterleaving) {
  // Ranking: pos, neg, pos -> AP = (1/1 + 2/3) / 2.
  const Truth truth = {1, 0, 1};
  const std::vector<double> scores = {0.9, 0.8, 0.7};
  EXPECT_NEAR(PrAuc(scores, truth).value(), (1.0 + 2.0 / 3.0) / 2.0, 1e-12);
}

TEST(PrAuc, NoPositivesIsZero) {
  EXPECT_DOUBLE_EQ(PrAuc({0.5}, {0}).value(), 0.0);
}

TEST(BestF1, FindsSeparatingThreshold) {
  const std::vector<double> scores = {0.1, 0.2, 0.8, 0.9};
  const Truth truth = {0, 0, 1, 1};
  auto best = BestF1(scores, truth).value();
  EXPECT_DOUBLE_EQ(best.f1, 1.0);
  EXPECT_GT(best.threshold, 0.2);
  EXPECT_LT(best.threshold, 0.8);
  EXPECT_EQ(best.confusion.true_positives, 2u);
}

TEST(BestF1, ImperfectScores) {
  const std::vector<double> scores = {0.9, 0.1, 0.8, 0.2};
  const Truth truth = {1, 1, 0, 0};
  auto best = BestF1(scores, truth).value();
  EXPECT_GT(best.f1, 0.5);
  EXPECT_LT(best.f1, 1.0);
}

TEST(BestF1WithTolerance, RescuesOffByOneDetections) {
  std::vector<double> scores(20, 0.0);
  scores[4] = 0.9;
  scores[11] = 0.9;
  Truth truth(20, 0);
  truth[5] = 1;
  truth[10] = 1;
  // Without tolerance the best threshold degenerates to flag-everything
  // (recall 1 at precision 2/20).
  EXPECT_LT(BestF1(scores, truth).value().f1, 0.25);
  EXPECT_DOUBLE_EQ(BestF1WithTolerance(scores, truth, 1).value().f1, 1.0);
}

TEST(BestF1, SizeMismatchRejected) {
  EXPECT_FALSE(BestF1({0.5}, {0, 1}).ok());
}

TEST(Segments, ExtractMaximalRuns) {
  const Truth truth = {0, 1, 1, 0, 0, 1, 0, 1, 1, 1};
  const auto segments = ExtractSegments(truth);
  ASSERT_EQ(segments.size(), 3u);
  EXPECT_EQ(segments[0].begin, 1u);
  EXPECT_EQ(segments[0].end, 3u);
  EXPECT_EQ(segments[1].begin, 5u);
  EXPECT_EQ(segments[1].end, 6u);
  EXPECT_EQ(segments[2].begin, 7u);
  EXPECT_EQ(segments[2].end, 10u);
  EXPECT_TRUE(ExtractSegments({0, 0, 0}).empty());
  EXPECT_EQ(ExtractSegments({1, 1}).size(), 1u);
}

TEST(Segments, OneFlagDetectsWholeEvent) {
  // A 6-sample event with a single flag inside: pointwise recall would be
  // 1/6, segment recall is 1.
  std::vector<double> scores(20, 0.0);
  scores[8] = 0.9;
  Truth truth(20, 0);
  for (size_t i = 5; i < 11; ++i) truth[i] = 1;
  auto confusion = ConfuseSegments(scores, truth, 0.5, 0).value();
  EXPECT_EQ(confusion.detected_events, 1u);
  EXPECT_EQ(confusion.missed_events, 0u);
  EXPECT_EQ(confusion.false_positive_points, 0u);
  EXPECT_DOUBLE_EQ(confusion.EventRecall(), 1.0);
}

TEST(Segments, EdgeToleranceRescuesEarlyDetection) {
  std::vector<double> scores(20, 0.0);
  scores[3] = 0.9;  // two samples before the event
  Truth truth(20, 0);
  for (size_t i = 5; i < 9; ++i) truth[i] = 1;
  EXPECT_EQ(ConfuseSegments(scores, truth, 0.5, 0)->detected_events, 0u);
  EXPECT_EQ(ConfuseSegments(scores, truth, 0.5, 2)->detected_events, 1u);
  // Without tolerance the early flag is a false positive.
  EXPECT_EQ(ConfuseSegments(scores, truth, 0.5, 0)->false_positive_points,
            1u);
}

TEST(Segments, FalsePositivePointsCounted) {
  std::vector<double> scores(20, 0.0);
  scores[1] = 0.9;
  scores[15] = 0.9;
  Truth truth(20, 0);
  truth[10] = 1;
  auto confusion = ConfuseSegments(scores, truth, 0.5, 1).value();
  EXPECT_EQ(confusion.missed_events, 1u);
  EXPECT_EQ(confusion.false_positive_points, 2u);
}

TEST(Segments, SegmentF1Behaviour) {
  // Perfect: one flag per event, no FPs.
  std::vector<double> scores(30, 0.0);
  scores[5] = 0.9;
  scores[20] = 0.9;
  Truth truth(30, 0);
  for (size_t i = 4; i < 8; ++i) truth[i] = 1;
  for (size_t i = 19; i < 25; ++i) truth[i] = 1;
  EXPECT_DOUBLE_EQ(SegmentF1(scores, truth, 0.5, 0).value(), 1.0);
  // Degraded by an FP point.
  scores[0] = 0.9;
  EXPECT_LT(SegmentF1(scores, truth, 0.5, 0).value(), 1.0);
}

TEST(Segments, BestSegmentF1SweepsThresholds) {
  std::vector<double> scores = {0.1, 0.2, 0.9, 0.3, 0.1, 0.8, 0.2};
  Truth truth = {0, 0, 1, 0, 0, 1, 0};
  auto best = BestSegmentF1(scores, truth, 0).value();
  EXPECT_DOUBLE_EQ(best.f1, 1.0);
  EXPECT_GT(best.threshold, 0.3);
  EXPECT_FALSE(BestSegmentF1({0.5}, {0, 1}, 0).ok());
}

}  // namespace
}  // namespace hod::eval
