#ifndef HOD_DETECT_DETECTOR_H_
#define HOD_DETECT_DETECTOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "timeseries/discrete_sequence.h"
#include "timeseries/time_series.h"
#include "util/status.h"
#include "util/statusor.h"

namespace hod::detect {

/// The nine technique families of the paper's Table 1.
enum class Family {
  kDiscriminative,        // DA
  kUnsupervisedParametric,  // UPA
  kUnsupervisedOnline,    // UOA
  kSupervised,            // SA
  kNormalPatternDb,       // NPD
  kNegativeMixedDb,       // NMD
  kOutlierSubsequence,    // OS
  kPredictiveModel,       // PM
  kInformationTheoretic,  // ITM
};

/// Paper abbreviation, e.g. "DA".
std::string_view FamilyAbbreviation(Family family);
/// Long name, e.g. "Discriminative Approach".
std::string_view FamilyName(Family family);

/// Data-type applicability flags — the PTS / SSQ / TSS columns of Table 1.
struct DataTypeMask {
  bool points = false;       // PTS
  bool sequences = false;    // SSQ
  bool time_series = false;  // TSS

  /// Renders e.g. "PTS,TSS".
  std::string ToString() const;
};

/// One detected outlier occurrence with its significance.
struct Outlier {
  /// Index of the offending item (sample, window center, or point id).
  size_t index = 0;
  /// Outlierness in [0, 1] — the paper's "significance of the outlier as
  /// computed by the actually used algorithm", normalized so scores are
  /// comparable across algorithms and hierarchy levels.
  double score = 0.0;
  /// Absolute time of the occurrence when the input carries timestamps;
  /// otherwise equals the index.
  double time = 0.0;
};

/// Scoring result: one outlierness value per input item, plus the items
/// exceeding the extraction threshold.
struct Detection {
  std::vector<double> scores;
  std::vector<Outlier> outliers;
};

/// Binary anomaly labels (1 = anomalous). Used by the supervised family.
using Labels = std::vector<uint8_t>;

/// Detector over sets of numeric feature vectors ("points" in Table 1 —
/// job setups, CAQ vectors, aggregated window features).
///
/// Lifecycle: construct -> Train (or TrainSupervised) -> Score any number
/// of times. Train must be called before Score.
class VectorDetector {
 public:
  virtual ~VectorDetector() = default;

  virtual std::string name() const = 0;

  /// True when the detector requires labeled training data (SA family).
  virtual bool supervised() const { return false; }

  /// Fits the model to (assumed mostly normal) unlabeled data.
  /// Supervised detectors return FailedPrecondition here.
  virtual Status Train(const std::vector<std::vector<double>>& data) = 0;

  /// Fits using labels. Default: ignore labels and train unsupervised.
  virtual Status TrainSupervised(const std::vector<std::vector<double>>& data,
                                 const Labels& labels) {
    (void)labels;
    return Train(data);
  }

  /// Outlierness in [0,1] for each vector. Errors when untrained or when
  /// dimensions mismatch the training data.
  virtual StatusOr<std::vector<double>> Score(
      const std::vector<std::vector<double>>& data) const = 0;
};

/// Detector over discrete symbol sequences (SSQ). Scores are per symbol
/// position so outliers can be localized exactly.
class SequenceDetector {
 public:
  virtual ~SequenceDetector() = default;

  virtual std::string name() const = 0;
  virtual bool supervised() const { return false; }

  /// Fits to normal training sequences.
  virtual Status Train(const std::vector<ts::DiscreteSequence>& normal) = 0;

  /// Fits using per-position labels (one Labels entry per sequence).
  virtual Status TrainSupervised(
      const std::vector<ts::DiscreteSequence>& sequences,
      const std::vector<Labels>& labels) {
    (void)labels;
    return Train(sequences);
  }

  /// Outlierness in [0,1] per symbol position.
  virtual StatusOr<std::vector<double>> Score(
      const ts::DiscreteSequence& sequence) const = 0;
};

/// Detector over numeric time series (TSS). Scores are per sample.
class SeriesDetector {
 public:
  virtual ~SeriesDetector() = default;

  virtual std::string name() const = 0;
  virtual bool supervised() const { return false; }

  /// Fits to normal training series.
  virtual Status Train(const std::vector<ts::TimeSeries>& normal) = 0;

  /// Fits using per-sample labels (one Labels entry per series).
  virtual Status TrainSupervised(const std::vector<ts::TimeSeries>& series,
                                 const std::vector<Labels>& labels) {
    (void)labels;
    return Train(series);
  }

  /// Outlierness in [0,1] per sample.
  virtual StatusOr<std::vector<double>> Score(
      const ts::TimeSeries& series) const = 0;
};

}  // namespace hod::detect

#endif  // HOD_DETECT_DETECTOR_H_
