#include "timeseries/stats.h"

#include <algorithm>
#include <cmath>

namespace hod::ts {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  if (xs.size() < 1) return 0.0;
  const double m = Mean(xs);
  double sum = 0.0;
  for (double x : xs) sum += (x - m) * (x - m);
  return sum / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) { return std::sqrt(Variance(xs)); }

double Min(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double Max(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double Quantile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double Median(std::vector<double> xs) { return Quantile(std::move(xs), 0.5); }

double Mad(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  const double med = Median(xs);
  std::vector<double> devs;
  devs.reserve(xs.size());
  for (double x : xs) devs.push_back(std::fabs(x - med));
  // 1.4826 makes MAD a consistent estimator of sigma under normality.
  return 1.4826 * Median(std::move(devs));
}

std::vector<double> ZScores(const std::vector<double>& xs) {
  const double m = Mean(xs);
  const double s = StdDev(xs);
  std::vector<double> out(xs.size(), 0.0);
  if (s <= 0.0) return out;
  for (size_t i = 0; i < xs.size(); ++i) out[i] = (xs[i] - m) / s;
  return out;
}

std::vector<double> RobustZScores(const std::vector<double>& xs) {
  const double med = Median(xs);
  const double mad = Mad(xs);
  std::vector<double> out(xs.size(), 0.0);
  if (mad <= 0.0) return out;
  for (size_t i = 0; i < xs.size(); ++i) out[i] = (xs[i] - med) / mad;
  return out;
}

double Correlation(const std::vector<double>& xs,
                   const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.empty()) return 0.0;
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double Autocorrelation(const std::vector<double>& xs, size_t lag) {
  if (lag >= xs.size()) return 0.0;
  const double m = Mean(xs);
  double num = 0.0;
  double den = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    den += (xs[i] - m) * (xs[i] - m);
  }
  if (den <= 0.0) return 0.0;
  for (size_t i = lag; i < xs.size(); ++i) {
    num += (xs[i] - m) * (xs[i - lag] - m);
  }
  return num / den;
}

double Slope(const std::vector<double>& xs) {
  const size_t n = xs.size();
  if (n < 2) return 0.0;
  // Closed-form simple linear regression against t = 0..n-1.
  const double tm = static_cast<double>(n - 1) / 2.0;
  const double xm = Mean(xs);
  double num = 0.0;
  double den = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dt = static_cast<double>(i) - tm;
    num += dt * (xs[i] - xm);
    den += dt * dt;
  }
  return den > 0.0 ? num / den : 0.0;
}

double Energy(const std::vector<double>& xs) {
  double sum = 0.0;
  for (double x : xs) sum += x * x;
  return sum;
}

double DeviationToScore(double deviation, double scale) {
  if (deviation <= 0.0) return 0.0;
  if (scale <= 0.0) return 1.0;
  return deviation / (deviation + scale);
}

void RunningStats::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 1) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace hod::ts
