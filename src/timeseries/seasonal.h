#ifndef HOD_TIMESERIES_SEASONAL_H_
#define HOD_TIMESERIES_SEASONAL_H_

#include <cstddef>
#include <vector>

#include "util/statusor.h"

namespace hod::ts {

/// Seasonal structure handling for cyclic production signals (layer
/// cycling while printing, daily environment rhythms). Prediction-model
/// detectors improve markedly once the deterministic cycle is removed.

/// Result of a seasonal decomposition with known period.
struct SeasonalDecomposition {
  /// Per-phase means, length `period`.
  std::vector<double> seasonal;
  /// values[i] - seasonal[i % period].
  std::vector<double> adjusted;
};

/// Subtracts the per-phase mean cycle of length `period`. Errors when
/// period == 0 or period > values.size().
StatusOr<SeasonalDecomposition> Deseasonalize(
    const std::vector<double>& values, size_t period);

/// Estimates the dominant period as the autocorrelation-maximizing lag in
/// [min_lag, max_lag]. Returns 0 when no lag achieves `min_correlation`
/// (the series is not meaningfully periodic). Errors on degenerate
/// bounds.
StatusOr<size_t> DominantPeriod(const std::vector<double>& values,
                                size_t min_lag, size_t max_lag,
                                double min_correlation = 0.3);

}  // namespace hod::ts

#endif  // HOD_TIMESERIES_SEASONAL_H_
