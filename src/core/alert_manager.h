#ifndef HOD_CORE_ALERT_MANAGER_H_
#define HOD_CORE_ALERT_MANAGER_H_

#include <string>
#include <vector>

#include "core/report.h"
#include "util/statusor.h"

namespace hod::core {

/// Alert management — the paper's second promised application ("generate
/// Alerts"). Raw Algorithm-1 findings arrive point-by-point; operators
/// need *episodes*: nearby findings on the same entity merged into one
/// alert whose severity is the strongest of its members, routed by kind
/// (process problem vs suspected sensor fault).
struct AlertManagerOptions {
  /// Findings on the same entity within this many seconds merge into one
  /// episode.
  double merge_window = 30.0;
  /// Episodes below this severity are suppressed from the board.
  AlertSeverity min_severity = AlertSeverity::kWarning;
};

/// One merged alert episode.
struct AlertEpisode {
  std::string entity;
  ts::TimePoint start_time = 0.0;
  ts::TimePoint end_time = 0.0;
  size_t finding_count = 0;
  /// Strongest member values — the Algorithm-1 ⟨global score, outlierness,
  /// support⟩ triple of the episode.
  double peak_outlierness = 0.0;
  int peak_global_score = 1;
  double peak_support = 0.0;
  /// Member findings that came through the incremental escalation path.
  /// Zero means the episode only ever saw raw stream-tier alarms (global
  /// score 1, no support) — its triple is provisional, not confirmed by
  /// the hierarchical recursion.
  size_t escalated_findings = 0;
  AlertSeverity severity = AlertSeverity::kInfo;
  /// True when every member finding carried the measurement-error flag —
  /// the episode belongs on the calibration queue, not the stop queue.
  bool suspected_measurement_error = false;
  /// True when a member finding is a kGroupOutage (correlated quarantine
  /// onsets across a line/plant) — fleet boards pin these rows first
  /// within their severity class.
  bool group_outage = false;
};

/// Collects findings and produces the deduplicated alert board.
class AlertManager {
 public:
  explicit AlertManager(AlertManagerOptions options = {});

  /// Ingests one finding (any level, any order — episodes are rebuilt on
  /// demand from the sorted set).
  void Ingest(const OutlierFinding& finding);

  /// Ingests every finding of a report.
  void IngestReport(const HierarchicalOutlierReport& report);

  /// Ingests a batch of findings (the streaming collector's path: one
  /// call per drained micro-batch instead of one per finding).
  void IngestBatch(const std::vector<OutlierFinding>& findings);

  size_t findings_ingested() const { return findings_.size(); }

  /// Raw ingested findings, in arrival order — the manager's entire
  /// mutable state, exposed so an engine checkpoint can persist open alert
  /// episodes and restore them byte-identically.
  const std::vector<OutlierFinding>& Findings() const { return findings_; }

  /// Replaces the ingested findings wholesale (checkpoint restore).
  void RestoreFindings(std::vector<OutlierFinding> findings) {
    findings_ = std::move(findings);
  }

  /// Builds the episode list: per entity, time-sorted findings merged by
  /// the merge window, filtered by min severity, strongest first.
  std::vector<AlertEpisode> Episodes() const;

  /// Episodes destined for the calibration queue (suspected sensor
  /// faults) — these bypass the severity filter at WARNING level.
  std::vector<AlertEpisode> CalibrationQueue() const;

  void Clear() { findings_.clear(); }

 private:
  std::vector<AlertEpisode> BuildEpisodes(bool measurement_errors) const;

  AlertManagerOptions options_;
  std::vector<OutlierFinding> findings_;
};

}  // namespace hod::core

#endif  // HOD_CORE_ALERT_MANAGER_H_
