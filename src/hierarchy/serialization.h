#ifndef HOD_HIERARCHY_SERIALIZATION_H_
#define HOD_HIERARCHY_SERIALIZATION_H_

#include <istream>
#include <ostream>

#include "hierarchy/production.h"
#include "util/statusor.h"

namespace hod::hierarchy {

/// Text serialization of a whole Production — the interchange point
/// between a plant historian and this library. The format is line
/// oriented, versioned, and lossless for doubles (round-trips bit-exact):
///
///   HODPROD 1
///   SENSOR <id> <unit> <machine|-> <group|-> <name...>
///   LINE <id>
///   MACHINE <id>
///   CONFIG <n> <name> <value> ...
///   JOB <id> <start> <end>
///   SETUP <n> <name> <value> ...
///   CAQ <n> <name> <value> ...
///   PHASE <name> <start> <end>
///   EVENTS <alphabet> <n> <s1> ... <sn>
///   SERIES <sensor-id> <start> <interval> <n> <v1> ... <vn>
///   ENV <sensor-id> <start> <interval> <n> <v1> ... <vn>
///   END
///
/// Identifiers must not contain whitespace; the trailing free-text field
/// of SENSOR may.
Status WriteProduction(const Production& production, std::ostream& os);

/// Parses a production written by WriteProduction. Errors carry the
/// offending line number.
StatusOr<Production> ReadProduction(std::istream& is);

}  // namespace hod::hierarchy

#endif  // HOD_HIERARCHY_SERIALIZATION_H_
