#include "sim/ground_truth.h"

namespace hod::sim {

std::string GroundTruth::PhaseSeriesKey(const std::string& job_id,
                                        const std::string& phase_name,
                                        const std::string& sensor_id) {
  return job_id + "/" + phase_name + "/" + sensor_id;
}

LabelVector GroundTruth::PhaseLabelsOrZero(const std::string& job_id,
                                           const std::string& phase_name,
                                           const std::string& sensor_id,
                                           size_t size) const {
  const auto it =
      phase_labels.find(PhaseSeriesKey(job_id, phase_name, sensor_id));
  if (it == phase_labels.end()) return LabelVector(size, 0);
  LabelVector labels = it->second;
  labels.resize(size, 0);
  return labels;
}

size_t GroundTruth::CountAtLevel(hierarchy::ProductionLevel level) const {
  size_t count = 0;
  for (const AnomalyRecord& record : records) {
    if (record.level == level) ++count;
  }
  return count;
}

}  // namespace hod::sim
