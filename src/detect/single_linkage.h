#ifndef HOD_DETECT_SINGLE_LINKAGE_H_
#define HOD_DETECT_SINGLE_LINKAGE_H_

#include <vector>

#include "detect/detector.h"
#include "detect/kmeans.h"

namespace hod::detect {

/// Single-linkage clustering for intrusion/outlier detection (Portnoy et
/// al. 2001) — Table 1 row 7, family DA, data types PTS + SSQ + TSS.
///
/// Training z-scales the data and grows clusters with fixed width `w`:
/// a point joins the nearest cluster center if within `w`, else it starts a
/// new cluster (single-linkage style agglomeration over a stream). The
/// largest clusters are labeled "normal"; test points score by the size of
/// the cluster they fall into and their distance to it.
struct SingleLinkageOptions {
  /// Cluster width in scaled units.
  double width = 1.5;
  /// Fraction of training mass that must be covered by the clusters
  /// labeled normal (largest first).
  double normal_mass = 0.9;
};

class SingleLinkageDetector : public VectorDetector {
 public:
  explicit SingleLinkageDetector(SingleLinkageOptions options = {});

  std::string name() const override { return "SingleLinkageClustering"; }

  Status Train(const std::vector<std::vector<double>>& data) override;

  StatusOr<std::vector<double>> Score(
      const std::vector<std::vector<double>>& data) const override;

  size_t num_clusters() const { return centers_.size(); }

 private:
  SingleLinkageOptions options_;
  ColumnScaler scaler_;
  std::vector<std::vector<double>> centers_;
  std::vector<size_t> counts_;
  std::vector<bool> is_normal_;
  bool trained_ = false;
};

}  // namespace hod::detect

#endif  // HOD_DETECT_SINGLE_LINKAGE_H_
