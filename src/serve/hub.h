#ifndef HOD_SERVE_HUB_H_
#define HOD_SERVE_HUB_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "hierarchy/level.h"
#include "serve/codec.h"
#include "serve/history.h"
#include "stream/engine.h"
#include "stream/spsc_ring.h"
#include "util/status.h"
#include "util/statusor.h"

namespace hod::serve {

struct SnapshotHubOptions {
  /// A full keyframe is broadcast every this-many processed publishes;
  /// publishes in between travel as deltas. Late joiners and droppy
  /// readers get out-of-cadence keyframes on top.
  uint64_t keyframe_every = 32;
  /// Per-subscriber update queue depth. When full the subscriber starts
  /// dropping (never the publisher): it is marked for keyframe resync and
  /// receives no further deltas until a keyframe lands.
  size_t subscriber_queue_capacity = 8;
  /// Per-level history ring length (one entry per processed publish).
  size_t history_capacity = 256;
  /// When true, Publish() is one bounded ring push (newest-wins) and a
  /// dedicated fan-out thread runs delta encoding + subscriber delivery —
  /// the mode that keeps ingest retention flat at 10k subscribers. When
  /// false everything happens inline in Publish() (deterministic; tests).
  bool async = false;
  /// Async-mode intake ring depth. Overflow drops the *oldest* queued
  /// snapshot (the newest state always wins; skipped intermediates just
  /// widen one delta).
  size_t intake_capacity = 64;
};

/// One fan-out payload: either a full keyframe or a delta against the
/// previously processed snapshot. Shared read-only across subscriber
/// queues, so fanning to N readers is N shared_ptr copies, not N deep
/// copies.
struct ServedUpdate {
  bool is_keyframe = false;
  stream::EngineSnapshot keyframe;  ///< set when is_keyframe
  SnapshotDelta delta;              ///< set when !is_keyframe
};

/// Hub-side aggregate counters. The per-publish outcome identity — every
/// processed publish offers each live subscriber exactly one update —
/// makes the fan-out auditable:
///
///   Σ per-subscriber offers == deltas_served + keyframes_served
///                              + delta_dropped + keyframes_dropped
struct HubStatsSnapshot {
  uint64_t publishes_seen = 0;    ///< snapshots handed to Publish()
  uint64_t intake_dropped = 0;    ///< async intake overflow (newest wins)
  uint64_t publishes_processed = 0;  ///< fanned out (== seen when sync)
  uint64_t keyframes_encoded = 0;
  uint64_t deltas_encoded = 0;
  uint64_t deltas_served = 0;
  uint64_t keyframes_served = 0;
  uint64_t delta_dropped = 0;     ///< slow reader: delta skipped, resync armed
  uint64_t keyframes_dropped = 0;  ///< resync keyframe also found queue full
  uint64_t resyncs_forced = 0;    ///< sequence regressions (engine restore)
  uint64_t seed_keyframes = 0;    ///< late-joiner seeds (outside the identity)
  uint64_t subscribes = 0;
  uint64_t unsubscribes = 0;
  size_t subscribers = 0;
};

/// Per-subscriber channel counters (hub side of the queue). For any
/// subscriber, offers == deltas_served + keyframes_served + delta_dropped
/// + keyframes_dropped — the drop-to-keyframe accounting pinned in tests.
struct SubscriberChannelStats {
  uint64_t offers = 0;
  uint64_t deltas_served = 0;
  uint64_t keyframes_served = 0;
  uint64_t delta_dropped = 0;
  uint64_t keyframes_dropped = 0;
  bool awaiting_keyframe = false;
};

class SnapshotHub;

/// A read handle: drains the per-subscriber queue and maintains a local
/// reconstruction of the engine snapshot (keyframes replace it, deltas
/// patch it). Single-consumer: one thread per subscription. Must not
/// outlive its hub. Dropping the handle unsubscribes.
class Subscription {
 public:
  ~Subscription();
  Subscription(const Subscription&) = delete;
  Subscription& operator=(const Subscription&) = delete;

  /// Applies every queued update to the local view; returns how many.
  size_t Drain();

  bool has_view() const { return has_view_; }
  /// Latest reconstructed snapshot (valid once has_view()).
  const stream::EngineSnapshot& View() const { return view_; }

  uint64_t keyframes_applied() const { return keyframes_applied_; }
  uint64_t deltas_applied() const { return deltas_applied_; }
  /// Deltas discarded because their base did not match the local view
  /// (possible only between a queue-full drop and the resync keyframe).
  uint64_t stale_skipped() const { return stale_skipped_; }

  /// Hub-side counters for this channel (takes the hub lock).
  SubscriberChannelStats ChannelStats() const;

 private:
  friend class SnapshotHub;
  struct Channel;

  Subscription(SnapshotHub* hub, uint64_t id, std::shared_ptr<Channel> channel)
      : hub_(hub), id_(id), channel_(std::move(channel)) {}

  SnapshotHub* hub_;
  uint64_t id_;
  std::shared_ptr<Channel> channel_;
  stream::EngineSnapshot view_;
  bool has_view_ = false;
  uint64_t keyframes_applied_ = 0;
  uint64_t deltas_applied_ = 0;
  uint64_t stale_skipped_ = 0;
  std::vector<std::shared_ptr<const ServedUpdate>> scratch_;
};

/// Read-side fan-out hub for one StreamEngine: consumes the publish
/// sequence once (attach Publish via StreamEngineOptions::snapshot_sink),
/// delta-encodes consecutive snapshots, and serves N subscribers through
/// bounded per-subscriber rings with drop-to-keyframe backpressure — a
/// slow dashboard can never stall the collector or another reader. Also
/// keeps per-hierarchy-level history rings feeding the OLAP roll-up
/// QueryService.
///
/// Threading: Publish is called by exactly one producer (the engine's
/// collector — every publish site is serialized). Subscribe/Unsubscribe/
/// Stats are safe from any thread. Each Subscription is drained by one
/// consumer thread. In async mode a dedicated jthread performs the
/// fan-out; the producer pays one lock-free ring push per publish.
class SnapshotHub {
 public:
  explicit SnapshotHub(SnapshotHubOptions options = {});
  ~SnapshotHub();

  SnapshotHub(const SnapshotHub&) = delete;
  SnapshotHub& operator=(const SnapshotHub&) = delete;

  /// The engine-facing sink. Wire it up as
  ///   options.snapshot_sink = [&hub](const auto& s) { hub.Publish(s); };
  void Publish(const stream::EngineSnapshot& snapshot);

  /// Registers a reader. The new subscriber is immediately seeded with a
  /// keyframe of the latest processed snapshot (late joiners do not wait
  /// for the next cadence keyframe).
  std::unique_ptr<Subscription> Subscribe();

  /// Blocks until every publish handed in so far has been fanned out
  /// (no-op in sync mode). Test/bench hook.
  void Quiesce();

  HubStatsSnapshot Stats() const;

  /// Count of processed publishes — the epoch that stamps query-cache
  /// entries; any new publish invalidates them.
  uint64_t PublishEpoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Latest processed snapshot, if any.
  std::optional<stream::EngineSnapshot> Latest() const;

  /// History-ring reads for the query tier. `level_index` is
  /// LevelValue(level) - 1, matching EngineSnapshot::levels.
  std::vector<HistoryRing<stream::LevelOutlierState>::Entry> LevelWindow(
      int level_index, ts::TimePoint t0, ts::TimePoint t1) const;
  std::optional<HistoryRing<stream::LevelOutlierState>::Entry> LevelBefore(
      int level_index, ts::TimePoint t) const;
  size_t HistorySize(int level_index) const;
  uint64_t HistoryEvicted(int level_index) const;

  /// Persists the serving state (last processed snapshot + history rings)
  /// so a restarted serving process resumes with warm history. After
  /// RestoreState the next publish is always broadcast as a keyframe:
  /// subscribers resync instead of applying deltas against a stale base —
  /// same path that absorbs an engine checkpoint/restore sequence
  /// regression.
  Status SaveState(std::ostream& os) const;
  Status RestoreState(std::istream& is);

 private:
  friend class Subscription;

  void Process(const stream::EngineSnapshot& snapshot);
  void FanOutLoop();
  void Unsubscribe(uint64_t id);

  const SnapshotHubOptions options_;

  mutable std::mutex mu_;
  std::map<uint64_t, std::shared_ptr<Subscription::Channel>> subscribers_;
  /// Dense fan-out view of subscribers_ (swap-remove on unsubscribe).
  /// Process() walks this contiguous array instead of chasing map nodes —
  /// at 10k subscribers the tree walk alone was ~1ms of dependent cache
  /// misses per publish, which on a small host comes straight out of the
  /// collector's budget.
  std::vector<Subscription::Channel*> channel_cache_;
  uint64_t next_subscriber_id_ = 1;
  bool have_last_ = false;
  bool force_keyframe_ = false;
  stream::EngineSnapshot last_;
  std::vector<HistoryRing<stream::LevelOutlierState>> history_;
  HubStatsSnapshot stats_;

  std::atomic<uint64_t> epoch_{0};
  std::atomic<uint64_t> intake_seen_{0};

  /// Async mode only. Declared after everything FanOutLoop touches; the
  /// jthread joins in the destructor before members are torn down.
  std::unique_ptr<stream::SpscRing<stream::EngineSnapshot>> intake_;
  std::jthread fanout_;
};

}  // namespace hod::serve

#endif  // HOD_SERVE_HUB_H_
