#include "serve/hub.h"

#include <chrono>
#include <thread>
#include <utility>

#include "hierarchy/serialization.h"

namespace hod::serve {

namespace {
namespace bin = hierarchy::bin;
constexpr uint32_t kHubStateMagic = 0x53444F48u;  // "HODS"
constexpr uint32_t kHubStateVersion = 1;
}  // namespace

/// Hub-side half of one subscriber: the bounded SPSC queue (producer = hub
/// under its mutex, consumer = the subscriber's drain thread) plus the
/// backpressure bookkeeping, all guarded by the hub mutex.
/// Member order matters: the sweep-hot fields (stats, the skip flag) lead
/// so the parked-reader skip path lives entirely in the object's first
/// cache line — the one the fan-out loop prefetches — and never touches
/// the ring behind it.
struct Subscription::Channel {
  explicit Channel(size_t capacity)
      : ring(capacity, stream::BackpressurePolicy::kReject) {}
  SubscriberChannelStats stats;
  size_t cache_slot = 0;  ///< index into SnapshotHub::channel_cache_
  /// Set by the consumer whenever Drain() pops; cleared by the hub when a
  /// push finds the queue full. While clear and the channel is awaiting a
  /// keyframe, the queue is provably still full (the consumer freed no
  /// slot since it filled), so the hub skips the doomed push instead of
  /// reading the ring — at 10k parked dashboards that skip is most of the
  /// fan-out sweep. The race with a concurrent pop only delays the resync
  /// keyframe to the next publish after the next drain — the same
  /// eventual-keyframe contract a failed push already has.
  std::atomic<bool> consumed_since_full{false};
  stream::SpscRing<std::shared_ptr<const ServedUpdate>> ring;
};

Subscription::~Subscription() {
  if (hub_ != nullptr) hub_->Unsubscribe(id_);
}

size_t Subscription::Drain() {
  size_t applied = 0;
  while (true) {
    scratch_.clear();
    if (channel_->ring.TryPopBatch(scratch_, 64) == 0) break;
    // Freed queue slots: tell the hub this channel is worth pushing to
    // again (it skips channels that are provably still full).
    channel_->consumed_since_full.store(true, std::memory_order_seq_cst);
    for (const std::shared_ptr<const ServedUpdate>& update : scratch_) {
      if (update->is_keyframe) {
        view_ = update->keyframe;
        has_view_ = true;
        ++keyframes_applied_;
        ++applied;
        continue;
      }
      if (!has_view_ || view_.sequence != update->delta.base_sequence) {
        // Possible only in the window between a queue-full drop and the
        // resync keyframe; the keyframe is already on its way.
        ++stale_skipped_;
        continue;
      }
      StatusOr<stream::EngineSnapshot> next = ApplyDelta(view_, update->delta);
      if (!next.ok()) {
        ++stale_skipped_;
        continue;
      }
      view_ = std::move(next).value();
      ++deltas_applied_;
      ++applied;
    }
  }
  return applied;
}

SubscriberChannelStats Subscription::ChannelStats() const {
  std::lock_guard<std::mutex> lock(hub_->mu_);
  return channel_->stats;
}

SnapshotHub::SnapshotHub(SnapshotHubOptions options)
    : options_(options) {
  history_.reserve(hierarchy::kNumLevels);
  for (int i = 0; i < hierarchy::kNumLevels; ++i) {
    history_.emplace_back(options_.history_capacity);
  }
  if (options_.async) {
    intake_ = std::make_unique<stream::SpscRing<stream::EngineSnapshot>>(
        options_.intake_capacity, stream::BackpressurePolicy::kDropOldest);
    fanout_ = std::jthread([this] { FanOutLoop(); });
  }
}

SnapshotHub::~SnapshotHub() {
  if (intake_) {
    intake_->Close();
    if (fanout_.joinable()) fanout_.join();
  }
}

void SnapshotHub::Publish(const stream::EngineSnapshot& snapshot) {
  intake_seen_.fetch_add(1, std::memory_order_relaxed);
  if (intake_) {
    // The collector pays exactly one lock-free ring push, never the
    // fan-out. Overflow drops the oldest queued snapshot: the newest
    // state wins and the skipped one is absorbed into a wider delta.
    (void)intake_->Push(snapshot, stream::BackpressurePolicy::kDropOldest,
                        nullptr);
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  Process(snapshot);
}

void SnapshotHub::FanOutLoop() {
  std::vector<stream::EngineSnapshot> batch;
  while (intake_->PopBatch(batch, 16)) {
    std::lock_guard<std::mutex> lock(mu_);
    for (stream::EngineSnapshot& snapshot : batch) Process(snapshot);
    batch.clear();
  }
}

void SnapshotHub::Process(const stream::EngineSnapshot& snapshot) {
  const bool regression = have_last_ && snapshot.sequence <= last_.sequence;
  if (regression) ++stats_.resyncs_forced;
  const bool keyframe_due =
      !have_last_ || force_keyframe_ || regression ||
      (options_.keyframe_every != 0 &&
       stats_.publishes_processed % options_.keyframe_every == 0);

  std::shared_ptr<const ServedUpdate> keyframe;
  std::shared_ptr<const ServedUpdate> delta;
  auto make_keyframe = [&]() -> const std::shared_ptr<const ServedUpdate>& {
    if (!keyframe) {
      auto update = std::make_shared<ServedUpdate>();
      update->is_keyframe = true;
      update->keyframe = snapshot;
      keyframe = std::move(update);
    }
    return keyframe;
  };
  if (keyframe_due) {
    make_keyframe();
    ++stats_.keyframes_encoded;
  } else {
    auto update = std::make_shared<ServedUpdate>();
    update->is_keyframe = false;
    update->delta = EncodeDelta(last_, snapshot);
    delta = std::move(update);
    ++stats_.deltas_encoded;
  }

  const size_t fanout_n = channel_cache_.size();
  for (size_t i = 0; i < fanout_n; ++i) {
    // The dense array knows upcoming channel addresses; hide the miss
    // latency of each scattered Channel behind the current push.
    if (i + 8 < fanout_n) {
#if defined(__GNUC__) || defined(__clang__)
      __builtin_prefetch(channel_cache_[i + 8]);
#endif
    }
    Subscription::Channel* channel = channel_cache_[i];
    ++channel->stats.offers;
    if (keyframe_due || channel->stats.awaiting_keyframe) {
      if (channel->stats.awaiting_keyframe &&
          !channel->consumed_since_full.load(std::memory_order_acquire)) {
        // The queue filled and the consumer has not popped since: a push
        // can only fail, so account the dropped keyframe without touching
        // the ring. This keeps the sweep O(1) cache lines per parked
        // reader.
        ++stats_.keyframes_dropped;
        ++channel->stats.keyframes_dropped;
        continue;
      }
      const Status pushed = channel->ring.Push(
          make_keyframe(), stream::BackpressurePolicy::kReject, nullptr);
      if (pushed.ok()) {
        ++stats_.keyframes_served;
        ++channel->stats.keyframes_served;
        channel->stats.awaiting_keyframe = false;
      } else {
        ++stats_.keyframes_dropped;
        ++channel->stats.keyframes_dropped;
        channel->stats.awaiting_keyframe = true;
        channel->consumed_since_full.store(false, std::memory_order_seq_cst);
      }
      continue;
    }
    const Status pushed = channel->ring.Push(
        delta, stream::BackpressurePolicy::kReject, nullptr);
    if (pushed.ok()) {
      ++stats_.deltas_served;
      ++channel->stats.deltas_served;
    } else {
      // Drop-to-keyframe: this reader never sees a delta it cannot apply;
      // it waits (without stalling anyone) for a keyframe that fits.
      ++stats_.delta_dropped;
      ++channel->stats.delta_dropped;
      channel->stats.awaiting_keyframe = true;
      channel->consumed_since_full.store(false, std::memory_order_seq_cst);
    }
  }

  for (int i = 0; i < hierarchy::kNumLevels; ++i) {
    history_[i].Append(snapshot.ts, snapshot.levels[i]);
  }
  last_ = snapshot;
  have_last_ = true;
  force_keyframe_ = false;
  ++stats_.publishes_processed;
  epoch_.store(stats_.publishes_processed, std::memory_order_release);
}

std::unique_ptr<Subscription> SnapshotHub::Subscribe() {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t id = next_subscriber_id_++;
  auto channel = std::make_shared<Subscription::Channel>(
      options_.subscriber_queue_capacity);
  if (have_last_) {
    // Seed the late joiner so it has a view before the next cadence
    // keyframe. Outside the offer/outcome identity (not a publish).
    auto update = std::make_shared<ServedUpdate>();
    update->is_keyframe = true;
    update->keyframe = last_;
    (void)channel->ring.Push(std::move(update),
                             stream::BackpressurePolicy::kReject, nullptr);
    ++stats_.seed_keyframes;
  }
  channel->cache_slot = channel_cache_.size();
  channel_cache_.push_back(channel.get());
  subscribers_.emplace(id, channel);
  ++stats_.subscribes;
  return std::unique_ptr<Subscription>(
      new Subscription(this, id, std::move(channel)));
}

void SnapshotHub::Unsubscribe(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = subscribers_.find(id);
  if (it == subscribers_.end()) return;
  const size_t slot = it->second->cache_slot;
  channel_cache_[slot] = channel_cache_.back();
  channel_cache_[slot]->cache_slot = slot;
  channel_cache_.pop_back();
  subscribers_.erase(it);
  ++stats_.unsubscribes;
}

void SnapshotHub::Quiesce() {
  if (!intake_) return;
  // Intake eviction counts as "handled": the evicted snapshot's state is
  // carried by a later one still in the ring.
  while (epoch_.load(std::memory_order_acquire) + intake_->dropped() <
         intake_seen_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

HubStatsSnapshot SnapshotHub::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  HubStatsSnapshot out = stats_;
  out.publishes_seen = intake_seen_.load(std::memory_order_relaxed);
  out.intake_dropped = intake_ ? intake_->dropped() : 0;
  out.subscribers = subscribers_.size();
  return out;
}

std::optional<stream::EngineSnapshot> SnapshotHub::Latest() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!have_last_) return std::nullopt;
  return last_;
}

std::vector<HistoryRing<stream::LevelOutlierState>::Entry>
SnapshotHub::LevelWindow(int level_index, ts::TimePoint t0,
                         ts::TimePoint t1) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (level_index < 0 || level_index >= hierarchy::kNumLevels) return {};
  return history_[level_index].Window(t0, t1);
}

std::optional<HistoryRing<stream::LevelOutlierState>::Entry>
SnapshotHub::LevelBefore(int level_index, ts::TimePoint t) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (level_index < 0 || level_index >= hierarchy::kNumLevels) {
    return std::nullopt;
  }
  return history_[level_index].Before(t);
}

size_t SnapshotHub::HistorySize(int level_index) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (level_index < 0 || level_index >= hierarchy::kNumLevels) return 0;
  return history_[level_index].size();
}

uint64_t SnapshotHub::HistoryEvicted(int level_index) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (level_index < 0 || level_index >= hierarchy::kNumLevels) return 0;
  return history_[level_index].evicted();
}

Status SnapshotHub::SaveState(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  bin::WriteU32(os, kHubStateMagic);
  bin::WriteU32(os, kHubStateVersion);
  bin::WriteU8(os, have_last_ ? 1 : 0);
  if (have_last_) WriteSnapshot(os, last_);
  for (const auto& ring : history_) {
    bin::WriteU32(os, static_cast<uint32_t>(ring.size()));
    for (size_t i = 0; i < ring.size(); ++i) {
      const auto& entry = ring.At(i);
      bin::WriteF64(os, entry.ts);
      bin::WriteU64(os, entry.value.outlier_samples);
      bin::WriteU64(os, entry.value.alarms_raised);
      bin::WriteU64(os, entry.value.alarms_cleared);
      bin::WriteU64(os, entry.value.active_alarms);
      bin::WriteU64(os, entry.value.sensor_faults);
      bin::WriteU64(os, entry.value.quarantined_sensors);
      bin::WriteF64(os, entry.value.peak_score);
      bin::WriteF64(os, entry.value.last_outlier_ts);
    }
  }
  if (!os.good()) return Status::Internal("hub state write failed");
  return Status::Ok();
}

Status SnapshotHub::RestoreState(std::istream& is) {
  uint32_t magic = 0;
  HOD_ASSIGN_OR_RETURN(magic, bin::ReadU32(is));
  if (magic != kHubStateMagic) {
    return Status::InvalidArgument("not a hub state image");
  }
  uint32_t version = 0;
  HOD_ASSIGN_OR_RETURN(version, bin::ReadU32(is));
  if (version != kHubStateVersion) {
    return Status::InvalidArgument("unsupported hub state version");
  }
  uint8_t have_last = 0;
  HOD_ASSIGN_OR_RETURN(have_last, bin::ReadU8(is));
  stream::EngineSnapshot last;
  if (have_last != 0) {
    HOD_ASSIGN_OR_RETURN(last, ReadSnapshot(is));
  }
  std::vector<std::vector<HistoryRing<stream::LevelOutlierState>::Entry>>
      rings(hierarchy::kNumLevels);
  for (int i = 0; i < hierarchy::kNumLevels; ++i) {
    uint32_t count = 0;
    HOD_ASSIGN_OR_RETURN(count, bin::ReadU32(is));
    rings[i].reserve(count);
    for (uint32_t j = 0; j < count; ++j) {
      HistoryRing<stream::LevelOutlierState>::Entry entry;
      HOD_ASSIGN_OR_RETURN(entry.ts, bin::ReadF64(is));
      HOD_ASSIGN_OR_RETURN(entry.value.outlier_samples, bin::ReadU64(is));
      HOD_ASSIGN_OR_RETURN(entry.value.alarms_raised, bin::ReadU64(is));
      HOD_ASSIGN_OR_RETURN(entry.value.alarms_cleared, bin::ReadU64(is));
      HOD_ASSIGN_OR_RETURN(entry.value.active_alarms, bin::ReadU64(is));
      HOD_ASSIGN_OR_RETURN(entry.value.sensor_faults, bin::ReadU64(is));
      HOD_ASSIGN_OR_RETURN(entry.value.quarantined_sensors, bin::ReadU64(is));
      HOD_ASSIGN_OR_RETURN(entry.value.peak_score, bin::ReadF64(is));
      HOD_ASSIGN_OR_RETURN(entry.value.last_outlier_ts, bin::ReadF64(is));
      rings[i].push_back(entry);
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  have_last_ = have_last != 0;
  if (have_last_) last_ = std::move(last);
  for (int i = 0; i < hierarchy::kNumLevels; ++i) {
    history_[i].Clear();
    for (auto& entry : rings[i]) history_[i].Append(entry.ts, entry.value);
  }
  // Whatever this hub serves next cannot be a delta: any subscriber that
  // survived the restart holds a view from the previous incarnation.
  force_keyframe_ = true;
  return Status::Ok();
}

}  // namespace hod::serve
