#include "detect/ar_detector.h"

#include <algorithm>
#include <cmath>

#include "timeseries/stats.h"
#include "util/simd.h"

namespace hod::detect {

StatusOr<std::vector<double>> SolveLinearSystem(
    std::vector<std::vector<double>> a, std::vector<double> b) {
  const size_t n = a.size();
  if (n == 0 || b.size() != n) {
    return Status::InvalidArgument("bad system dimensions");
  }
  for (size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    size_t pivot = col;
    for (size_t row = col + 1; row < n; ++row) {
      if (std::fabs(a[row][col]) > std::fabs(a[pivot][col])) pivot = row;
    }
    if (std::fabs(a[pivot][col]) < 1e-12) {
      return Status::Internal("singular system in AR fit");
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (size_t row = col + 1; row < n; ++row) {
      const double factor = a[row][col] / a[col][col];
      for (size_t k = col; k < n; ++k) a[row][k] -= factor * a[col][k];
      b[row] -= factor * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (size_t row = n; row-- > 0;) {
    double sum = b[row];
    for (size_t k = row + 1; k < n; ++k) sum -= a[row][k] * x[k];
    x[row] = sum / a[row][row];
  }
  return x;
}

ArDetector::ArDetector(ArOptions options) : options_(options) {}

Status ArDetector::Train(const std::vector<ts::TimeSeries>& normal) {
  if (options_.order == 0) return Status::InvalidArgument("order must be > 0");
  const size_t p = options_.order;
  // Assemble the least-squares normal equations over all training series:
  // design rows are [1, x_{t-1}, ..., x_{t-p}], target x_t.
  //
  // The accumulation runs through the SIMD dispatch shim: per sample t,
  // the upper-triangle products row[i]*row[j] (j >= i) plus the A^T b
  // products row[i]*x[t] are laid out as one flat lane array and folded
  // with a single MulAccumulate. Each accumulator lane still receives
  // exactly one mul-then-add per t, in t order, so the sums are
  // bit-identical to the scalar nested loops on every backend.
  const size_t d = p + 1;
  const size_t lanes = d * (d + 1) / 2 + d;  // upper triangle + A^T b
  std::vector<double> acc(lanes, 0.0);
  std::vector<double> left(lanes, 0.0);
  std::vector<double> right(lanes, 0.0);
  std::vector<double> row(d, 0.0);
  size_t rows = 0;
  for (const auto& series : normal) {
    HOD_RETURN_IF_ERROR(series.Validate());
    const auto& x = series.values();
    for (size_t t = p; t < x.size(); ++t) {
      row[0] = 1.0;
      for (size_t k = 0; k < p; ++k) row[k + 1] = x[t - 1 - k];
      size_t lane = 0;
      for (size_t i = 0; i < d; ++i) {
        for (size_t j = i; j < d; ++j) {
          left[lane] = row[i];
          right[lane] = row[j];
          ++lane;
        }
        left[lane] = row[i];
        right[lane] = x[t];
        ++lane;
      }
      util::simd::MulAccumulate(acc.data(), left.data(), right.data(), lanes);
      ++rows;
    }
  }
  if (rows < d) {
    return Status::InvalidArgument("not enough samples for AR order");
  }
  std::vector<std::vector<double>> ata(d, std::vector<double>(d, 0.0));
  std::vector<double> atb(d, 0.0);
  {
    size_t lane = 0;
    for (size_t i = 0; i < d; ++i) {
      for (size_t j = i; j < d; ++j) ata[i][j] = acc[lane++];
      atb[i] = acc[lane++];
    }
  }
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = 0; j < i; ++j) ata[i][j] = ata[j][i];
    ata[i][i] += options_.ridge * static_cast<double>(rows);
  }
  HOD_ASSIGN_OR_RETURN(std::vector<double> beta,
                       SolveLinearSystem(std::move(ata), std::move(atb)));
  intercept_ = beta[0];
  phi_.assign(beta.begin() + 1, beta.end());

  // Training residual sigma (robust: MAD over all residuals). The
  // forecast pass is one Axpy per lag coefficient: element t accumulates
  // phi_[k] * x[t-1-k] in ascending k, the same per-element mul-then-add
  // order as the scalar inner loop — bit-identical on every backend.
  std::vector<double> residuals;
  std::vector<double> pred;
  for (const auto& series : normal) {
    const auto& x = series.values();
    if (x.size() <= p) continue;
    const size_t m = x.size() - p;
    pred.assign(m, intercept_);
    for (size_t k = 0; k < p; ++k) {
      util::simd::Axpy(pred.data(), phi_[k], x.data() + (p - 1 - k), m);
    }
    for (size_t t = p; t < x.size(); ++t) {
      residuals.push_back(x[t] - pred[t - p]);
    }
  }
  residual_sigma_ = ts::Mad(residuals);
  if (residual_sigma_ <= 0.0) residual_sigma_ = ts::StdDev(residuals);
  if (residual_sigma_ <= 0.0) residual_sigma_ = 1e-6;
  trained_ = true;
  return Status::Ok();
}

StatusOr<std::vector<double>> ArDetector::Forecast(
    const ts::TimeSeries& series) const {
  if (!trained_) return Status::FailedPrecondition("detector not trained");
  const auto& x = series.values();
  const size_t p = options_.order;
  std::vector<double> forecast(x.size(), ts::Mean(x));
  for (size_t t = p; t < x.size(); ++t) {
    double pred = intercept_;
    for (size_t k = 0; k < p; ++k) pred += phi_[k] * x[t - 1 - k];
    forecast[t] = pred;
  }
  return forecast;
}

StatusOr<std::vector<double>> ArDetector::Score(
    const ts::TimeSeries& series) const {
  if (!trained_) return Status::FailedPrecondition("detector not trained");
  HOD_RETURN_IF_ERROR(series.Validate());
  HOD_ASSIGN_OR_RETURN(std::vector<double> forecast, Forecast(series));
  const auto& x = series.values();
  std::vector<double> scores(x.size(), 0.0);
  for (size_t t = options_.order; t < x.size(); ++t) {
    const double z = std::fabs(x[t] - forecast[t]) / residual_sigma_;
    const double excess = z - 1.0;  // one sigma of slack
    scores[t] =
        excess <= 0.0 ? 0.0 : excess / (excess + options_.sigma_scale);
  }
  return scores;
}

}  // namespace hod::detect
