#ifndef HOD_STREAM_SHARDED_SCORER_H_
#define HOD_STREAM_SHARDED_SCORER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/monitor.h"
#include "stream/queue.h"
#include "stream/router.h"
#include "stream/stats.h"
#include "util/statusor.h"

namespace hod::stream {

/// A scored sample forwarded to the collector: the original reading plus
/// the per-sensor monitor's verdict. Only interesting samples travel this
/// path (alarm transitions and scores above the forwarding threshold), so
/// collector traffic stays proportional to outliers, not throughput.
struct ScoredSample {
  std::string sensor_id;
  hierarchy::ProductionLevel level = hierarchy::ProductionLevel::kPhase;
  ts::TimePoint ts = 0.0;
  double value = 0.0;
  core::MonitorUpdate update;
};

/// Read-only view of one sensor's monitor, for tests and diagnostics.
/// Only coherent while no worker owns the monitor (synchronous mode, or a
/// stopped engine).
struct SensorProbe {
  uint64_t samples_seen = 0;
  uint64_t alarms_raised = 0;
  bool alarm = false;
  bool model_ready = false;
};

struct ShardedScorerOptions {
  size_t num_shards = 4;
  /// Per-shard queue capacity (samples).
  size_t queue_capacity = 1024;
  /// Max samples a worker drains per queue acquisition.
  size_t max_batch = 64;
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  /// Configuration of every per-sensor OnlineMonitor.
  core::OnlineMonitorOptions monitor;
  /// Scores above this are forwarded to the collector even without an
  /// alarm transition (feeds the per-level outlier snapshot).
  double forward_threshold = 0.5;
};

/// The scoring tier: N shards, each owning a bounded queue, a worker
/// thread, and the `core::OnlineMonitor` instances of the sensors hashed
/// to it. Shard state is strictly thread-private — a sensor's samples are
/// only ever scored by its shard's worker, so the hot path touches no
/// shared mutable state and takes no lock (the queue mutex is amortized
/// over micro-batches).
class ShardedScorer {
 public:
  /// `stats` and `collector` must outlive the scorer; `collector` receives
  /// forwarded ScoredSamples and may be nullptr (forwarding disabled).
  ShardedScorer(const ShardedScorerOptions& options, StreamStats* stats,
                BoundedQueue<ScoredSample>* collector);
  ~ShardedScorer();

  ShardedScorer(const ShardedScorer&) = delete;
  ShardedScorer& operator=(const ShardedScorer&) = delete;

  /// Creates the monitor for one sensor on its shard. Call before Start().
  Status AddSensor(size_t shard, const std::string& sensor_id);

  /// Spawns one worker per shard. Without Start() the scorer is usable
  /// synchronously via ScoreNow().
  Status Start();

  /// Enqueues a routed sample onto its shard, applying backpressure.
  Status Submit(size_t shard, SensorSample sample);

  /// Scores a sample inline on the caller's thread (synchronous mode).
  /// Must not be mixed with running workers.
  StatusOr<core::MonitorUpdate> ScoreNow(size_t shard,
                                         const SensorSample& sample);

  /// Blocks until every submitted sample has been scored. Producers must
  /// be quiescent for the post-condition to be meaningful.
  Status Flush();

  /// Closes every queue, drains remaining samples, and joins workers.
  /// Idempotent.
  void Stop();

  /// Copies per-shard queue high-water marks and kDropOldest eviction
  /// counts into `snapshot` (they live in the queues, not in StreamStats).
  void FillQueueStats(StreamStatsSnapshot& snapshot) const;

  bool running() const { return running_; }
  size_t num_shards() const { return shards_.size(); }
  /// Samples forwarded to the collector so far.
  uint64_t forwarded() const {
    return forwarded_.load(std::memory_order_acquire);
  }

  /// Monitor state of one sensor. FailedPrecondition while workers run.
  StatusOr<SensorProbe> Probe(const std::string& sensor_id) const;

 private:
  struct Shard {
    Shard(size_t capacity, BackpressurePolicy policy)
        : queue(capacity, policy) {}
    BoundedQueue<SensorSample> queue;
    std::map<std::string, core::OnlineMonitor> monitors;
    std::atomic<uint64_t> submitted{0};
    std::atomic<uint64_t> processed{0};
    std::jthread worker;
  };

  void WorkerLoop(size_t shard_index);
  /// Scores one sample against its monitor; forwards interesting updates.
  void ScoreOne(Shard& shard, SensorSample& sample);

  ShardedScorerOptions options_;
  StreamStats* stats_;
  BoundedQueue<ScoredSample>* collector_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> forwarded_{0};
  std::mutex flush_mu_;
  std::condition_variable flush_cv_;
  bool running_ = false;
  bool stopped_ = false;
};

}  // namespace hod::stream

#endif  // HOD_STREAM_SHARDED_SCORER_H_
