#ifndef HOD_HIERARCHY_CAQ_H_
#define HOD_HIERARCHY_CAQ_H_

#include <string>
#include <vector>

#include "hierarchy/production.h"
#include "util/statusor.h"

namespace hod::hierarchy {

/// Computer-aided quality assurance — the paper's job-level anchor: "a job
/// ... starts with a setup and ends with a computer-aided quality (CAQ)
/// check". This module gives CAQ vectors engineering meaning: tolerance
/// bands per quality feature, pass/fail evaluation, and process-capability
/// (Cpk) tracking over a machine's recent jobs.

/// Tolerance specification of one quality feature.
struct CaqLimit {
  std::string feature;
  double lower = 0.0;
  double upper = 0.0;
  /// Nominal target inside [lower, upper].
  double target = 0.0;
};

/// A full CAQ specification (one limit per feature).
class CaqSpecification {
 public:
  /// Adds a limit; lower < upper and target inside the band are enforced.
  Status AddLimit(CaqLimit limit);

  const std::vector<CaqLimit>& limits() const { return limits_; }

  /// Looks up the limit for a feature, or NotFound.
  StatusOr<CaqLimit> LimitFor(const std::string& feature) const;

 private:
  std::vector<CaqLimit> limits_;
};

/// Outcome of checking one job's CAQ vector against the specification.
struct CaqResult {
  bool pass = true;
  /// Features outside their band.
  std::vector<std::string> violations;
  /// Worst normalized margin across features: 1 = on target, 0 = on a
  /// limit, negative = outside the band.
  double worst_margin = 1.0;
};

/// Checks a job's CAQ vector. Features present in the specification but
/// missing from the vector are errors; extra CAQ features are ignored.
StatusOr<CaqResult> EvaluateCaq(const CaqSpecification& specification,
                                const ts::FeatureVector& caq);

/// Process-capability index of one feature over a set of jobs:
/// Cpk = min(mean - lower, upper - mean) / (3 * sigma). Values >= 1.33 are
/// conventionally "capable"; < 1 means the process produces scrap.
/// Errors when fewer than 2 jobs carry the feature or sigma is 0.
StatusOr<double> ProcessCapability(const CaqSpecification& specification,
                                   const std::vector<const Job*>& jobs,
                                   const std::string& feature);

/// Per-feature Cpk over a machine's most recent `window` jobs (all jobs
/// when window == 0).
struct CapabilityReport {
  std::vector<std::string> features;
  std::vector<double> cpk;
};
StatusOr<CapabilityReport> MachineCapability(
    const CaqSpecification& specification, const Machine& machine,
    size_t window = 0);

/// Default specification matching the simulator's CAQ schema (density %,
/// roughness um, dim_deviation mm, tensile MPa).
CaqSpecification DefaultPrinterCaqSpecification();

}  // namespace hod::hierarchy

#endif  // HOD_HIERARCHY_CAQ_H_
