#include "detect/rule_classifier.h"

#include <algorithm>
#include <cmath>

#include "timeseries/stats.h"

namespace hod::detect {

namespace {

double BinaryEntropy(double p) {
  if (p <= 0.0 || p >= 1.0) return 0.0;
  return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

}  // namespace

RuleClassifierDetector::RuleClassifierDetector(RuleClassifierOptions options)
    : options_(options) {}

Status RuleClassifierDetector::Train(
    const std::vector<std::vector<double>>& data) {
  (void)data;
  return Status::FailedPrecondition(
      "RuleBasedClassifier is supervised; call TrainSupervised with labels");
}

Status RuleClassifierDetector::TrainSupervised(
    const std::vector<std::vector<double>>& data, const Labels& labels) {
  if (data.empty()) {
    return Status::InvalidArgument("rule classifier on empty data");
  }
  if (data.size() != labels.size()) {
    return Status::InvalidArgument("one label per point required");
  }
  dim_ = data[0].size();
  size_t positives = 0;
  for (uint8_t label : labels) {
    if (label != 0) ++positives;
  }
  if (positives == 0 || positives == labels.size()) {
    return Status::InvalidArgument(
        "supervised training needs both classes present");
  }
  const size_t n = data.size();
  base_rate_ = static_cast<double>(positives) / static_cast<double>(n);
  const double root_entropy = BinaryEntropy(base_rate_);

  rules_.clear();
  for (size_t f = 0; f < dim_; ++f) {
    std::vector<double> column(n);
    for (size_t i = 0; i < n; ++i) {
      if (data[i].size() != dim_) {
        return Status::InvalidArgument("ragged data in rule train");
      }
      column[i] = data[i][f];
    }
    // Quantile threshold grid.
    IntervalRule best;
    best.gain = 0.0;
    for (size_t t = 1; t < options_.candidate_thresholds; ++t) {
      const double q = static_cast<double>(t) /
                       static_cast<double>(options_.candidate_thresholds);
      const double threshold = ts::Quantile(column, q);
      size_t above = 0;
      size_t above_pos = 0;
      for (size_t i = 0; i < n; ++i) {
        if (column[i] > threshold) {
          ++above;
          if (labels[i] != 0) ++above_pos;
        }
      }
      const size_t below = n - above;
      const size_t below_pos = positives - above_pos;
      if (above == 0 || below == 0) continue;
      const double p_above =
          static_cast<double>(above_pos) / static_cast<double>(above);
      const double p_below =
          static_cast<double>(below_pos) / static_cast<double>(below);
      const double split_entropy =
          (static_cast<double>(above) * BinaryEntropy(p_above) +
           static_cast<double>(below) * BinaryEntropy(p_below)) /
          static_cast<double>(n);
      const double gain = root_entropy - split_entropy;
      if (gain <= best.gain) continue;
      // The rule fires on whichever side is more anomalous.
      IntervalRule rule;
      rule.feature = f;
      rule.threshold = threshold;
      rule.greater = p_above >= p_below;
      rule.confidence = rule.greater ? p_above : p_below;
      rule.gain = gain;
      const size_t coverage = rule.greater ? above : below;
      if (coverage < options_.min_coverage) continue;
      best = rule;
    }
    if (best.gain > 0.0) rules_.push_back(best);
  }
  if (rules_.empty()) {
    return Status::Internal("no informative rule found on any feature");
  }
  std::sort(rules_.begin(), rules_.end(),
            [](const IntervalRule& a, const IntervalRule& b) {
              return a.gain > b.gain;
            });
  if (rules_.size() > options_.max_rules) rules_.resize(options_.max_rules);
  trained_ = true;
  return Status::Ok();
}

StatusOr<std::vector<double>> RuleClassifierDetector::Score(
    const std::vector<std::vector<double>>& data) const {
  if (!trained_) return Status::FailedPrecondition("detector not trained");
  std::vector<double> scores(data.size(), 0.0);
  for (size_t i = 0; i < data.size(); ++i) {
    if (data[i].size() != dim_) {
      return Status::InvalidArgument("dimension mismatch in rule score");
    }
    // Gain-weighted average of the firing rules' confidences; points firing
    // no rule take the base rate.
    double weighted = 0.0;
    double weight = 0.0;
    for (const IntervalRule& rule : rules_) {
      const double v = data[i][rule.feature];
      const bool fires = rule.greater ? v > rule.threshold
                                      : v <= rule.threshold;
      if (fires) {
        weighted += rule.gain * rule.confidence;
        weight += rule.gain;
      }
    }
    scores[i] = weight > 0.0 ? weighted / weight : base_rate_;
  }
  return scores;
}

}  // namespace hod::detect
