#include "sim/fault_injector.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

namespace hod::sim {
namespace {

stream::SensorSample Sample(const std::string& id, double ts, double value) {
  return {id, hierarchy::ProductionLevel::kPhase, ts, value};
}

TEST(FaultInjector, PassthroughForUnscheduledSensors) {
  FaultInjector injector;
  auto out = injector.Apply(Sample("clean", 5.0, 42.0));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].sensor_id, "clean");
  EXPECT_DOUBLE_EQ(out[0].value, 42.0);
  EXPECT_FALSE(injector.IsVictim("clean"));
}

TEST(FaultInjector, AddFaultValidates) {
  FaultInjector injector;
  FaultProfile profile;
  profile.duration = 10.0;
  EXPECT_FALSE(injector.AddFault("", profile).ok());
  profile.duration = 0.0;
  EXPECT_FALSE(injector.AddFault("s", profile).ok());
  profile.duration = 1.0;
  EXPECT_TRUE(injector.AddFault("s", profile).ok());
  EXPECT_EQ(injector.num_faults(), 1u);
}

TEST(FaultInjector, DropoutSwallowsSamplesInsideTheInterval) {
  FaultInjector injector;
  ASSERT_TRUE(
      injector.AddFault("s", {FaultKind::kDropout, 10.0, 5.0}).ok());
  EXPECT_EQ(injector.Apply(Sample("s", 9.9, 1.0)).size(), 1u);
  EXPECT_EQ(injector.Apply(Sample("s", 10.0, 1.0)).size(), 0u);
  EXPECT_EQ(injector.Apply(Sample("s", 14.9, 1.0)).size(), 0u);
  EXPECT_EQ(injector.Apply(Sample("s", 15.0, 1.0)).size(), 1u)
      << "fault end is exclusive";
}

TEST(FaultInjector, StuckAtLatchesTheFirstInFaultValue) {
  FaultInjector injector;
  ASSERT_TRUE(
      injector.AddFault("s", {FaultKind::kStuckAt, 100.0, 50.0}).ok());
  auto before = injector.Apply(Sample("s", 99.0, 7.0));
  ASSERT_EQ(before.size(), 1u);
  EXPECT_DOUBLE_EQ(before[0].value, 7.0);
  auto first = injector.Apply(Sample("s", 100.0, 3.25));
  ASSERT_EQ(first.size(), 1u);
  EXPECT_DOUBLE_EQ(first[0].value, 3.25) << "latches on entry";
  auto later = injector.Apply(Sample("s", 120.0, 99.0));
  ASSERT_EQ(later.size(), 1u);
  EXPECT_DOUBLE_EQ(later[0].value, 3.25) << "stays stuck";
  auto after = injector.Apply(Sample("s", 151.0, 8.0));
  ASSERT_EQ(after.size(), 1u);
  EXPECT_DOUBLE_EQ(after[0].value, 8.0) << "releases after the interval";
}

TEST(FaultInjector, NaNBurstEmitsNaN) {
  FaultInjector injector;
  ASSERT_TRUE(
      injector.AddFault("s", {FaultKind::kNaNBurst, 0.0, 10.0}).ok());
  auto out = injector.Apply(Sample("s", 5.0, 1.0));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(std::isnan(out[0].value));
}

TEST(FaultInjector, GainDriftRampsMultiplicatively) {
  FaultInjector injector;
  FaultProfile profile{FaultKind::kGainDrift, 100.0, 50.0};
  profile.gain_rate = 0.1;
  ASSERT_TRUE(injector.AddFault("s", profile).ok());
  // 20 s into the fault: gain = 1 + 0.1 * 20 = 3.
  auto out = injector.Apply(Sample("s", 120.0, 10.0));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].value, 30.0);
  // At fault start the gain is exactly 1.
  auto start = injector.Apply(Sample("s", 100.0, 10.0));
  ASSERT_EQ(start.size(), 1u);
  EXPECT_DOUBLE_EQ(start[0].value, 10.0);
}

TEST(FaultInjector, DuplicateDeliversTwice) {
  FaultInjector injector;
  ASSERT_TRUE(
      injector.AddFault("s", {FaultKind::kDuplicate, 0.0, 10.0}).ok());
  auto out = injector.Apply(Sample("s", 5.0, 3.0));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0].value, 3.0);
  EXPECT_DOUBLE_EQ(out[1].value, 3.0);
  EXPECT_DOUBLE_EQ(out[0].ts, out[1].ts);
}

TEST(FaultInjector, ClockSkewRegressesTimestamps) {
  FaultInjector injector;
  FaultProfile profile{FaultKind::kClockSkew, 100.0, 50.0};
  profile.skew = 32.0;
  ASSERT_TRUE(injector.AddFault("s", profile).ok());
  auto out = injector.Apply(Sample("s", 110.0, 1.0));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].ts, 78.0);
  EXPECT_DOUBLE_EQ(out[0].value, 1.0) << "value untouched";
}

TEST(FaultInjector, FaultsOnOneSensorDoNotLeak) {
  FaultInjector injector;
  ASSERT_TRUE(
      injector.AddFault("bad", {FaultKind::kNaNBurst, 0.0, 100.0}).ok());
  auto out = injector.Apply(Sample("good", 5.0, 1.0));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].value, 1.0);
}

TEST(FaultInjector, IsFaultedMatchesGroundTruth) {
  FaultInjector injector;
  ASSERT_TRUE(
      injector.AddFault("s", {FaultKind::kDropout, 10.0, 5.0}).ok());
  ASSERT_TRUE(
      injector.AddFault("s", {FaultKind::kStuckAt, 30.0, 5.0}).ok());
  EXPECT_FALSE(injector.IsFaulted("s", 9.0));
  EXPECT_TRUE(injector.IsFaulted("s", 12.0));
  EXPECT_FALSE(injector.IsFaulted("s", 20.0));
  EXPECT_TRUE(injector.IsFaulted("s", 34.0));
  EXPECT_FALSE(injector.IsFaulted("other", 12.0));
  const auto& truth = injector.GroundTruth();
  ASSERT_EQ(truth.size(), 2u);
  EXPECT_DOUBLE_EQ(truth[0].start, 10.0);
  EXPECT_DOUBLE_EQ(truth[0].end, 15.0);
  EXPECT_DOUBLE_EQ(truth[1].start, 30.0);
}

TEST(FaultInjector, PlanRandomIsDeterministicPerSeed) {
  std::vector<std::string> sensors;
  for (int i = 0; i < 32; ++i) sensors.push_back("s" + std::to_string(i));

  FaultInjectorOptions options;
  options.seed = 99;
  FaultInjector a(options);
  FaultInjector b(options);
  ASSERT_TRUE(a.PlanRandom(sensors, 5, 0.0, 1000.0).ok());
  ASSERT_TRUE(b.PlanRandom(sensors, 5, 0.0, 1000.0).ok());

  const auto& ta = a.GroundTruth();
  const auto& tb = b.GroundTruth();
  ASSERT_EQ(ta.size(), 5u);
  ASSERT_EQ(ta.size(), tb.size());
  for (size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].sensor_id, tb[i].sensor_id);
    EXPECT_EQ(ta[i].kind, tb[i].kind);
    EXPECT_DOUBLE_EQ(ta[i].start, tb[i].start);
    EXPECT_DOUBLE_EQ(ta[i].end, tb[i].end);
  }

  // A different seed picks a different plan.
  options.seed = 100;
  FaultInjector c(options);
  ASSERT_TRUE(c.PlanRandom(sensors, 5, 0.0, 1000.0).ok());
  bool any_difference = false;
  for (size_t i = 0; i < ta.size(); ++i) {
    if (c.GroundTruth()[i].sensor_id != ta[i].sensor_id ||
        c.GroundTruth()[i].start != ta[i].start) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(FaultInjector, PlanRandomKeepsFaultsInsideTheWindow) {
  std::vector<std::string> sensors;
  for (int i = 0; i < 16; ++i) sensors.push_back("s" + std::to_string(i));
  FaultInjectorOptions options;
  options.seed = 7;
  options.min_duration = 40.0;
  options.max_duration = 120.0;
  FaultInjector injector(options);
  ASSERT_TRUE(injector.PlanRandom(sensors, 8, 100.0, 900.0).ok());
  ASSERT_EQ(injector.GroundTruth().size(), 8u);
  for (const FaultInterval& interval : injector.GroundTruth()) {
    EXPECT_GE(interval.start, 100.0) << interval.sensor_id;
    EXPECT_LT(interval.start, 900.0) << interval.sensor_id;
    EXPECT_GE(interval.end - interval.start, 40.0);
    EXPECT_LE(interval.end - interval.start, 120.0);
  }
}

TEST(FaultInjector, PlanRandomRejectsBadArguments) {
  FaultInjector injector;
  EXPECT_FALSE(injector.PlanRandom({"a"}, 2, 0.0, 100.0).ok())
      << "more faults than sensors";
  EXPECT_FALSE(injector.PlanRandom({"a"}, 1, 100.0, 100.0).ok())
      << "empty window";
}

TEST(FaultInjector, ApplyStreamIsDeterministicPerSensorOrder) {
  // Same schedule + same per-sensor sample order => same faulted stream,
  // which is what makes multi-threaded fault drills reproducible.
  FaultInjectorOptions options;
  options.seed = 5;
  options.kinds = {FaultKind::kStuckAt, FaultKind::kGainDrift};
  auto run = [&options] {
    FaultInjector injector(options);
    EXPECT_TRUE(injector.PlanRandom({"a", "b", "c"}, 2, 0.0, 200.0).ok());
    std::vector<double> values;
    for (int t = 0; t < 200; ++t) {
      for (const std::string& id : {"a", "b", "c"}) {
        for (const auto& sample :
             injector.Apply(Sample(id, t, 50.0 + t * 0.01))) {
          values.push_back(sample.value);
          values.push_back(sample.ts);
        }
      }
    }
    return values;
  };
  EXPECT_EQ(run(), run());
}

TEST(FaultInjector, LineOutageSilencesEverySensorOverOneWindow) {
  FaultInjector injector;
  const std::vector<std::string> line = {"l1.a", "l1.b", "l1.c"};
  ASSERT_TRUE(injector.AddLineOutage(line, 100.0, 50.0).ok());
  ASSERT_EQ(injector.num_faults(), line.size())
      << "one ground-truth interval per affected sensor";
  for (const FaultInterval& interval : injector.GroundTruth()) {
    EXPECT_EQ(interval.kind, FaultKind::kLineOutage);
    EXPECT_DOUBLE_EQ(interval.start, 100.0);
    EXPECT_DOUBLE_EQ(interval.end, 150.0) << "the window is shared";
  }
  for (const std::string& id : line) {
    EXPECT_EQ(injector.Apply(Sample(id, 99.9, 1.0)).size(), 1u);
    EXPECT_EQ(injector.Apply(Sample(id, 100.0, 1.0)).size(), 0u);
    EXPECT_EQ(injector.Apply(Sample(id, 149.9, 1.0)).size(), 0u);
    EXPECT_EQ(injector.Apply(Sample(id, 150.0, 1.0)).size(), 1u);
    EXPECT_TRUE(injector.IsFaulted(id, 120.0));
  }
  EXPECT_EQ(injector.Apply(Sample("other", 120.0, 1.0)).size(), 1u)
      << "sensors off the line are untouched";
}

TEST(FaultInjector, LineOutageValidates) {
  FaultInjector injector;
  EXPECT_FALSE(injector.AddLineOutage({}, 0.0, 10.0).ok());
  EXPECT_FALSE(injector.AddLineOutage({"a", "a"}, 0.0, 10.0).ok());
  EXPECT_FALSE(injector.AddLineOutage({"a", ""}, 0.0, 10.0).ok());
  EXPECT_FALSE(injector.AddLineOutage({"a", "b"}, 0.0, 0.0).ok());
  EXPECT_TRUE(injector.AddLineOutage({"a", "b"}, 0.0, 10.0).ok());
}

TEST(FaultInjector, PlanRandomNeverDrawsLineOutages) {
  FaultInjectorOptions options;
  options.seed = 99;
  FaultInjector injector(options);
  std::vector<std::string> ids;
  for (int i = 0; i < 40; ++i) ids.push_back("s" + std::to_string(i));
  ASSERT_TRUE(injector.PlanRandom(ids, ids.size(), 0.0, 1000.0).ok());
  for (const FaultInterval& interval : injector.GroundTruth()) {
    EXPECT_NE(interval.kind, FaultKind::kLineOutage)
        << "correlated outages are scheduled, not drawn per sensor";
  }
}

TEST(FaultKindNames, AreHumanReadable) {
  EXPECT_EQ(FaultKindName(FaultKind::kDropout), "dropout");
  EXPECT_EQ(FaultKindName(FaultKind::kStuckAt), "stuck-at");
  EXPECT_EQ(FaultKindName(FaultKind::kNaNBurst), "nan-burst");
  EXPECT_EQ(FaultKindName(FaultKind::kGainDrift), "gain-drift");
  EXPECT_EQ(FaultKindName(FaultKind::kDuplicate), "duplicate");
  EXPECT_EQ(FaultKindName(FaultKind::kClockSkew), "clock-skew");
  EXPECT_EQ(FaultKindName(FaultKind::kLineOutage), "line-outage");
}

}  // namespace
}  // namespace hod::sim
