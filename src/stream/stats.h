#ifndef HOD_STREAM_STATS_H_
#define HOD_STREAM_STATS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "hierarchy/level.h"

namespace hod::stream {

/// Number of log2 buckets in the drain-batch-size histogram: bucket i
/// counts batches of size [2^i, 2^(i+1)).
inline constexpr size_t kBatchBuckets = 16;

/// Per-level counter array, indexed by LevelValue(level) - 1.
using LevelCounters = std::array<uint64_t, hierarchy::kNumLevels>;

/// A coherent copy of every engine counter, safe to hold across the
/// engine's lifetime. In synchronous mode (and after `Stop()` in threaded
/// mode) the values are exact and deterministic, so tests can assert them.
struct StreamStatsSnapshot {
  uint64_t ingested = 0;  ///< samples that passed router validation
  uint64_t scored = 0;    ///< samples scored by a shard worker
  /// Evicted by kDropOldest backpressure (filled from the shard queues by
  /// the engine, not tracked in StreamStats itself).
  uint64_t dropped = 0;
  uint64_t rejected_queue_full = 0;     ///< refused by kReject backpressure
  uint64_t rejected_timeout = 0;        ///< kBlockWithTimeout pushes expired
  uint64_t rejected_non_finite = 0;     ///< NaN / infinite values
  uint64_t rejected_unknown_sensor = 0; ///< sensor id never registered
  uint64_t rejected_level_mismatch = 0; ///< level differs from registration
  uint64_t rejected_out_of_order = 0;   ///< ts regressed beyond tolerance
  /// Submitted after the shard queue closed (engine shutting down). Without
  /// this bucket such samples would vanish from the audit: Submit undoes its
  /// `submitted` count on failure, so the conservation identity
  /// `ingested == scored + dropped + rejected + quarantined` would leak one
  /// sample per shutdown race.
  uint64_t rejected_closed = 0;
  uint64_t alarms_raised = 0;
  uint64_t alarms_cleared = 0;
  /// Samples of quarantined sensors withheld from their monitors.
  uint64_t quarantined_samples = 0;
  /// Sensor-fault findings emitted (quarantine entries) / full recoveries.
  uint64_t sensor_faults = 0;
  uint64_t sensor_recoveries = 0;
  /// Shard workers the watchdog has ever flagged as stalled.
  uint64_t watchdog_stall_events = 0;
  /// Forwards (scores or health events) the collector refused — normally
  /// only during shutdown when the collector queue is already closed. These
  /// are NOT counted in `forwarded`, so
  /// `collected == forwarded + health_events_pushed` stays exact.
  uint64_t forward_failed = 0;
  /// ---- Escalation tier (snapshot-triggered Algorithm 1 runs) ----------
  /// Times the escalation bridge ran the hierarchical detector over a
  /// snapshot diff (only snapshots with newly-flagged alarms count).
  uint64_t escalation_runs = 0;
  /// Alarmed entities re-scored across all runs.
  uint64_t escalation_entities = 0;
  /// Hierarchical findings those runs produced / alarms the detector
  /// could not resolve to a production scope.
  uint64_t escalation_findings = 0;
  uint64_t escalation_unresolved = 0;
  /// Detector cache traffic attributable to escalation (models + score
  /// vectors reused vs rebuilt) — the incrementality measure.
  uint64_t escalation_cache_hits = 0;
  uint64_t escalation_cache_misses = 0;
  /// Total wall time spent inside EscalateAlarm calls, microseconds.
  uint64_t escalation_latency_us = 0;
  /// ---- Background checkpointing ----------------------------------------
  uint64_t checkpoints_written = 0;
  uint64_t checkpoint_failures = 0;
  /// ---- Read-side serving tier -------------------------------------------
  /// EngineSnapshots published by the collector (each one is a potential
  /// serve-tier delta; the hub's own fan-out counters live hub-side).
  uint64_t snapshots_published = 0;
  /// ---- Peer-group (space-axis) tier -------------------------------------
  /// Deviations fired by the peer-group monitor (a channel leaving its
  /// redundancy group's band, by level or by slope).
  uint64_t peer_deviations = 0;
  /// Group outages declared by quarantine-onset correlation / outages
  /// fully recovered (every member back from quarantine).
  uint64_t group_outages = 0;
  uint64_t group_outage_recoveries = 0;
  /// Per-sensor kSensorFault findings suppressed because their onset was
  /// folded into a group outage. The FSM-side `sensor_faults` counter is
  /// untouched by suppression — it counts quarantine entries, not
  /// findings.
  uint64_t suppressed_sensor_faults = 0;
  /// ---- Online concept-shift tier (BOCPD re-baselining) ------------------
  /// Shifts the per-lane BOCPD detectors confirmed.
  uint64_t concept_shifts = 0;
  /// Baseline resets actually applied (a reset deferred during quarantine
  /// counts here when the thaw applies it).
  uint64_t baseline_resets = 0;
  /// Concept-shift resets that found the lane frozen and were parked
  /// until the thaw.
  uint64_t baseline_resets_deferred = 0;
  /// Per-level accounting (indexed by LevelValue(level) - 1): what was
  /// lost (drops + rejects) and what was withheld (quarantine) at each
  /// hierarchy level — the observability half of per-sensor-class
  /// backpressure.
  LevelCounters level_dropped{};
  LevelCounters level_rejected{};
  LevelCounters level_quarantined{};
  /// Deepest each shard's queue has ever been.
  std::vector<uint64_t> shard_queue_high_water;
  /// Shards the watchdog currently considers stalled (threaded mode with
  /// the watchdog enabled; empty otherwise).
  std::vector<uint8_t> shard_stalled;
  /// Histogram of worker drain batch sizes (log2 buckets).
  std::array<uint64_t, kBatchBuckets> batch_size_histogram{};

  uint64_t rejected_total() const {
    return rejected_queue_full + rejected_timeout + rejected_non_finite +
           rejected_unknown_sensor + rejected_level_mismatch +
           rejected_out_of_order + rejected_closed;
  }

  /// Folds another engine's snapshot into this one (fleet roll-up).
  /// Event counters — including every escalation_* and checkpoint_*
  /// counter — and the per-level / batch-histogram arrays add
  /// elementwise, so the conservation identity
  /// `ingested == scored + dropped + rejected + quarantined` holds for
  /// the sum iff it holds for each operand. Non-additive vectors merge by
  /// shape: `shard_queue_high_water` takes the per-index MAX (a depth,
  /// not a count) and `shard_stalled` the per-index OR, both extended to
  /// the longer operand — fleet plants need not share a shard count.
  StreamStatsSnapshot& operator+=(const StreamStatsSnapshot& other);

  /// Multi-line human-readable rendering for examples/benches.
  std::string ToString() const;
};

inline StreamStatsSnapshot operator+(StreamStatsSnapshot lhs,
                                     const StreamStatsSnapshot& rhs) {
  lhs += rhs;
  return lhs;
}

/// Lock-free counter block shared by router, shard workers, and collector.
/// Every member is a relaxed atomic: counters are monotone event counts
/// with no cross-counter invariant enforced mid-flight, so relaxed order
/// is sufficient; `Snapshot()` taken at a quiescent point is exact.
class StreamStats {
 public:
  explicit StreamStats(size_t num_shards)
      : shard_high_water_(num_shards) {
    for (auto& hw : shard_high_water_) hw.store(0, std::memory_order_relaxed);
  }

  void RecordIngested() { Bump(ingested_); }
  void RecordScored(uint64_t n) {
    scored_.fetch_add(n, std::memory_order_relaxed);
  }
  void RecordRejectedQueueFull() { Bump(rejected_queue_full_); }
  void RecordRejectedTimeout() { Bump(rejected_timeout_); }
  void RecordRejectedNonFinite() { Bump(rejected_non_finite_); }
  void RecordRejectedUnknownSensor() { Bump(rejected_unknown_sensor_); }
  void RecordRejectedLevelMismatch() { Bump(rejected_level_mismatch_); }
  void RecordRejectedOutOfOrder() { Bump(rejected_out_of_order_); }
  void RecordRejectedQueueClosed() { Bump(rejected_closed_); }
  void RecordForwardFailed() { Bump(forward_failed_); }
  void RecordAlarmRaised() { Bump(alarms_raised_); }
  void RecordAlarmCleared() { Bump(alarms_cleared_); }
  void RecordQuarantinedSample(hierarchy::ProductionLevel level) {
    Bump(quarantined_samples_);
    Bump(level_quarantined_[LevelIndex(level)]);
  }
  void RecordSensorFault() { Bump(sensor_faults_); }
  void RecordSensorRecovery() { Bump(sensor_recoveries_); }
  void RecordWatchdogStall() { Bump(watchdog_stall_events_); }
  void RecordLevelDropped(hierarchy::ProductionLevel level) {
    Bump(level_dropped_[LevelIndex(level)]);
  }
  void RecordLevelRejected(hierarchy::ProductionLevel level) {
    Bump(level_rejected_[LevelIndex(level)]);
  }
  /// Records one escalation run over a snapshot diff.
  void RecordEscalationRun(uint64_t entities, uint64_t findings,
                           uint64_t unresolved, uint64_t cache_hits,
                           uint64_t cache_misses, uint64_t latency_us) {
    escalation_runs_.fetch_add(1, std::memory_order_relaxed);
    escalation_entities_.fetch_add(entities, std::memory_order_relaxed);
    escalation_findings_.fetch_add(findings, std::memory_order_relaxed);
    escalation_unresolved_.fetch_add(unresolved, std::memory_order_relaxed);
    escalation_cache_hits_.fetch_add(cache_hits, std::memory_order_relaxed);
    escalation_cache_misses_.fetch_add(cache_misses,
                                       std::memory_order_relaxed);
    escalation_latency_us_.fetch_add(latency_us, std::memory_order_relaxed);
  }
  void RecordCheckpointWritten() { Bump(checkpoints_written_); }
  void RecordCheckpointFailure() { Bump(checkpoint_failures_); }
  void RecordSnapshotPublished() { Bump(snapshots_published_); }
  void RecordPeerDeviation() { Bump(peer_deviations_); }
  void RecordGroupOutage() { Bump(group_outages_); }
  void RecordGroupOutageRecovery() { Bump(group_outage_recoveries_); }
  void RecordSuppressedSensorFault() { Bump(suppressed_sensor_faults_); }
  void RecordConceptShift() { Bump(concept_shifts_); }
  void RecordBaselineReset() { Bump(baseline_resets_); }
  void RecordBaselineResetDeferred() { Bump(baseline_resets_deferred_); }
  /// Records one worker drain of `batch` samples into the histogram.
  void RecordBatch(size_t batch);
  /// Raises shard `shard`'s high-water mark to `depth` if deeper.
  void UpdateShardHighWater(size_t shard, uint64_t depth);

  size_t num_shards() const { return shard_high_water_.size(); }

  StreamStatsSnapshot Snapshot() const;

  /// Overwrites every counter from a snapshot (checkpoint restore). Queue
  /// high-water marks are owned by the shard queues and reset to zero in
  /// a restored engine.
  void Restore(const StreamStatsSnapshot& snapshot);

  /// Clamps a level to a valid per-level counter index.
  static size_t LevelIndex(hierarchy::ProductionLevel level) {
    const int value = hierarchy::LevelValue(level);
    if (value < 1) return 0;
    if (value > hierarchy::kNumLevels) return hierarchy::kNumLevels - 1;
    return static_cast<size_t>(value) - 1;
  }

 private:
  static void Bump(std::atomic<uint64_t>& counter) {
    counter.fetch_add(1, std::memory_order_relaxed);
  }

  std::atomic<uint64_t> ingested_{0};
  std::atomic<uint64_t> scored_{0};
  std::atomic<uint64_t> rejected_queue_full_{0};
  std::atomic<uint64_t> rejected_timeout_{0};
  std::atomic<uint64_t> rejected_non_finite_{0};
  std::atomic<uint64_t> rejected_unknown_sensor_{0};
  std::atomic<uint64_t> rejected_level_mismatch_{0};
  std::atomic<uint64_t> rejected_out_of_order_{0};
  std::atomic<uint64_t> rejected_closed_{0};
  std::atomic<uint64_t> alarms_raised_{0};
  std::atomic<uint64_t> alarms_cleared_{0};
  std::atomic<uint64_t> quarantined_samples_{0};
  std::atomic<uint64_t> sensor_faults_{0};
  std::atomic<uint64_t> sensor_recoveries_{0};
  std::atomic<uint64_t> watchdog_stall_events_{0};
  std::atomic<uint64_t> forward_failed_{0};
  std::atomic<uint64_t> escalation_runs_{0};
  std::atomic<uint64_t> escalation_entities_{0};
  std::atomic<uint64_t> escalation_findings_{0};
  std::atomic<uint64_t> escalation_unresolved_{0};
  std::atomic<uint64_t> escalation_cache_hits_{0};
  std::atomic<uint64_t> escalation_cache_misses_{0};
  std::atomic<uint64_t> escalation_latency_us_{0};
  std::atomic<uint64_t> checkpoints_written_{0};
  std::atomic<uint64_t> checkpoint_failures_{0};
  std::atomic<uint64_t> snapshots_published_{0};
  std::atomic<uint64_t> peer_deviations_{0};
  std::atomic<uint64_t> group_outages_{0};
  std::atomic<uint64_t> group_outage_recoveries_{0};
  std::atomic<uint64_t> suppressed_sensor_faults_{0};
  std::atomic<uint64_t> concept_shifts_{0};
  std::atomic<uint64_t> baseline_resets_{0};
  std::atomic<uint64_t> baseline_resets_deferred_{0};
  std::array<std::atomic<uint64_t>, hierarchy::kNumLevels> level_dropped_{};
  std::array<std::atomic<uint64_t>, hierarchy::kNumLevels> level_rejected_{};
  std::array<std::atomic<uint64_t>, hierarchy::kNumLevels>
      level_quarantined_{};
  std::vector<std::atomic<uint64_t>> shard_high_water_;
  std::array<std::atomic<uint64_t>, kBatchBuckets> batch_histogram_{};
};

}  // namespace hod::stream

#endif  // HOD_STREAM_STATS_H_
