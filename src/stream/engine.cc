#include "stream/engine.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <utility>

#include "stream/checkpoint.h"
#include "util/thread_pool.h"

namespace hod::stream {

namespace {

size_t EffectiveShards(const StreamEngineOptions& options) {
  if (options.synchronous) return 1;  // one shard, scored inline
  return options.num_shards == 0 ? 1 : options.num_shards;
}

}  // namespace

ShardedScorerOptions StreamEngine::MakeScorerOptions(
    const StreamEngineOptions& options, StreamEngine* engine) {
  ShardedScorerOptions scorer;
  scorer.num_shards = EffectiveShards(options);
  scorer.queue_capacity = options.queue_capacity;
  scorer.max_batch = options.max_batch;
  scorer.backpressure = options.backpressure;
  scorer.block_timeout = options.block_timeout;
  // Synchronous mode never spawns producers; the hint is irrelevant there
  // but harmless (ScoreNow bypasses the queue entirely).
  scorer.producer_hint = options.producer_hint;
  scorer.monitor = options.monitor;
  scorer.forward_threshold = options.monitor.threshold;
  scorer.shift_enabled = options.shift.enabled;
  scorer.bocpd = options.shift.bocpd;
  scorer.worker_tick_hook = options.worker_tick_hook_for_test;
  if (options.executor != nullptr && !options.synchronous) {
    scorer.executor = options.executor;
    scorer.collector_notify = [engine] { engine->NotifyCollector(); };
  }
  return scorer;
}

StreamEngine::StreamEngine(StreamEngineOptions options)
    : options_(options),
      stats_(EffectiveShards(options)),
      collector_queue_(options.collector_queue_capacity,
                       BackpressurePolicy::kBlock),
      router_(EffectiveShards(options), options.out_of_order_tolerance,
              &stats_),
      health_(options.health, &stats_),
      peers_(options.peer, &stats_),
      scorer_(MakeScorerOptions(options, this), &stats_, &collector_queue_,
              &health_, &peers_),
      checkpoint_gate_enabled_(!options.checkpoint_path.empty()),
      stalled_(EffectiveShards(options)) {
  for (auto& flag : stalled_) flag.store(0, std::memory_order_relaxed);
}

StreamEngine::~StreamEngine() { (void)Stop(); }

Status StreamEngine::AddSensor(const std::string& sensor_id,
                               hierarchy::ProductionLevel level,
                               std::optional<BackpressurePolicy> policy) {
  if (state_.load() != kConfiguring) {
    return Status::FailedPrecondition("engine already started");
  }
  HOD_RETURN_IF_ERROR(router_.AddSensor(sensor_id, level, policy));
  return health_.AddSensor(sensor_id, level);
}

Status StreamEngine::AddPeerGroup(const std::string& group_id,
                                  const std::vector<std::string>& members) {
  if (state_.load() != kConfiguring) {
    return Status::FailedPrecondition("engine already started");
  }
  for (const std::string& member : members) {
    if (!router_.Frontier(member).ok()) {
      return Status::NotFound("peer group member not registered: " + member);
    }
  }
  return peers_.AddGroup(group_id, members);
}

Status StreamEngine::AddPeerGroupsFromRegistry(
    const hierarchy::SensorRegistry& registry) {
  if (state_.load() != kConfiguring) {
    return Status::FailedPrecondition("engine already started");
  }
  std::map<std::string, std::vector<std::string>> groups;
  for (const std::string& id : registry.ids()) {
    auto info_or = registry.Get(id);
    if (!info_or.ok()) continue;
    const hierarchy::SensorInfo& info = info_or.value();
    if (info.redundancy_group.empty()) continue;
    if (!router_.Frontier(id).ok()) continue;  // registry-only sensor
    groups[info.redundancy_group].push_back(id);
  }
  for (const auto& [group_id, members] : groups) {
    if (members.size() < 2) continue;
    HOD_RETURN_IF_ERROR(peers_.AddGroup(group_id, members));
  }
  return Status::Ok();
}

Status StreamEngine::AddPeerGroupsFromConfiguration(
    const hierarchy::Production& production, double tolerance) {
  if (state_.load() != kConfiguring) {
    return Status::FailedPrecondition("engine already started");
  }
  for (const auto& [group_id, members] :
       ConfigurationCohorts(production, tolerance)) {
    std::vector<std::string> registered;
    registered.reserve(members.size());
    for (const std::string& member : members) {
      if (router_.Frontier(member).ok()) registered.push_back(member);
    }
    if (registered.size() < 2) continue;  // cohort collapsed to one sensor
    HOD_RETURN_IF_ERROR(peers_.AddGroup(group_id, registered));
  }
  return Status::Ok();
}

Status StreamEngine::PopulateScorer() {
  if (scorer_populated_) return Status::Ok();
  for (size_t shard = 0; shard < scorer_.num_shards(); ++shard) {
    for (const std::string& sensor_id : router_.SensorsForShard(shard)) {
      HOD_RETURN_IF_ERROR(scorer_.AddSensor(shard, sensor_id));
      if (options_.lane_cache) {
        // Lanes are append-only and never move, so resolving each id once
        // here lets Ingest hand the scorer a pre-resolved lane and skip
        // the per-sample hash lookup.
        const size_t lane = scorer_.LaneOf(shard, sensor_id);
        if (lane != core::BatchMonitorBank::kNotFound) {
          HOD_RETURN_IF_ERROR(
              router_.SetLane(sensor_id, static_cast<uint32_t>(lane)));
        }
      }
    }
  }
  scorer_populated_ = true;
  return Status::Ok();
}

Status StreamEngine::Start() {
  if (state_.load() != kConfiguring) {
    return Status::FailedPrecondition("engine already started");
  }
  if (router_.num_sensors() == 0) {
    return Status::FailedPrecondition("no sensors registered");
  }
  HOD_RETURN_IF_ERROR(PopulateScorer());
  if (!options_.synchronous) {
    HOD_RETURN_IF_ERROR(scorer_.Start());
    if (pooled()) {
      // No threads: the collector drains on the pool's service lane when
      // notified; the watchdog runs as an executor timer.
      watchdog_last_heartbeat_.assign(scorer_.num_shards(), 0);
      if (options_.watchdog_interval.count() > 0) {
        watchdog_timer_id_ = options_.executor->ScheduleEvery(
            options_.watchdog_interval, options_.watchdog_interval,
            [this] { WatchdogTick(); });
      }
    } else {
      collector_ = std::jthread([this] { CollectorLoop(); });
      if (options_.watchdog_interval.count() > 0) {
        watchdog_ = std::jthread(
            [this](std::stop_token stop) { WatchdogLoop(stop); });
      }
    }
  }
  if (checkpoint_gate_enabled_ && options_.checkpoint_interval.count() > 0) {
    // First write fires after `checkpoint_phase` (stagger offset), then
    // every interval.
    if (pooled()) {
      const auto initial = options_.checkpoint_phase.count() > 0
                               ? options_.checkpoint_phase
                               : options_.checkpoint_interval;
      checkpoint_timer_id_ = options_.executor->ScheduleEvery(
          initial, options_.checkpoint_interval,
          [this] { (void)CheckpointToFile(options_.checkpoint_path); });
    } else {
      checkpoint_timer_ = std::jthread(
          [this](std::stop_token stop) { CheckpointLoop(stop); });
    }
  }
  state_.store(kRunning);
  return Status::Ok();
}

StatusOr<IngestAck> StreamEngine::Ingest(const SensorSample& sample) {
  if (state_.load() != kRunning) {
    return Status::FailedPrecondition("engine not running");
  }
  // Live checkpointing: hold the gate shared for the duration of the call
  // so CheckpointToFile (exclusive) observes a moment with no sample in
  // flight between the router and a shard queue. Engines that never
  // checkpoint skip the lock entirely.
  std::shared_lock<std::shared_mutex> gate;
  if (checkpoint_gate_enabled_) {
    gate = std::shared_lock<std::shared_mutex>(ingest_gate_);
  }
  auto route_or = router_.Route(sample);
  if (!route_or.ok()) {
    // Typed rejections are fault evidence: a sensor spewing NaNs or
    // regressed timestamps never reaches its scoring thread, so the FSM
    // must be driven from the ingest side.
    if (!std::isfinite(sample.value) || !std::isfinite(sample.ts)) {
      RecordIngestFault(sample, HealthSignal::kNonFinite);
    } else if (route_or.status().code() == StatusCode::kOutOfRange) {
      RecordIngestFault(sample, HealthSignal::kOutOfOrder);
    }
    if (options_.synchronous) DrainCollectorQueueSync();
    return route_or.status();
  }
  const RouteTarget target = route_or.value();
  IngestAck ack;
  if (options_.synchronous) {
    HOD_ASSIGN_OR_RETURN(
        InlineScore result,
        scorer_.ScoreNow(target.shard, sample,
                         options_.lane_cache ? target.lane : kNoLane));
    ack.enqueued = true;
    if (result.scored) ack.update = result.update;
    ++ingested_since_sweep_;
    if (options_.health_sweep_every > 0 &&
        ingested_since_sweep_ >= options_.health_sweep_every) {
      ingested_since_sweep_ = 0;
      for (const HealthTransition& transition : health_.SweepStale()) {
        PushHealthEvent(transition);
      }
    }
    // Drain whatever the scorer forwarded, inline.
    DrainCollectorQueueSync();
    return ack;
  }
  SensorSample routed = sample;
  if (options_.lane_cache) routed.lane = target.lane;
  HOD_RETURN_IF_ERROR(
      scorer_.Submit(target.shard, std::move(routed),
                     target.policy.value_or(options_.backpressure)));
  ack.enqueued = true;
  return ack;
}

Status StreamEngine::Flush() {
  const int state = state_.load();
  if (state == kStopped) return Status::Ok();
  if (state != kRunning) {
    return Status::FailedPrecondition("engine not running");
  }
  if (options_.synchronous) {
    PublishSnapshot();
    return Status::Ok();
  }
  HOD_RETURN_IF_ERROR(scorer_.Flush());
  std::unique_lock<std::mutex> lock(collector_mu_);
  collector_cv_.wait(lock, [&] {
    // Both terms only grow; health events (ingest faults, staleness
    // sweeps) are counted before their push, so the target is never
    // behind the queue's content.
    return collected_.load(std::memory_order_acquire) >=
           scorer_.forwarded() +
               health_events_pushed_.load(std::memory_order_acquire);
  });
  return Status::Ok();
}

Status StreamEngine::Stop() {
  const int state = state_.exchange(kStopped);
  if (state == kStopped) return Status::Ok();
  // Timer first, while the pipeline is still alive: an in-flight periodic
  // checkpoint holds the ingest gate and waits on the collector, so it
  // must complete before workers are torn down. Cancel has join
  // semantics, so the executor timers are equally settled on return (a
  // callback that started after the state_ exchange above sees kStopped
  // and returns without touching the pipeline).
  if (pooled()) {
    if (checkpoint_timer_id_ != 0) {
      options_.executor->Cancel(checkpoint_timer_id_);
      checkpoint_timer_id_ = 0;
    }
    if (watchdog_timer_id_ != 0) {
      options_.executor->Cancel(watchdog_timer_id_);
      watchdog_timer_id_ = 0;
    }
  }
  if (checkpoint_timer_.joinable()) {
    checkpoint_timer_.request_stop();
    checkpoint_timer_.join();
  }
  if (watchdog_.joinable()) {
    watchdog_.request_stop();
    watchdog_.join();
  }
  if (state == kConfiguring || options_.synchronous) {
    if (state == kRunning) {
      DrainCollectorQueueSync();
      FlushPendingFaults();
      IngestPendingFindings();
      PublishSnapshot();
    }
    if (pooled()) pooled_stopped_.store(true, std::memory_order_release);
    return Status::Ok();
  }
  // Workers first: joining (or quiescing, in pooled mode) guarantees every
  // accepted sample has been scored and every interesting one forwarded.
  // Then the collector drains the closed queue, publishes the final
  // snapshot, and exits.
  scorer_.Stop();
  collector_queue_.Close();
  if (pooled()) {
    // Arm the collector once for the tail (Close leaves events poppable),
    // then wait for its task machinery to retire. A racing PushHealthEvent
    // either lands before it is drained (its own notify re-arms the task)
    // or fails on the closed queue and is undone.
    NotifyCollector();
    // Wait under collector_mu_ so the last task's retirement (which also
    // happens under the lock) is ordered before this predicate observing
    // quiescence — otherwise the engine could be destroyed while the task
    // still notifies on collector_cv_. Poll with a short timeout: the
    // failed-SubmitService undo path in NotifyCollector does not notify.
    {
      std::unique_lock<std::mutex> lock(collector_mu_);
      const auto quiesced = [&] {
        return collector_tasks_in_flight_.load(std::memory_order_acquire) ==
                   0 &&
               collector_task_state_.load(std::memory_order_acquire) ==
                   kCollectorIdle &&
               collector_queue_.size() == 0;
      };
      while (!quiesced()) {
        collector_cv_.wait_for(lock, std::chrono::milliseconds(1));
      }
    }
    // Safe: the acquire loads above pair with the task's release exits, so
    // every collector-private write is visible here.
    FlushPendingFaults();
    IngestPendingFindings();
    PublishSnapshot();
    pooled_stopped_.store(true, std::memory_order_release);
    return Status::Ok();
  }
  if (collector_.joinable()) collector_.join();
  return Status::Ok();
}

Status StreamEngine::Checkpoint(std::ostream& os) const {
  const int state = state_.load();
  if (state == kConfiguring) {
    return Status::FailedPrecondition("engine never started");
  }
  if (state == kRunning && !options_.synchronous) {
    return Status::FailedPrecondition(
        "checkpoint requires a synchronous engine or a stopped one");
  }
  EngineCheckpoint checkpoint;
  HOD_RETURN_IF_ERROR(FillCheckpoint(checkpoint));
  return WriteEngineCheckpoint(checkpoint, os);
}

Status StreamEngine::CheckpointToFile(const std::string& path) {
  const int state = state_.load();
  if (state == kConfiguring) {
    return Status::FailedPrecondition("engine never started");
  }
  EngineCheckpoint checkpoint;
  if (state == kRunning && !options_.synchronous) {
    if (!checkpoint_gate_enabled_) {
      return Status::FailedPrecondition(
          "live checkpointing requires options.checkpoint_path (the ingest "
          "gate is armed at construction)");
    }
    // Quiesce: block new producers, drain everything already accepted
    // through the scorer and the collector, then serialize. The collector
    // keeps running — its release fetch_add on collected_ is the
    // happens-before edge that makes reading its private state safe here.
    std::unique_lock<std::shared_mutex> gate(ingest_gate_);
    if (state_.load() != kRunning) {
      return Status::FailedPrecondition("engine is stopping");
    }
    HOD_RETURN_IF_ERROR(scorer_.Flush());
    {
      std::unique_lock<std::mutex> lock(collector_mu_);
      collector_cv_.wait(lock, [&] {
        return collected_.load(std::memory_order_acquire) >=
               scorer_.forwarded() +
                   health_events_pushed_.load(std::memory_order_acquire);
      });
    }
    HOD_RETURN_IF_ERROR(FillCheckpoint(checkpoint));
  } else if (state == kRunning) {
    // Synchronous engine: the caller's thread is the only mutator, but the
    // gate still serializes against a background timer (if armed).
    std::unique_lock<std::shared_mutex> gate(ingest_gate_);
    HOD_RETURN_IF_ERROR(FillCheckpoint(checkpoint));
  } else {
    if (collector_.joinable() ||
        (pooled() && !pooled_stopped_.load(std::memory_order_acquire))) {
      // Stop() raced us and has not finished draining yet.
      return Status::FailedPrecondition("engine is stopping");
    }
    HOD_RETURN_IF_ERROR(FillCheckpoint(checkpoint));
  }

  // Crash-safe publication: write the image beside the target and rename
  // over it, so readers only ever see a complete checkpoint.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) {
      stats_.RecordCheckpointFailure();
      return Status::InvalidArgument("cannot open checkpoint file: " + tmp);
    }
    Status status = WriteEngineCheckpoint(checkpoint, os);
    if (!status.ok() || !os.good()) {
      stats_.RecordCheckpointFailure();
      return status.ok() ? Status::InvalidArgument("checkpoint write failed: " +
                                                   tmp)
                         : status;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    stats_.RecordCheckpointFailure();
    return Status::InvalidArgument("cannot rename checkpoint into place: " +
                                   path);
  }
  stats_.RecordCheckpointWritten();
  return Status::Ok();
}

void StreamEngine::CheckpointLoop(const std::stop_token& stop) {
  std::mutex mu;
  std::condition_variable_any cv;
  std::unique_lock<std::mutex> lock(mu);
  // Stagger support: the first write fires after `checkpoint_phase` (when
  // set) instead of a full interval, same contract as the executor timer.
  const auto initial = options_.checkpoint_phase.count() > 0
                           ? options_.checkpoint_phase
                           : options_.checkpoint_interval;
  cv.wait_for(lock, stop, initial, [] { return false; });
  while (!stop.stop_requested()) {
    // Failures are already counted in stats; the timer keeps trying.
    (void)CheckpointToFile(options_.checkpoint_path);
    cv.wait_for(lock, stop, options_.checkpoint_interval, [] { return false; });
  }
}

void StreamEngine::ReportEscalation(
    const EscalationRunStats& run,
    const std::vector<core::OutlierFinding>& findings) {
  if (!findings.empty()) {
    std::lock_guard<std::mutex> lock(alerts_mu_);
    alerts_.IngestBatch(findings);
  }
  stats_.RecordEscalationRun(run.entities, run.findings, run.unresolved,
                             run.cache_hits, run.cache_misses, run.latency_us);
}

Status StreamEngine::FillCheckpoint(EngineCheckpoint& checkpoint) const {
  checkpoint.monitor = options_.monitor;
  checkpoint.out_of_order_tolerance = options_.out_of_order_tolerance;
  checkpoint.shift_enabled = options_.shift.enabled;
  checkpoint.bocpd = options_.shift.bocpd;

  std::map<std::string, SensorHealthStatus> health_by_id;
  for (SensorHealthStatus& status : health_.SaveState()) {
    health_by_id[status.sensor_id] = std::move(status);
  }
  for (const RegisteredSensor& registered : router_.Sensors()) {
    EngineCheckpoint::SensorState sensor;
    sensor.sensor_id = registered.sensor_id;
    sensor.level = registered.level;
    sensor.has_policy = registered.policy.has_value();
    sensor.policy = registered.policy.value_or(BackpressurePolicy::kBlock);
    sensor.frontier = registered.frontier;
    auto health_it = health_by_id.find(registered.sensor_id);
    if (health_it != health_by_id.end()) {
      sensor.health = health_it->second;
    } else {
      sensor.health.sensor_id = registered.sensor_id;
      sensor.health.level = registered.level;
    }
    HOD_ASSIGN_OR_RETURN(sensor.monitor,
                         scorer_.SaveMonitorQuiesced(registered.sensor_id));
    if (options_.shift.enabled) {
      HOD_ASSIGN_OR_RETURN(sensor.bocpd,
                           scorer_.SaveBocpdQuiesced(registered.sensor_id));
      sensor.has_bocpd = true;
    }
    checkpoint.sensors.push_back(std::move(sensor));
  }

  checkpoint.levels = levels_;
  for (const auto& [id, alarm] : active_alarms_) {
    checkpoint.active_alarms.push_back(alarm);
  }
  for (const auto& [id, sensor] : quarantined_) {
    checkpoint.quarantined.push_back(sensor);
  }
  checkpoint.events_seen = events_seen_;
  checkpoint.events_at_last_snapshot = events_at_last_snapshot_;
  checkpoint.next_sequence = next_sequence_;

  checkpoint.peer_groups = peers_.SaveState();
  checkpoint.pending_faults.assign(pending_faults_.begin(),
                                   pending_faults_.end());
  checkpoint.outage_active = outage_.has_value();
  if (outage_.has_value()) {
    checkpoint.outage_since = outage_->since;
    checkpoint.outage_members.assign(outage_->members.begin(),
                                     outage_->members.end());
  }
  checkpoint.collector_frontier = collector_frontier_;
  checkpoint.recent_shifts.assign(recent_shifts_.begin(),
                                  recent_shifts_.end());
  checkpoint.concept_shifts_total = concept_shifts_total_;

  {
    std::lock_guard<std::mutex> lock(alerts_mu_);
    checkpoint.findings = alerts_.Findings();
  }
  checkpoint.stats = stats();
  return Status::Ok();
}

StatusOr<std::unique_ptr<StreamEngine>> StreamEngine::Restore(
    std::istream& is, StreamEngineOptions options) {
  HOD_ASSIGN_OR_RETURN(EngineCheckpoint checkpoint, ReadEngineCheckpoint(is));
  auto engine = std::make_unique<StreamEngine>(std::move(options));
  HOD_RETURN_IF_ERROR(engine->ApplyCheckpoint(checkpoint));
  HOD_RETURN_IF_ERROR(engine->Start());
  return engine;
}

Status StreamEngine::ApplyCheckpoint(const EngineCheckpoint& checkpoint) {
  const core::OnlineMonitorOptions& ours = options_.monitor;
  const core::OnlineMonitorOptions& theirs = checkpoint.monitor;
  if (ours.warmup != theirs.warmup || ours.ar_order != theirs.ar_order ||
      ours.threshold != theirs.threshold ||
      ours.raise_after != theirs.raise_after ||
      ours.clear_after != theirs.clear_after ||
      ours.sigma_scale != theirs.sigma_scale ||
      ours.scale_forgetting != theirs.scale_forgetting ||
      options_.out_of_order_tolerance != checkpoint.out_of_order_tolerance) {
    return Status::InvalidArgument(
        "checkpoint was taken under different scoring options; a restored "
        "engine could not resume byte-identically");
  }
  if (options_.shift.enabled != checkpoint.shift_enabled) {
    return Status::InvalidArgument(
        "checkpoint concept-shift layer state does not match the restore "
        "options (enabled on one side only)");
  }
  if (options_.shift.enabled) {
    const core::BocpdOptions& mine = options_.shift.bocpd;
    const core::BocpdOptions& its = checkpoint.bocpd;
    if (mine.hazard_lambda != its.hazard_lambda ||
        mine.max_run_length != its.max_run_length ||
        mine.warmup != its.warmup ||
        mine.min_run_for_shift != its.min_run_for_shift ||
        mine.shift_posterior != its.shift_posterior ||
        mine.min_magnitude_sigmas != its.min_magnitude_sigmas ||
        mine.cooldown != its.cooldown || mine.prior_kappa != its.prior_kappa ||
        mine.prior_alpha != its.prior_alpha ||
        mine.prior_beta != its.prior_beta ||
        mine.prior_mean != its.prior_mean) {
      return Status::InvalidArgument(
          "checkpoint was taken under different BOCPD options; a restored "
          "engine would not detect shifts identically");
    }
  }
  for (const EngineCheckpoint::SensorState& sensor : checkpoint.sensors) {
    std::optional<BackpressurePolicy> policy;
    if (sensor.has_policy) policy = sensor.policy;
    HOD_RETURN_IF_ERROR(AddSensor(sensor.sensor_id, sensor.level, policy));
  }
  HOD_RETURN_IF_ERROR(PopulateScorer());
  std::vector<SensorHealthStatus> health_states;
  health_states.reserve(checkpoint.sensors.size());
  for (const EngineCheckpoint::SensorState& sensor : checkpoint.sensors) {
    HOD_RETURN_IF_ERROR(
        scorer_.RestoreMonitor(sensor.sensor_id, sensor.monitor));
    if (sensor.has_bocpd) {
      HOD_RETURN_IF_ERROR(
          scorer_.RestoreBocpd(sensor.sensor_id, sensor.bocpd));
    }
    HOD_RETURN_IF_ERROR(router_.SetFrontier(sensor.sensor_id,
                                            sensor.frontier));
    health_states.push_back(sensor.health);
  }
  HOD_RETURN_IF_ERROR(health_.RestoreState(health_states));

  levels_ = checkpoint.levels;
  active_alarms_.clear();
  for (const ActiveAlarm& alarm : checkpoint.active_alarms) {
    active_alarms_[alarm.sensor_id] = alarm;
  }
  quarantined_.clear();
  for (const QuarantinedSensor& sensor : checkpoint.quarantined) {
    quarantined_[sensor.sensor_id] = sensor;
  }
  events_seen_ = checkpoint.events_seen;
  events_at_last_snapshot_ = checkpoint.events_at_last_snapshot;
  next_sequence_ = checkpoint.next_sequence;

  // Peer-group membership travels in the checkpoint (it is configured via
  // AddPeerGroup, not options), so re-register before restoring state.
  for (const PeerGroupState& group : checkpoint.peer_groups) {
    std::vector<std::string> members;
    members.reserve(group.members.size());
    for (const PeerMemberState& member : group.members) {
      members.push_back(member.sensor_id);
    }
    HOD_RETURN_IF_ERROR(peers_.AddGroup(group.group_id, members));
  }
  HOD_RETURN_IF_ERROR(peers_.RestoreState(checkpoint.peer_groups));
  pending_faults_.assign(checkpoint.pending_faults.begin(),
                         checkpoint.pending_faults.end());
  outage_.reset();
  if (checkpoint.outage_active) {
    ActiveOutage outage;
    outage.since = checkpoint.outage_since;
    outage.members.insert(checkpoint.outage_members.begin(),
                          checkpoint.outage_members.end());
    outage_ = std::move(outage);
  }
  collector_frontier_ = checkpoint.collector_frontier;
  recent_shifts_.assign(checkpoint.recent_shifts.begin(),
                        checkpoint.recent_shifts.end());
  concept_shifts_total_ = checkpoint.concept_shifts_total;

  {
    std::lock_guard<std::mutex> lock(alerts_mu_);
    alerts_.RestoreFindings(checkpoint.findings);
  }
  stats_.Restore(checkpoint.stats);
  // Live eviction counts restart at zero with the fresh shard queues;
  // carry the historical count separately so stats() stays monotone.
  restored_dropped_ = checkpoint.stats.dropped;
  return Status::Ok();
}

StreamStatsSnapshot StreamEngine::stats() const {
  StreamStatsSnapshot snapshot = stats_.Snapshot();
  scorer_.FillQueueStats(snapshot);
  snapshot.dropped += restored_dropped_;
  snapshot.shard_stalled.clear();
  snapshot.shard_stalled.reserve(stalled_.size());
  for (const auto& flag : stalled_) {
    snapshot.shard_stalled.push_back(flag.load(std::memory_order_relaxed));
  }
  return snapshot;
}

EngineSnapshot StreamEngine::Snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return published_;
}

std::vector<core::AlertEpisode> StreamEngine::Episodes() const {
  std::lock_guard<std::mutex> lock(alerts_mu_);
  return alerts_.Episodes();
}

std::vector<core::AlertEpisode> StreamEngine::CalibrationQueue() const {
  std::lock_guard<std::mutex> lock(alerts_mu_);
  return alerts_.CalibrationQueue();
}

std::vector<core::OutlierFinding> StreamEngine::Findings() const {
  std::lock_guard<std::mutex> lock(alerts_mu_);
  return alerts_.Findings();
}

StatusOr<SensorProbe> StreamEngine::Probe(const std::string& sensor_id) const {
  return scorer_.Probe(sensor_id);
}

void StreamEngine::CollectorLoop() {
  std::vector<ScoredSample> batch;
  batch.reserve(options_.max_batch);
  while (collector_queue_.PopBatch(batch, options_.max_batch)) {
    for (const ScoredSample& scored : batch) ConsumeScored(scored);
    IngestPendingFindings();
    // A drained queue is a quiescent point — publish so Flush() callers
    // observe a current snapshot. Publish BEFORE the release fetch_add:
    // that store is the edge a quiesced checkpointer (or Flush caller)
    // acquires, so every collector-private write — including the snapshot
    // bookkeeping — must be sequenced before it.
    if (collector_queue_.size() == 0) PublishSnapshot();
    collected_.fetch_add(batch.size(), std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(collector_mu_);
    }
    collector_cv_.notify_all();
    batch.clear();
  }
  FlushPendingFaults();
  IngestPendingFindings();
  PublishSnapshot();
}

void StreamEngine::WatchdogLoop(const std::stop_token& stop) {
  watchdog_last_heartbeat_.assign(scorer_.num_shards(), 0);
  std::mutex mu;
  std::condition_variable_any cv;
  std::unique_lock<std::mutex> lock(mu);
  while (!stop.stop_requested()) {
    cv.wait_for(lock, stop, options_.watchdog_interval, [] { return false; });
    if (stop.stop_requested()) break;
    WatchdogTick();
  }
}

void StreamEngine::WatchdogTick() {
  // Executor-timer mode can fire between the state_ exchange in Stop()
  // and the timer's cancellation; the pipeline is being torn down then.
  if (state_.load() != kRunning) return;
  for (size_t i = 0; i < watchdog_last_heartbeat_.size(); ++i) {
    const uint64_t beat = scorer_.ShardHeartbeat(i);
    const size_t depth = scorer_.ShardQueueDepth(i);
    if (depth > 0 && beat == watchdog_last_heartbeat_[i]) {
      // Samples are waiting but the worker made no progress over a full
      // interval: flag it (graceful degradation — the engine keeps
      // serving the healthy shards; the flag clears if the worker
      // resumes).
      if (stalled_[i].exchange(1, std::memory_order_relaxed) == 0) {
        stats_.RecordWatchdogStall();
      }
    } else {
      stalled_[i].store(0, std::memory_order_relaxed);
    }
    watchdog_last_heartbeat_[i] = beat;
  }
  // The staleness sweep pushes collector events, which would break the
  // checkpointer's "drained means drained" invariant — skip the sweep
  // while a checkpoint holds the gate (it runs again next interval).
  std::shared_lock<std::shared_mutex> gate(ingest_gate_, std::try_to_lock);
  if (!checkpoint_gate_enabled_ || gate.owns_lock()) {
    for (const HealthTransition& transition : health_.SweepStale()) {
      PushHealthEvent(transition);
    }
  }
}

void StreamEngine::NotifyCollector() {
  const int prev =
      collector_task_state_.exchange(kCollectorArmed, std::memory_order_acq_rel);
  if (prev != kCollectorIdle) return;  // a task is pending or will loop
  collector_tasks_in_flight_.fetch_add(1, std::memory_order_acq_rel);
  // Service lane: collector drains must make progress even when every
  // worker-lane thread is blocked pushing into a full collector queue —
  // that is the deadlock this lane exists to break.
  if (!options_.executor->SubmitService([this] { CollectorDrainTask(); })) {
    collector_task_state_.store(kCollectorIdle, std::memory_order_release);
    collector_tasks_in_flight_.fetch_sub(1, std::memory_order_release);
  }
}

void StreamEngine::CollectorDrainTask() {
  std::vector<ScoredSample> batch;
  batch.reserve(options_.max_batch);
  for (;;) {
    collector_task_state_.store(kCollectorRunning, std::memory_order_release);
    for (;;) {
      batch.clear();
      const size_t n = collector_queue_.TryPopBatch(batch, options_.max_batch);
      if (n == 0) break;
      for (const ScoredSample& scored : batch) ConsumeScored(scored);
      IngestPendingFindings();
      // Same ordering contract as CollectorLoop: publish BEFORE the
      // release fetch_add on collected_ — that store is the edge a
      // quiesced checkpointer or Flush caller acquires.
      if (collector_queue_.size() == 0) PublishSnapshot();
      collected_.fetch_add(n, std::memory_order_release);
      {
        std::lock_guard<std::mutex> lock(collector_mu_);
      }
      collector_cv_.notify_all();
    }
    int expected = kCollectorRunning;
    if (collector_task_state_.compare_exchange_strong(
            expected, kCollectorIdle, std::memory_order_acq_rel)) {
      break;  // no notify raced the empty pop; task retires
    }
    // Re-armed between the empty pop and the CAS: drain again.
  }
  // Retire under the lock: Stop() re-checks quiescence while holding
  // collector_mu_, so it cannot observe zero tasks in flight (and destroy
  // the engine) until this task has released the mutex.
  {
    std::lock_guard<std::mutex> lock(collector_mu_);
    collector_tasks_in_flight_.fetch_sub(1, std::memory_order_release);
    collector_cv_.notify_all();
  }
}

void StreamEngine::DrainCollectorQueueSync() {
  std::vector<ScoredSample> forwarded;
  while (collector_queue_.TryPopBatch(forwarded, options_.max_batch) > 0) {
    for (const ScoredSample& scored : forwarded) ConsumeScored(scored);
    forwarded.clear();
  }
  IngestPendingFindings();
}

void StreamEngine::IngestPendingFindings() {
  if (pending_findings_.empty()) return;
  std::lock_guard<std::mutex> lock(alerts_mu_);
  alerts_.IngestBatch(pending_findings_);
  pending_findings_.clear();
}

void StreamEngine::RecordIngestFault(const SensorSample& sample,
                                     HealthSignal signal) {
  std::optional<HealthTransition> transition =
      health_.RecordRejection(sample.sensor_id, signal, sample.ts);
  if (transition.has_value()) PushHealthEvent(*transition);
}

void StreamEngine::PushHealthEvent(const HealthTransition& transition) {
  const bool quarantine =
      transition.to == SensorHealthState::kQuarantined;
  const bool recovery = transition.to == SensorHealthState::kHealthy &&
                        transition.from == SensorHealthState::kRecovering;
  if (!quarantine && !recovery) return;
  ScoredSample event;
  event.kind = quarantine ? StreamEventKind::kSensorFault
                          : StreamEventKind::kSensorRecovered;
  event.sensor_id = transition.sensor_id;
  event.level = transition.level;
  event.ts = transition.ts;
  event.fault_reason = transition.reason;
  // Count before pushing, so Flush's target is never behind the queue.
  health_events_pushed_.fetch_add(1, std::memory_order_release);
  Status status = collector_queue_.Push(std::move(event));
  if (status.ok()) {
    if (pooled()) NotifyCollector();
    return;
  }
  // Collector already closed (shutdown race). Undo the pre-count —
  // otherwise Flush waits forever for an event that never arrives — and
  // surface the loss instead of silently swallowing it.
  health_events_pushed_.fetch_sub(1, std::memory_order_release);
  stats_.RecordForwardFailed();
}

void StreamEngine::ConsumeScored(const ScoredSample& scored) {
  ++events_seen_;
  // The frontier is both the outage-expiry clock and the published
  // snapshot's event-time stamp, so it advances unconditionally.
  collector_frontier_ = std::max(collector_frontier_, scored.ts);
  if (options_.peer.outage_min_sensors > 0) {
    // Pending onsets age against the event clock; once the window has
    // passed without the cluster forming, they were uncorrelated faults.
    if (!outage_.has_value()) ExpirePendingFaults(collector_frontier_);
  }
  switch (scored.kind) {
    case StreamEventKind::kSensorFault:
      ConsumeSensorFault(scored);
      break;
    case StreamEventKind::kSensorRecovered:
      ConsumeSensorRecovery(scored);
      break;
    case StreamEventKind::kPeerDeviation:
      ConsumePeerDeviation(scored);
      break;
    case StreamEventKind::kConceptShift:
      ConsumeConceptShift(scored);
      break;
    case StreamEventKind::kScore: {
      const size_t level_index = StreamStats::LevelIndex(scored.level);
      LevelOutlierState& level = levels_[level_index];
      const core::MonitorUpdate& update = scored.update;
      const bool outlier = update.score > options_.monitor.threshold;

      if (outlier) {
        ++level.outlier_samples;
        level.peak_score = std::max(level.peak_score, update.score);
        level.last_outlier_ts = scored.ts;
      }
      if (update.alarm_raised) {
        ++level.alarms_raised;
        ++level.active_alarms;
        ActiveAlarm& alarm = active_alarms_[scored.sensor_id];
        alarm.sensor_id = scored.sensor_id;
        alarm.level = scored.level;
        alarm.since = scored.ts;
        alarm.peak_score = update.score;
      } else if (update.alarm) {
        auto it = active_alarms_.find(scored.sensor_id);
        if (it != active_alarms_.end()) {
          it->second.peak_score =
              std::max(it->second.peak_score, update.score);
        }
      }
      if (update.alarm_cleared) {
        ++level.alarms_cleared;
        if (level.active_alarms > 0) --level.active_alarms;
        active_alarms_.erase(scored.sensor_id);
      }

      if (outlier) {
        core::OutlierFinding finding;
        finding.origin.level = scored.level;
        finding.origin.entity = scored.sensor_id;
        finding.origin.time = scored.ts;
        finding.origin.score = update.score;
        finding.global_score = 1;
        finding.outlierness = update.score;
        finding.support = 0.0;
        finding.corresponding_sensors = 0;
        finding.confirmed_levels = {scored.level};
        pending_findings_.push_back(std::move(finding));
      }
      break;
    }
  }

  if (options_.snapshot_every > 0 &&
      events_seen_ - events_at_last_snapshot_ >= options_.snapshot_every) {
    PublishSnapshot();
  }
}

void StreamEngine::ConsumeSensorFault(const ScoredSample& event) {
  const size_t level_index = StreamStats::LevelIndex(event.level);
  LevelOutlierState& level = levels_[level_index];
  ++level.sensor_faults;
  auto [it, inserted] = quarantined_.try_emplace(event.sensor_id);
  if (inserted) ++level.quarantined_sensors;
  it->second.sensor_id = event.sensor_id;
  it->second.level = event.level;
  it->second.since = event.ts;
  it->second.reason = event.fault_reason;

  // A quarantined sensor's open alarm is not a process alarm: retract it
  // from the level aggregates instead of letting a broken channel hold a
  // stop-the-line signal.
  auto alarm_it = active_alarms_.find(event.sensor_id);
  if (alarm_it != active_alarms_.end()) {
    if (level.active_alarms > 0) --level.active_alarms;
    active_alarms_.erase(alarm_it);
  }

  const QuarantinedSensor onset = it->second;
  if (options_.peer.outage_min_sensors == 0) {
    EmitSensorFaultFinding(onset);
    return;
  }
  if (event.fault_reason != HealthSignal::kStale) {
    // Only staleness onsets correlate: a NaN burst or a timestamp fault is
    // sensor-local evidence, not an infrastructure signature.
    EmitSensorFaultFinding(onset);
    return;
  }
  if (outage_.has_value()) {
    // The line is already down; this channel joined the incident instead
    // of adding one more row to the storm.
    outage_->members.insert(event.sensor_id);
    stats_.RecordSuppressedSensorFault();
    return;
  }
  pending_faults_.push_back(onset);
  std::set<std::string> distinct;
  for (const QuarantinedSensor& pending : pending_faults_) {
    distinct.insert(pending.sensor_id);
  }
  if (distinct.size() >= options_.peer.outage_min_sensors) {
    DeclareGroupOutage(event.ts);
  }
}

void StreamEngine::EmitSensorFaultFinding(const QuarantinedSensor& onset) {
  core::OutlierFinding finding;
  finding.kind = core::FindingKind::kSensorFault;
  finding.origin.level = onset.level;
  finding.origin.entity = onset.sensor_id;
  finding.origin.time = onset.since;
  finding.origin.score = 1.0;
  finding.global_score = 1;
  finding.outlierness = 1.0;
  finding.support = 0.0;
  finding.corresponding_sensors = 0;
  finding.measurement_error_warning = true;
  finding.confirmed_levels = {onset.level};
  finding.warnings = {"sensor fault: " +
                      std::string(HealthSignalName(onset.reason))};
  pending_findings_.push_back(std::move(finding));
}

void StreamEngine::DeclareGroupOutage(ts::TimePoint ts) {
  ActiveOutage outage;
  outage.since = ts;
  for (const QuarantinedSensor& pending : pending_faults_) {
    outage.members.insert(pending.sensor_id);
    stats_.RecordSuppressedSensorFault();
  }
  pending_faults_.clear();
  const size_t affected = outage.members.size();
  outage_ = std::move(outage);
  stats_.RecordGroupOutage();

  core::OutlierFinding finding;
  finding.kind = core::FindingKind::kGroupOutage;
  finding.origin.level = hierarchy::ProductionLevel::kProduction;
  finding.origin.entity = options_.peer.outage_entity;
  finding.origin.time = ts;
  finding.origin.score = 1.0;
  finding.global_score = 1;
  finding.outlierness = 1.0;
  finding.support = 0.0;
  finding.corresponding_sensors = 0;
  finding.confirmed_levels = {hierarchy::ProductionLevel::kProduction};
  finding.warnings = {"group outage: " + std::to_string(affected) +
                      " sensors went stale within " +
                      std::to_string(options_.peer.outage_window) + "s"};
  pending_findings_.push_back(std::move(finding));
}

void StreamEngine::ExpirePendingFaults(ts::TimePoint now) {
  while (!pending_faults_.empty() &&
         now - pending_faults_.front().since > options_.peer.outage_window) {
    EmitSensorFaultFinding(pending_faults_.front());
    pending_faults_.pop_front();
  }
}

void StreamEngine::FlushPendingFaults() {
  for (const QuarantinedSensor& pending : pending_faults_) {
    EmitSensorFaultFinding(pending);
  }
  pending_faults_.clear();
}

void StreamEngine::ConsumePeerDeviation(const ScoredSample& event) {
  const double strength = std::max(event.peer_value_z, event.peer_slope_z);
  core::OutlierFinding finding;
  finding.kind = core::FindingKind::kPeerDrift;
  finding.origin.level = event.level;
  finding.origin.entity = event.sensor_id;
  finding.origin.time = event.ts;
  finding.origin.score = strength;
  finding.global_score = 1;
  finding.outlierness = std::min(1.0, strength / 10.0);
  finding.support = 0.0;
  finding.corresponding_sensors = 0;
  finding.measurement_error_warning = true;
  finding.confirmed_levels = {event.level};
  finding.warnings = {"peer drift: group " + event.peer_group +
                      " value_z=" + std::to_string(event.peer_value_z) +
                      " slope_z=" + std::to_string(event.peer_slope_z)};
  pending_findings_.push_back(std::move(finding));
}

void StreamEngine::ConsumeConceptShift(const ScoredSample& event) {
  const size_t level_index = StreamStats::LevelIndex(event.level);
  LevelOutlierState& level = levels_[level_index];

  // The alarm (if any) was raised by the old baseline against the new
  // regime — a stale verdict, not a process alarm. Retract it; the
  // re-baselined monitor re-raises only if the process is genuinely off
  // its NEW setpoint.
  auto alarm_it = active_alarms_.find(event.sensor_id);
  if (alarm_it != active_alarms_.end()) {
    if (level.active_alarms > 0) --level.active_alarms;
    active_alarms_.erase(alarm_it);
  }

  ConceptShiftEvent shift;
  shift.sensor_id = event.sensor_id;
  shift.level = event.level;
  shift.ts = event.ts;
  shift.before_mean = event.shift_before;
  shift.after_mean = event.shift_after;
  shift.magnitude_sigmas = event.shift_magnitude;
  shift.evidence = event.shift_evidence;
  shift.run_length = event.shift_run_length;
  recent_shifts_.push_back(shift);
  constexpr size_t kMaxRecentShifts = 64;
  while (recent_shifts_.size() > kMaxRecentShifts) recent_shifts_.pop_front();
  ++concept_shifts_total_;

  // Exactly one process-board row per confirmed shift: the level moved,
  // the channel was re-baselined — instead of an alarm storm on the new
  // regime.
  core::OutlierFinding finding;
  finding.kind = core::FindingKind::kConceptShift;
  finding.origin.level = event.level;
  finding.origin.entity = event.sensor_id;
  finding.origin.time = event.ts;
  finding.origin.score = event.shift_magnitude;
  finding.global_score = 1;
  finding.outlierness = std::min(1.0, event.shift_magnitude / 10.0);
  finding.support = event.shift_evidence;
  finding.corresponding_sensors = 0;
  finding.measurement_error_warning = false;
  finding.confirmed_levels = {event.level};
  finding.warnings = {
      "concept shift: level " + std::to_string(event.shift_before) + " -> " +
      std::to_string(event.shift_after) +
      " (magnitude=" + std::to_string(event.shift_magnitude) +
      " sigmas, evidence=" + std::to_string(event.shift_evidence) +
      ", run=" + std::to_string(event.shift_run_length) + ")"};
  pending_findings_.push_back(std::move(finding));
}

void StreamEngine::ConsumeSensorRecovery(const ScoredSample& event) {
  auto it = quarantined_.find(event.sensor_id);
  if (it == quarantined_.end()) return;
  const size_t level_index = StreamStats::LevelIndex(it->second.level);
  LevelOutlierState& level = levels_[level_index];
  if (level.quarantined_sensors > 0) --level.quarantined_sensors;
  quarantined_.erase(it);
  if (outage_.has_value()) {
    outage_->members.erase(event.sensor_id);
    if (outage_->members.empty()) {
      // Every affected channel reported back — the incident is over and
      // the (frozen, not poisoned) baselines resume from where they were.
      outage_.reset();
      stats_.RecordGroupOutageRecovery();
    }
  }
}

void StreamEngine::PublishSnapshot() {
  EngineSnapshot snapshot;
  snapshot.sequence = next_sequence_++;
  snapshot.events_seen = events_seen_;
  snapshot.ts = std::isfinite(collector_frontier_) ? collector_frontier_ : 0.0;
  snapshot.levels = levels_;
  snapshot.active_alarms.reserve(active_alarms_.size());
  for (const auto& [id, alarm] : active_alarms_) {
    snapshot.active_alarms.push_back(alarm);
  }
  snapshot.quarantined.reserve(quarantined_.size());
  for (const auto& [id, sensor] : quarantined_) {
    snapshot.quarantined.push_back(sensor);
  }
  if (outage_.has_value()) {
    snapshot.group_outage_active = true;
    snapshot.group_outage_entity = options_.peer.outage_entity;
    snapshot.group_outage_since = outage_->since;
    snapshot.group_outage_sensors = outage_->members.size();
  }
  snapshot.concept_shifts.assign(recent_shifts_.begin(),
                                 recent_shifts_.end());
  snapshot.concept_shifts_total = concept_shifts_total_;
  events_at_last_snapshot_ = events_seen_;
  stats_.RecordSnapshotPublished();
  if (options_.snapshot_sink) {
    {
      std::lock_guard<std::mutex> lock(snapshot_mu_);
      published_ = snapshot;
    }
    // Outside the lock: the sink (a hub ring push) must never be able to
    // stall a concurrent Snapshot() reader.
    options_.snapshot_sink(snapshot);
    return;
  }
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  published_ = std::move(snapshot);
}

}  // namespace hod::stream
