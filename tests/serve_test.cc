#include <algorithm>
#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/codec.h"
#include "serve/fleet_hub.h"
#include "serve/history.h"
#include "serve/hub.h"
#include "serve/query.h"
#include "stream/engine.h"
#include "util/rng.h"

namespace hod::serve {
namespace {

using stream::EngineSnapshot;

hierarchy::ProductionLevel LevelAt(int index) {
  return hierarchy::LevelFromValue(index + 1).value();
}

/// A random but *internally consistent* snapshot: sorted alarm /
/// quarantine vectors, bounded shift ring — the shapes the engine
/// actually publishes.
EngineSnapshot RandomSnapshot(Rng& rng, uint64_t sequence) {
  EngineSnapshot snap;
  snap.sequence = sequence;
  snap.events_seen = rng.NextBelow(1 << 20);
  snap.ts = rng.Uniform(0.0, 1e6);
  for (auto& level : snap.levels) {
    level.outlier_samples = rng.NextBelow(1000);
    level.alarms_raised = rng.NextBelow(100);
    level.alarms_cleared = rng.NextBelow(100);
    level.active_alarms = rng.NextBelow(10);
    level.sensor_faults = rng.NextBelow(10);
    level.quarantined_sensors = rng.NextBelow(5);
    level.peak_score = rng.NextDouble();
    level.last_outlier_ts = rng.Uniform(0.0, 1e6);
  }
  const size_t alarms = rng.NextBelow(6);
  for (size_t i = 0; i < alarms; ++i) {
    stream::ActiveAlarm alarm;
    alarm.sensor_id = "s" + std::to_string(rng.NextBelow(16));
    alarm.level = LevelAt(static_cast<int>(rng.NextBelow(5)));
    alarm.since = rng.Uniform(0.0, 1e6);
    alarm.peak_score = rng.NextDouble();
    snap.active_alarms.push_back(std::move(alarm));
  }
  std::sort(snap.active_alarms.begin(), snap.active_alarms.end(),
            [](const auto& a, const auto& b) { return a.sensor_id < b.sensor_id; });
  snap.active_alarms.erase(
      std::unique(snap.active_alarms.begin(), snap.active_alarms.end(),
                  [](const auto& a, const auto& b) {
                    return a.sensor_id == b.sensor_id;
                  }),
      snap.active_alarms.end());
  const size_t quarantined = rng.NextBelow(4);
  for (size_t i = 0; i < quarantined; ++i) {
    stream::QuarantinedSensor q;
    q.sensor_id = "q" + std::to_string(rng.NextBelow(12));
    q.level = LevelAt(static_cast<int>(rng.NextBelow(5)));
    q.since = rng.Uniform(0.0, 1e6);
    q.reason = static_cast<stream::HealthSignal>(rng.NextBelow(6));
    snap.quarantined.push_back(std::move(q));
  }
  std::sort(snap.quarantined.begin(), snap.quarantined.end(),
            [](const auto& a, const auto& b) { return a.sensor_id < b.sensor_id; });
  snap.quarantined.erase(
      std::unique(snap.quarantined.begin(), snap.quarantined.end(),
                  [](const auto& a, const auto& b) {
                    return a.sensor_id == b.sensor_id;
                  }),
      snap.quarantined.end());
  snap.group_outage_active = rng.NextBelow(2) == 1;
  if (snap.group_outage_active) {
    snap.group_outage_entity = "plant" + std::to_string(rng.NextBelow(3));
    snap.group_outage_since = rng.Uniform(0.0, 1e6);
    snap.group_outage_sensors = rng.NextBelow(8) + 2;
  }
  const size_t shifts = rng.NextBelow(5);
  for (size_t i = 0; i < shifts; ++i) {
    stream::ConceptShiftEvent shift;
    shift.sensor_id = "c" + std::to_string(rng.NextBelow(8));
    shift.level = LevelAt(static_cast<int>(rng.NextBelow(5)));
    shift.ts = rng.Uniform(0.0, 1e6);
    shift.before_mean = rng.Uniform(-10.0, 10.0);
    shift.after_mean = rng.Uniform(-10.0, 10.0);
    shift.magnitude_sigmas = rng.Uniform(0.0, 12.0);
    shift.evidence = rng.NextDouble();
    shift.run_length = rng.NextBelow(64);
    snap.concept_shifts.push_back(std::move(shift));
  }
  snap.concept_shifts_total = snap.concept_shifts.size() + rng.NextBelow(100);
  return snap;
}

/// Evolves `base` the way one engine publish cadence would: bump
/// counters, mutate some level states, append shifts.
EngineSnapshot EvolveSnapshot(Rng& rng, const EngineSnapshot& base) {
  EngineSnapshot next = base;
  next.sequence = base.sequence + 1;
  next.events_seen = base.events_seen + rng.NextBelow(256);
  next.ts = base.ts + rng.Uniform(0.0, 10.0);
  for (auto& level : next.levels) {
    if (rng.NextBelow(3) == 0) {
      level.outlier_samples += rng.NextBelow(8);
      level.peak_score = std::max(level.peak_score, rng.NextDouble());
    }
  }
  if (rng.NextBelow(2) == 0 && !next.active_alarms.empty()) {
    next.active_alarms.erase(next.active_alarms.begin() +
                             rng.NextBelow(next.active_alarms.size()));
  }
  if (rng.NextBelow(2) == 0) {
    stream::ActiveAlarm alarm;
    alarm.sensor_id = "s" + std::to_string(rng.NextBelow(16));
    alarm.level = LevelAt(static_cast<int>(rng.NextBelow(5)));
    alarm.since = next.ts;
    alarm.peak_score = rng.NextDouble();
    auto pos = std::lower_bound(
        next.active_alarms.begin(), next.active_alarms.end(), alarm,
        [](const auto& a, const auto& b) { return a.sensor_id < b.sensor_id; });
    if (pos != next.active_alarms.end() && pos->sensor_id == alarm.sensor_id) {
      *pos = alarm;
    } else {
      next.active_alarms.insert(pos, alarm);
    }
  }
  const size_t appended = rng.NextBelow(3);
  for (size_t i = 0; i < appended; ++i) {
    stream::ConceptShiftEvent shift;
    shift.sensor_id = "c" + std::to_string(rng.NextBelow(8));
    shift.level = LevelAt(static_cast<int>(rng.NextBelow(5)));
    shift.ts = next.ts;
    shift.magnitude_sigmas = rng.Uniform(0.0, 12.0);
    next.concept_shifts.push_back(std::move(shift));
    ++next.concept_shifts_total;
  }
  while (next.concept_shifts.size() > 64) {
    next.concept_shifts.erase(next.concept_shifts.begin());
  }
  return next;
}

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

TEST(ServeCodec, SnapshotBytesRoundTrip) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    const EngineSnapshot snap = RandomSnapshot(rng, i + 1);
    const std::string bytes = EncodeSnapshotBytes(snap);
    std::istringstream is(bytes);
    auto decoded = ReadSnapshot(is);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(EncodeSnapshotBytes(decoded.value()), bytes);
  }
}

/// The parity property the whole tier rests on: for 1k random snapshot
/// pairs — both evolution chains (producer-consecutive) and entirely
/// unrelated pairs — delta apply reconstructs the target byte-for-byte.
TEST(ServeCodec, DeltaApplyEqualsFullSnapshotOn1kRandomPairs) {
  Rng rng(42);
  EngineSnapshot chained = RandomSnapshot(rng, 1);
  for (int i = 0; i < 1000; ++i) {
    EngineSnapshot base;
    EngineSnapshot next;
    if (i % 2 == 0) {
      base = chained;
      next = EvolveSnapshot(rng, base);
      chained = next;
    } else {
      base = RandomSnapshot(rng, rng.NextBelow(1000) + 1);
      next = RandomSnapshot(rng, base.sequence + 1 + rng.NextBelow(10));
    }
    const SnapshotDelta delta = EncodeDelta(base, next);
    auto applied = ApplyDelta(base, delta);
    ASSERT_TRUE(applied.ok()) << applied.status().ToString();
    ASSERT_EQ(EncodeSnapshotBytes(applied.value()), EncodeSnapshotBytes(next))
        << "pair " << i;
  }
}

TEST(ServeCodec, DeltaOmitsUnchangedState) {
  Rng rng(3);
  const EngineSnapshot base = RandomSnapshot(rng, 5);
  EngineSnapshot next = base;
  next.sequence = 6;
  next.events_seen += 10;
  next.levels[2].outlier_samples += 1;
  const SnapshotDelta delta = EncodeDelta(base, next);
  EXPECT_EQ(delta.levels.size(), 1u);
  EXPECT_EQ(delta.levels[0].index, 2);
  EXPECT_TRUE(delta.alarm_upserts.empty());
  EXPECT_TRUE(delta.alarm_removals.empty());
  EXPECT_FALSE(delta.outage_changed);
  EXPECT_FALSE(delta.shifts_full);
  EXPECT_TRUE(delta.shift_events.empty());
  // And the wire form is far smaller than the keyframe.
  EXPECT_LT(EncodeDeltaBytes(delta).size(),
            EncodeSnapshotBytes(next).size());
}

TEST(ServeCodec, ApplyRejectsStaleBase) {
  Rng rng(11);
  const EngineSnapshot base = RandomSnapshot(rng, 5);
  const EngineSnapshot next = EvolveSnapshot(rng, base);
  const SnapshotDelta delta = EncodeDelta(base, next);
  EngineSnapshot wrong = base;
  wrong.sequence = 4;
  const auto applied = ApplyDelta(wrong, delta);
  ASSERT_FALSE(applied.ok());
  EXPECT_EQ(applied.status().code(), StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// History ring
// ---------------------------------------------------------------------------

TEST(HistoryRing, AppendEvictLookup) {
  HistoryRing<int> ring(4);
  EXPECT_TRUE(ring.empty());
  for (int i = 0; i < 6; ++i) ring.Append(10.0 * i, i);
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.evicted(), 2u);
  EXPECT_EQ(ring.Oldest().value, 2);
  EXPECT_EQ(ring.Newest().value, 5);

  const auto window = ring.Window(25.0, 45.0);
  ASSERT_EQ(window.size(), 2u);
  EXPECT_EQ(window[0].value, 3);
  EXPECT_EQ(window[1].value, 4);

  const auto before = ring.Before(35.0);
  ASSERT_TRUE(before.has_value());
  EXPECT_EQ(before->value, 3);
  EXPECT_FALSE(ring.Before(20.0).has_value());

  ring.Clear();
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.evicted(), 0u);
}

// ---------------------------------------------------------------------------
// Hub fan-out
// ---------------------------------------------------------------------------

SnapshotHubOptions SyncHub(uint64_t keyframe_every = 4,
                           size_t queue_capacity = 64) {
  SnapshotHubOptions options;
  options.keyframe_every = keyframe_every;
  options.subscriber_queue_capacity = queue_capacity;
  options.history_capacity = 128;
  options.async = false;
  return options;
}

TEST(SnapshotHub, SubscriberTracksPublisherThroughDeltas) {
  SnapshotHub hub(SyncHub());
  auto sub = hub.Subscribe();
  Rng rng(17);
  EngineSnapshot snap = RandomSnapshot(rng, 1);
  hub.Publish(snap);
  for (int i = 0; i < 40; ++i) {
    snap = EvolveSnapshot(rng, snap);
    hub.Publish(snap);
  }
  sub->Drain();
  ASSERT_TRUE(sub->has_view());
  EXPECT_EQ(EncodeSnapshotBytes(sub->View()), EncodeSnapshotBytes(snap));
  EXPECT_GT(sub->deltas_applied(), 0u);
  EXPECT_GT(sub->keyframes_applied(), 0u);
  EXPECT_EQ(sub->stale_skipped(), 0u);

  const HubStatsSnapshot stats = hub.Stats();
  EXPECT_EQ(stats.publishes_seen, 41u);
  EXPECT_EQ(stats.publishes_processed, 41u);
  EXPECT_EQ(stats.keyframes_encoded + stats.deltas_encoded, 41u);
}

TEST(SnapshotHub, LateJoinerIsSeededWithKeyframe) {
  SnapshotHub hub(SyncHub(/*keyframe_every=*/1000));
  Rng rng(23);
  EngineSnapshot snap = RandomSnapshot(rng, 1);
  hub.Publish(snap);
  for (int i = 0; i < 10; ++i) {
    snap = EvolveSnapshot(rng, snap);
    hub.Publish(snap);
  }
  auto sub = hub.Subscribe();
  sub->Drain();
  ASSERT_TRUE(sub->has_view());
  EXPECT_EQ(EncodeSnapshotBytes(sub->View()), EncodeSnapshotBytes(snap));
  EXPECT_EQ(hub.Stats().seed_keyframes, 1u);
}

/// Slow reader: never drains until the end. Its queue fills, deltas are
/// dropped (never blocking the publisher), and the drop-to-keyframe
/// accounting reconciles exactly: every offer has exactly one outcome.
TEST(SnapshotHub, SlowReaderDropToKeyframeAccountingReconciles) {
  SnapshotHub hub(SyncHub(/*keyframe_every=*/8, /*queue_capacity=*/4));
  auto sub = hub.Subscribe();
  Rng rng(29);
  EngineSnapshot snap = RandomSnapshot(rng, 1);
  hub.Publish(snap);
  const int kPublishes = 200;
  for (int i = 1; i < kPublishes; ++i) {
    snap = EvolveSnapshot(rng, snap);
    hub.Publish(snap);
  }
  const SubscriberChannelStats channel = sub->ChannelStats();
  EXPECT_EQ(channel.offers, static_cast<uint64_t>(kPublishes));
  EXPECT_EQ(channel.offers, channel.deltas_served + channel.keyframes_served +
                                channel.delta_dropped +
                                channel.keyframes_dropped);
  EXPECT_GT(channel.delta_dropped, 0u);
  EXPECT_TRUE(channel.awaiting_keyframe);

  const HubStatsSnapshot stats = hub.Stats();
  EXPECT_EQ(stats.delta_dropped, channel.delta_dropped);
  EXPECT_EQ(stats.deltas_served + stats.keyframes_served +
                stats.delta_dropped + stats.keyframes_dropped,
            static_cast<uint64_t>(kPublishes));

  // The reader catches up: it drains its (stale) backlog, and the next
  // publish reaches it as a resync keyframe — not a delta against a base
  // it never saw — after which its view matches the live state again.
  sub->Drain();
  ASSERT_TRUE(sub->has_view());
  snap = EvolveSnapshot(rng, snap);
  hub.Publish(snap);
  sub->Drain();
  EXPECT_EQ(EncodeSnapshotBytes(sub->View()), EncodeSnapshotBytes(snap));
  EXPECT_EQ(sub->stale_skipped(), 0u);
}

/// A reader that keeps pace plus one that never drains: the slow one
/// must not affect the fast one's delivery.
TEST(SnapshotHub, SlowReaderDoesNotStallFastReader) {
  SnapshotHub hub(SyncHub(/*keyframe_every=*/16, /*queue_capacity=*/2));
  auto fast = hub.Subscribe();
  auto slow = hub.Subscribe();
  Rng rng(31);
  EngineSnapshot snap = RandomSnapshot(rng, 1);
  for (int i = 0; i < 100; ++i) {
    hub.Publish(snap);
    fast->Drain();
    snap = EvolveSnapshot(rng, snap);
  }
  const SubscriberChannelStats fast_channel = fast->ChannelStats();
  EXPECT_EQ(fast_channel.delta_dropped + fast_channel.keyframes_dropped, 0u);
  EXPECT_GT(slow->ChannelStats().delta_dropped, 0u);
  ASSERT_TRUE(fast->has_view());
}

TEST(SnapshotHub, SequenceRegressionForcesKeyframeResync) {
  SnapshotHub hub(SyncHub(/*keyframe_every=*/1000));
  auto sub = hub.Subscribe();
  Rng rng(37);
  EngineSnapshot snap = RandomSnapshot(rng, 1);
  hub.Publish(snap);
  for (int i = 0; i < 5; ++i) {
    snap = EvolveSnapshot(rng, snap);
    hub.Publish(snap);
  }
  sub->Drain();
  // A restored engine re-publishes from an older sequence: the hub must
  // broadcast a keyframe, not a delta against a base subscribers lack.
  Rng rng2(99);
  EngineSnapshot restored = RandomSnapshot(rng2, 3);
  hub.Publish(restored);
  sub->Drain();
  ASSERT_TRUE(sub->has_view());
  EXPECT_EQ(EncodeSnapshotBytes(sub->View()), EncodeSnapshotBytes(restored));
  EXPECT_EQ(hub.Stats().resyncs_forced, 1u);
  EXPECT_EQ(sub->stale_skipped(), 0u);
}

TEST(SnapshotHub, HistoryRingsFollowPublishes) {
  SnapshotHub hub(SyncHub());
  Rng rng(41);
  EngineSnapshot snap = RandomSnapshot(rng, 1);
  snap.ts = 0.0;
  for (int i = 0; i < 20; ++i) {
    snap.ts = 10.0 * i;
    snap.levels[0].outlier_samples = 5 * i;
    hub.Publish(snap);
    snap.sequence++;
  }
  EXPECT_EQ(hub.HistorySize(0), 20u);
  const auto window = hub.LevelWindow(0, 50.0, 100.0);
  ASSERT_EQ(window.size(), 5u);
  EXPECT_EQ(window.front().value.outlier_samples, 25u);
  const auto before = hub.LevelBefore(0, 50.0);
  ASSERT_TRUE(before.has_value());
  EXPECT_EQ(before->value.outlier_samples, 20u);
}

/// Subscribe/unsubscribe churn racing a publisher: no crashes, no lost
/// hub invariants, and every surviving subscriber converges.
TEST(SnapshotHub, SubscriberChurnRacingPublish) {
  SnapshotHubOptions options = SyncHub(/*keyframe_every=*/4,
                                       /*queue_capacity=*/8);
  SnapshotHub hub(options);
  std::atomic<bool> stop{false};
  std::thread publisher([&] {
    Rng rng(51);
    EngineSnapshot snap = RandomSnapshot(rng, 1);
    while (!stop.load()) {
      hub.Publish(snap);
      snap = EvolveSnapshot(rng, snap);
    }
  });
  std::vector<std::thread> churners;
  for (int t = 0; t < 4; ++t) {
    churners.emplace_back([&hub, t] {
      for (int i = 0; i < 200; ++i) {
        auto sub = hub.Subscribe();
        sub->Drain();
        if ((i + t) % 3 == 0) {
          sub->Drain();
        }
        // Subscription destructor unsubscribes while publishes race.
      }
    });
  }
  for (auto& churner : churners) churner.join();
  stop.store(true);
  publisher.join();
  const HubStatsSnapshot stats = hub.Stats();
  EXPECT_EQ(stats.subscribes, 800u);
  EXPECT_EQ(stats.unsubscribes, 800u);
  EXPECT_EQ(stats.subscribers, 0u);
  // A fresh subscriber still syncs cleanly after the storm.
  auto sub = hub.Subscribe();
  sub->Drain();
  EXPECT_TRUE(sub->has_view());
}

TEST(SnapshotHub, AsyncModeDeliversAndQuiesces) {
  SnapshotHubOptions options = SyncHub(/*keyframe_every=*/8);
  options.async = true;
  options.intake_capacity = 16;
  SnapshotHub hub(options);
  auto sub = hub.Subscribe();
  Rng rng(61);
  EngineSnapshot snap = RandomSnapshot(rng, 1);
  for (int i = 0; i < 50; ++i) {
    hub.Publish(snap);
    snap = EvolveSnapshot(rng, snap);
  }
  hub.Quiesce();
  const HubStatsSnapshot stats = hub.Stats();
  EXPECT_EQ(stats.publishes_seen, 50u);
  EXPECT_EQ(stats.publishes_processed + stats.intake_dropped, 50u);
  sub->Drain();
  EXPECT_TRUE(sub->has_view());
}

TEST(SnapshotHub, SaveRestoreForcesKeyframeAndKeepsHistory) {
  SnapshotHub hub(SyncHub(/*keyframe_every=*/1000));
  Rng rng(71);
  EngineSnapshot snap = RandomSnapshot(rng, 1);
  snap.ts = 0.0;
  for (int i = 0; i < 10; ++i) {
    snap.ts = 5.0 * i;
    hub.Publish(snap);
    snap = EvolveSnapshot(rng, snap);
    snap.ts = 5.0 * (i + 1);
  }
  std::ostringstream os;
  ASSERT_TRUE(hub.SaveState(os).ok());

  SnapshotHub revived(SyncHub(/*keyframe_every=*/1000));
  std::istringstream is(os.str());
  ASSERT_TRUE(revived.RestoreState(is).ok());
  EXPECT_EQ(revived.HistorySize(0), hub.HistorySize(0));
  const auto latest = revived.Latest();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(EncodeSnapshotBytes(*latest),
            EncodeSnapshotBytes(*hub.Latest()));

  // First publish after restore reaches a fresh subscriber as a keyframe
  // even though the cadence would have said delta.
  auto sub = revived.Subscribe();
  sub->Drain();  // seeded view from the restored state
  EngineSnapshot resumed = EvolveSnapshot(rng, *latest);
  revived.Publish(resumed);
  sub->Drain();
  ASSERT_TRUE(sub->has_view());
  EXPECT_EQ(EncodeSnapshotBytes(sub->View()), EncodeSnapshotBytes(resumed));
  EXPECT_GE(revived.Stats().keyframes_encoded, 1u);
}

// ---------------------------------------------------------------------------
// Query service
// ---------------------------------------------------------------------------

TEST(QueryService, RollupBucketsAndCacheEpoch) {
  SnapshotHub hub(SyncHub());
  EngineSnapshot snap;
  // Level 0 gains 1 outlier per publish; level 1 is quiet except one
  // violent burst at t = 40 (bucket 8 under a width of 5).
  for (int i = 0; i < 60; ++i) {
    snap.sequence = i + 1;
    snap.ts = static_cast<double>(i);
    snap.levels[0].outlier_samples = i;
    snap.levels[1].outlier_samples = (i >= 40) ? 1000 : 0;
    hub.Publish(snap);
  }
  QueryService service(&hub);
  RollupQuery query;
  query.start = 0.0;
  query.end = 60.0;
  query.bucket_width = 5.0;
  query.levels = {0, 1};
  auto result = service.Rollup(query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->cache_hit);
  EXPECT_FALSE(result->cells.empty());
  // The burst bucket (level 1, t in [40,45)) must be flagged; the steady
  // drip on level 0 must not.
  bool burst_flagged = false;
  for (const RollupCell& cell : result->cells) {
    if (cell.level == 1 && cell.bucket == 8) {
      EXPECT_GT(cell.outliers, 500.0);
      burst_flagged = cell.anomalous;
    } else {
      EXPECT_FALSE(cell.anomalous)
          << "level " << cell.level << " bucket " << cell.bucket;
    }
  }
  EXPECT_TRUE(burst_flagged);

  // Second identical query: cache hit, same epoch.
  auto again = service.Rollup(query);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->cache_hit);
  EXPECT_EQ(service.cache_hits(), 1u);
  EXPECT_EQ(service.cache_misses(), 1u);

  // A new publish moves the epoch and invalidates the cache.
  snap.sequence++;
  snap.ts = 60.0;
  hub.Publish(snap);
  auto after = service.Rollup(query);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->cache_hit);
  EXPECT_EQ(service.cache_misses(), 2u);
}

TEST(QueryService, RejectsBadWindows) {
  SnapshotHub hub(SyncHub());
  QueryService service(&hub);
  RollupQuery query;
  query.start = 10.0;
  query.end = 10.0;
  EXPECT_EQ(service.Rollup(query).status().code(),
            StatusCode::kInvalidArgument);
  query.end = 20.0;
  query.bucket_width = 0.0;
  EXPECT_EQ(service.Rollup(query).status().code(),
            StatusCode::kInvalidArgument);
  query.bucket_width = 5.0;
  query.levels = {7};
  EXPECT_EQ(service.Rollup(query).status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Fleet hub
// ---------------------------------------------------------------------------

TEST(FleetHub, MergedBoardAndCrossPlantRollup) {
  FleetHub fleet(SyncHub());
  SnapshotHub* berlin = fleet.AddPlant("berlin");
  SnapshotHub* munich = fleet.AddPlant("munich");
  ASSERT_NE(berlin, nullptr);
  ASSERT_NE(munich, nullptr);
  EXPECT_EQ(fleet.AddPlant("berlin"), berlin);  // idempotent

  EngineSnapshot snap;
  for (int i = 0; i < 60; ++i) {
    snap.sequence = i + 1;
    snap.ts = static_cast<double>(i);
    snap.levels[0].outlier_samples = i;  // steady
    berlin->Publish(snap);
  }
  EngineSnapshot hot;
  for (int i = 0; i < 60; ++i) {
    hot.sequence = i + 1;
    hot.ts = static_cast<double>(i);
    // Steady like berlin until t = 40, then one violent burst.
    hot.levels[0].outlier_samples = (i >= 40) ? 1000 : i;
    hot.active_alarms.clear();
    if (i >= 40) {
      stream::ActiveAlarm alarm;
      alarm.sensor_id = "m7.temp";
      alarm.since = hot.ts;
      alarm.peak_score = 0.9;
      hot.active_alarms.push_back(alarm);
    }
    munich->Publish(hot);
  }

  const auto board = fleet.BoardSince(0);
  ASSERT_TRUE(board.has_value());
  ASSERT_EQ(board->alarms.size(), 1u);
  EXPECT_EQ(board->alarms[0].plant_id, "munich");
  EXPECT_EQ(board->alarms[0].alarm.sensor_id, "m7.temp");
  // Unchanged version -> no refetch.
  EXPECT_FALSE(fleet.BoardSince(board->version).has_value());

  RollupQuery query;
  query.start = 0.0;
  query.end = 60.0;
  query.bucket_width = 5.0;
  query.levels = {0};
  auto rollup = fleet.Rollup(query);
  ASSERT_TRUE(rollup.ok()) << rollup.status().ToString();
  EXPECT_FALSE(rollup->cells.empty());
  bool munich_hot = false;
  bool berlin_hot = false;
  for (const FleetRollupCell& cell : rollup->cells) {
    if (!cell.cell.anomalous) continue;
    if (cell.plant_id == "munich") munich_hot = true;
    if (cell.plant_id == "berlin") berlin_hot = true;
  }
  EXPECT_TRUE(munich_hot);
  EXPECT_FALSE(berlin_hot);

  fleet.RemovePlant("munich");
  EXPECT_EQ(fleet.Hub("munich"), nullptr);
  EXPECT_EQ(fleet.Plants().size(), 1u);
}

// ---------------------------------------------------------------------------
// End-to-end: engine -> hub via snapshot_sink
// ---------------------------------------------------------------------------

TEST(ServeEndToEnd, EngineSinkFeedsHubAndSubscriberMatchesEngineSnapshot) {
  SnapshotHub hub(SyncHub(/*keyframe_every=*/4));
  stream::StreamEngineOptions options;
  options.synchronous = true;
  options.snapshot_every = 16;
  options.monitor.warmup = 64;
  options.snapshot_sink = [&hub](const EngineSnapshot& snapshot) {
    hub.Publish(snapshot);
  };
  stream::StreamEngine engine(options);
  ASSERT_TRUE(
      engine.AddSensor("s1", hierarchy::ProductionLevel::kPhase).ok());
  ASSERT_TRUE(engine.Start().ok());
  auto sub = hub.Subscribe();
  Rng rng(87);
  for (int i = 0; i < 400; ++i) {
    const double value =
        (i % 97 == 96) ? 40.0 : rng.Uniform(-0.1, 0.1);
    auto ack = engine.Ingest({"s1", hierarchy::ProductionLevel::kPhase,
                              static_cast<double>(i), value});
    ASSERT_TRUE(ack.ok()) << "sample " << i << ": "
                          << ack.status().ToString();
  }
  ASSERT_TRUE(engine.Flush().ok());
  sub->Drain();
  ASSERT_TRUE(sub->has_view());
  const EngineSnapshot direct = engine.Snapshot();
  EXPECT_EQ(EncodeSnapshotBytes(sub->View()), EncodeSnapshotBytes(direct));
  EXPECT_EQ(engine.stats().snapshots_published, hub.Stats().publishes_seen);
  EXPECT_GT(hub.Stats().publishes_seen, 0u);
  ASSERT_TRUE(engine.Stop().ok());
}

}  // namespace
}  // namespace hod::serve
