#ifndef HOD_DETECT_LOF_DETECTOR_H_
#define HOD_DETECT_LOF_DETECTOR_H_

#include <vector>

#include "detect/detector.h"
#include "detect/kmeans.h"

namespace hod::detect {

/// Local outlier factor — the density-ratio method the paper's Section 5
/// pairs with PCA for "robust detection of noisy variables" [29].
/// Classic Breunig-style LOF: a point's outlierness is the ratio of its
/// neighbors' local reachability density to its own; values near 1 are
/// inliers, larger values are outliers in locally sparse regions that a
/// global distance threshold would miss.
struct LofOptions {
  size_t k = 8;
  /// LOF excess (lof - 1) at which outlierness reaches 0.5.
  double lof_scale = 1.0;
};

class LofDetector : public VectorDetector {
 public:
  explicit LofDetector(LofOptions options = {});

  std::string name() const override { return "LocalOutlierFactor"; }

  Status Train(const std::vector<std::vector<double>>& data) override;

  StatusOr<std::vector<double>> Score(
      const std::vector<std::vector<double>>& data) const override;

  /// Raw LOF value of one (already scaled) query — exposed for tests.
  StatusOr<double> RawLof(const std::vector<double>& unscaled_row) const;

 private:
  struct Neighbors {
    std::vector<size_t> index;
    std::vector<double> distance;
    double k_distance = 0.0;
  };

  Neighbors FindNeighbors(const std::vector<double>& scaled,
                          size_t skip) const;

  LofOptions options_;
  ColumnScaler scaler_;
  std::vector<std::vector<double>> train_;
  /// Local reachability density of every training point.
  std::vector<double> lrd_;
  std::vector<double> k_distance_;
  size_t dim_ = 0;
  bool trained_ = false;
};

}  // namespace hod::detect

#endif  // HOD_DETECT_LOF_DETECTOR_H_
