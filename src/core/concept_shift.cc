#include "core/concept_shift.h"

#include <algorithm>
#include <cmath>

#include "timeseries/stats.h"

namespace hod::core {

StatusOr<std::vector<ConceptShift>> DetectConceptShifts(
    const ts::TimeSeries& series, const ConceptShiftOptions& options) {
  HOD_RETURN_IF_ERROR(series.Validate());
  if (series.size() < 2 * options.min_persistence) {
    return Status::InvalidArgument(
        "series too short for concept-shift detection");
  }
  if (options.cusum_threshold <= 0.0) {
    return Status::InvalidArgument("cusum_threshold must be > 0");
  }
  const auto& values = series.values();
  std::vector<ConceptShift> shifts;

  size_t segment_start = 0;
  while (segment_start + 2 * options.min_persistence <= values.size()) {
    // Robust baseline of the current regime: first min_persistence..
    // whole-segment samples (capped to avoid contaminating the baseline
    // with the next shift).
    const size_t baseline_end =
        std::min(values.size(),
                 segment_start + std::max<size_t>(options.min_persistence * 3,
                                                  24));
    std::vector<double> baseline(values.begin() + segment_start,
                                 values.begin() + baseline_end);
    const double level = ts::Median(baseline);
    double sigma = ts::Mad(baseline);
    if (sigma <= 0.0) sigma = std::max(ts::StdDev(baseline), 1e-9);

    // Two-sided CUSUM from the segment start.
    double cusum_up = 0.0;
    double cusum_down = 0.0;
    size_t up_anchor = segment_start;    // first sample contributing to up
    size_t down_anchor = segment_start;
    bool found = false;
    for (size_t i = segment_start; i < values.size(); ++i) {
      const double z = (values[i] - level) / sigma;
      const double up_inc = z - options.drift_allowance;
      const double down_inc = -z - options.drift_allowance;
      if (cusum_up + up_inc <= 0.0) {
        cusum_up = 0.0;
        up_anchor = i + 1;
      } else {
        cusum_up += up_inc;
      }
      if (cusum_down + down_inc <= 0.0) {
        cusum_down = 0.0;
        down_anchor = i + 1;
      } else {
        cusum_down += down_inc;
      }
      const bool up_hit = cusum_up > options.cusum_threshold;
      const bool down_hit = cusum_down > options.cusum_threshold;
      if (!up_hit && !down_hit) continue;

      const size_t change = up_hit ? up_anchor : down_anchor;
      // Persistence check: the new level must *still* hold after any
      // transient would have decayed. The audited window starts
      // min_persistence samples past the *detection* index (the CUSUM
      // crossing, which is at or after the disturbance onset) — a
      // temporary change or spike has faded by then; a genuine shift has
      // not.
      const size_t post_begin = i + options.min_persistence;
      const size_t post_end =
          std::min(values.size(), post_begin + options.min_persistence);
      if (post_end <= post_begin ||
          post_end - post_begin < options.min_persistence) {
        break;  // not enough future data to confirm persistence
      }
      std::vector<double> post(values.begin() + post_begin,
                               values.begin() + post_end);
      const double after = ts::Median(post);
      const double magnitude = std::fabs(after - level) / sigma;
      if (magnitude < options.min_magnitude) {
        // A transient (e.g. additive outlier) tripped CUSUM but the level
        // did not move: reset and continue scanning.
        cusum_up = 0.0;
        cusum_down = 0.0;
        up_anchor = i + 1;
        down_anchor = i + 1;
        continue;
      }
      ConceptShift shift;
      shift.index = change;
      shift.time = series.TimeAt(change);
      shift.before_mean = level;
      shift.after_mean = after;
      shift.magnitude_sigmas = magnitude;
      shifts.push_back(shift);
      segment_start = post_end;  // re-baseline in the new regime
      found = true;
      break;
    }
    if (!found) break;
  }
  return shifts;
}

}  // namespace hod::core
