// E4 — Algorithm 1: the <global score, outlierness, support> triple.
//
// The paper's core proposal is evaluated here on the simulated plant:
//   (a) support separates real process anomalies from single-sensor
//       measurement glitches ("support values reduce the probability of
//       finding a measurement error");
//   (b) the global score distribution: real anomalies propagate upward,
//       glitches stay local;
//   (c) measurement-error warnings: precision/recall of the downward
//       check at the job level;
//   (d) the headline: ranking phase-level events by the fused triple beats
//       ranking by raw outlierness alone (hierarchy helps).

#include <algorithm>
#include <cmath>
#include <map>

#include "bench_util.h"
#include "core/hierarchical_detector.h"
#include "eval/metrics.h"
#include "sim/plant.h"

namespace hod {
namespace {

struct EventRecord {
  bool is_process_anomaly = false;  // truth: real vs glitch
  core::OutlierFinding finding;
};

/// Runs phase-level queries for every injected record and keeps the
/// nearest finding.
std::vector<EventRecord> CollectEvents(const sim::SimulatedPlant& plant,
                                       core::HierarchicalDetector& detector) {
  std::vector<EventRecord> events;
  for (const sim::AnomalyRecord& record : plant.truth.records) {
    if (record.level != hierarchy::ProductionLevel::kPhase) continue;
    core::PhaseQuery query{record.machine_id, record.job_id,
                           record.phase_name, record.sensor_id};
    auto report = detector.FindPhaseOutliers(query);
    if (!report.ok()) continue;
    const core::OutlierFinding* nearest = nullptr;
    double best_gap = 30.0;
    for (const core::OutlierFinding& finding : report->findings) {
      const double gap = std::fabs(finding.origin.time - record.start_time);
      if (gap <= best_gap) {
        best_gap = gap;
        nearest = &finding;
      }
    }
    if (nearest == nullptr) continue;
    events.push_back({!record.measurement_error, *nearest});
  }
  return events;
}

}  // namespace
}  // namespace hod

int main() {
  using namespace hod;
  bench::PrintHeader("E4", "The <global score, outlierness, support> triple",
                     "Algorithm 1 (Section 4)");

  sim::PlantOptions options;
  options.num_lines = 2;
  options.machines_per_line = 3;
  options.jobs_per_machine = 16;
  options.seed = 7;
  sim::ScenarioOptions scenario;
  scenario.process_anomaly_rate = 0.25;
  scenario.glitch_rate = 0.25;
  scenario.magnitude_sigmas = 7.0;
  const sim::SimulatedPlant plant =
      sim::BuildPlant(options, scenario).value();
  core::HierarchicalDetector detector(&plant.production);
  const std::vector<EventRecord> events = CollectEvents(plant, detector);

  size_t process_count = 0;
  size_t glitch_count = 0;
  for (const EventRecord& event : events) {
    if (event.is_process_anomaly) ++process_count;
    else ++glitch_count;
  }
  std::cout << "Plant: 2 lines x 3 machines x 16 jobs; injected events "
               "detected at phase level: "
            << events.size() << " (" << process_count << " process, "
            << glitch_count << " glitches)\n";

  // ---- (a) support --------------------------------------------------------
  bench::PrintSection("(a) Support by event kind (redundant sensors only)");
  Table support_table({"Event kind", "n", "mean support",
                       "share with support > 0"});
  for (bool process : {true, false}) {
    double support_sum = 0.0;
    size_t supported = 0;
    size_t n = 0;
    for (const EventRecord& event : events) {
      if (event.is_process_anomaly != process) continue;
      if (event.finding.corresponding_sensors == 0) continue;
      ++n;
      support_sum += event.finding.support;
      if (event.finding.support > 0.0) ++supported;
    }
    support_table.AddRow(
        {process ? "process anomaly" : "measurement glitch",
         std::to_string(n), n > 0 ? bench::Fmt(support_sum / n) : "-",
         n > 0 ? bench::Fmt(static_cast<double>(supported) / n) : "-"});
  }
  support_table.Print(std::cout);
  std::cout << "Expected: process anomalies enjoy near-full support; "
               "glitches near none.\n";

  // ---- (b) global score ---------------------------------------------------
  bench::PrintSection("(b) Global-score distribution by event kind");
  Table score_table({"Event kind", "gs=1", "gs=2", "gs=3+", "mean"});
  for (bool process : {true, false}) {
    std::map<int, size_t> histogram;
    double sum = 0.0;
    size_t n = 0;
    for (const EventRecord& event : events) {
      if (event.is_process_anomaly != process) continue;
      ++histogram[std::min(event.finding.global_score, 3)];
      sum += event.finding.global_score;
      ++n;
    }
    score_table.AddRow({process ? "process anomaly" : "measurement glitch",
                        std::to_string(histogram[1]),
                        std::to_string(histogram[2]),
                        std::to_string(histogram[3]),
                        n > 0 ? bench::Fmt(sum / n, 2) : "-"});
  }
  score_table.Print(std::cout);
  std::cout << "Expected: process anomalies confirm at higher levels (CAQ "
               "degradation);\nglitches stay at global score 1.\n";

  // ---- (c) measurement-error warnings --------------------------------------
  bench::PrintSection(
      "(c) Downward check: job-level warnings vs. phase evidence");
  size_t warned_and_spurious = 0;
  size_t warned_total = 0;
  size_t spurious_total = 0;
  for (const auto& line : plant.production.lines) {
    for (const auto& machine : line.machines) {
      auto report = detector.FindJobOutliers(machine.id);
      if (!report.ok()) continue;
      for (const core::OutlierFinding& finding : report->findings) {
        // A job-level finding is "spurious" when the job truly had no
        // process anomaly (CAQ noise / batch effects).
        const bool truly_anomalous =
            plant.truth.job_labels.count(finding.origin.entity) > 0;
        if (finding.measurement_error_warning) {
          ++warned_total;
          if (!truly_anomalous) ++warned_and_spurious;
        }
        if (!truly_anomalous) ++spurious_total;
      }
    }
  }
  Table warning_table({"metric", "value"});
  warning_table.AddRow({"job-level warnings emitted",
                        std::to_string(warned_total)});
  warning_table.AddRow(
      {"warning precision (warned & truly spurious / warned)",
       warned_total > 0
           ? bench::Fmt(static_cast<double>(warned_and_spurious) /
                        warned_total)
           : "-"});
  warning_table.AddRow(
      {"spurious-finding recall (warned / all spurious findings)",
       spurious_total > 0
           ? bench::Fmt(static_cast<double>(warned_and_spurious) /
                        spurious_total)
           : "-"});
  warning_table.Print(std::cout);

  // ---- (d) fused ranking vs flat ranking -----------------------------------
  bench::PrintSection(
      "(d) Headline: fused-triple ranking vs raw outlierness (AUC, real "
      "events = positives)");
  std::vector<double> flat_scores;
  std::vector<double> fused_scores;
  eval::Truth truth;
  for (const EventRecord& event : events) {
    truth.push_back(event.is_process_anomaly ? 1 : 0);
    flat_scores.push_back(event.finding.outlierness);
    // Fusion per the paper's intent: outlierness weighted by upward
    // confirmation and redundancy support, damped by the measurement-
    // error warning.
    const double level_weight =
        static_cast<double>(event.finding.global_score) /
        static_cast<double>(hierarchy::kNumLevels);
    const double support_weight =
        event.finding.corresponding_sensors == 0
            ? 0.5
            : event.finding.support;
    double fused = event.finding.outlierness *
                   (0.4 + 0.3 * level_weight + 0.3 * support_weight);
    fused_scores.push_back(fused);
  }
  Table headline({"Ranking", "ROC-AUC (real vs glitch)"});
  headline.AddRow(
      {"flat: outlierness only",
       bench::Fmt(eval::RocAuc(flat_scores, truth).value_or(0.5))});
  headline.AddRow(
      {"hierarchical: triple fusion",
       bench::Fmt(eval::RocAuc(fused_scores, truth).value_or(0.5))});
  headline.Print(std::cout);
  std::cout << "\nExpected: the fused triple ranks real process anomalies "
               "above measurement\nglitches far better than the raw score — "
               "the paper's motivation for combining\noutlier information "
               "between production levels.\n";
  return 0;
}
