#ifndef HOD_STREAM_SHARDED_SCORER_H_
#define HOD_STREAM_SHARDED_SCORER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/batch_monitor.h"
#include "core/bocpd.h"
#include "core/monitor.h"
#include "stream/health.h"
#include "stream/queue.h"
#include "stream/router.h"
#include "stream/spsc_ring.h"
#include "stream/stats.h"
#include "util/statusor.h"

namespace hod::util {
class ThreadPool;
}  // namespace hod::util

namespace hod::stream {

class PeerGroupMonitor;

/// What one collector event means. Score events carry a monitor verdict;
/// health events mark a sensor entering quarantine (the stream tier's
/// measurement-error verdict) or completing recovery; peer-deviation
/// events mark a channel drifting away from its redundancy group (the
/// space-axis verdict — see stream/peer_group.h); concept-shift events
/// mark a BOCPD-confirmed regime change that re-baselined the channel
/// (see core/bocpd.h).
enum class StreamEventKind {
  kScore,
  kSensorFault,
  kSensorRecovered,
  kPeerDeviation,
  kConceptShift,
};

/// A scored sample forwarded to the collector: the original reading plus
/// the per-sensor monitor's verdict. Only interesting samples travel this
/// path (alarm transitions, scores above the forwarding threshold, and
/// sensor health transitions), so collector traffic stays proportional to
/// outliers, not throughput.
struct ScoredSample {
  StreamEventKind kind = StreamEventKind::kScore;
  std::string sensor_id;
  hierarchy::ProductionLevel level = hierarchy::ProductionLevel::kPhase;
  ts::TimePoint ts = 0.0;
  double value = 0.0;
  core::MonitorUpdate update;
  /// Set on kSensorFault events: what tripped the quarantine.
  HealthSignal fault_reason = HealthSignal::kClean;
  /// Set on kPeerDeviation events: the redundancy group the channel broke
  /// from, and the robust deviation / slope statistics that fired.
  std::string peer_group;
  double peer_value_z = 0.0;
  double peer_slope_z = 0.0;
  /// Set on kConceptShift events: the confirmed pre/post level estimates,
  /// the magnitude in pre-shift sigmas, and the run-length evidence
  /// (posterior mass on a recent changepoint, and samples since it).
  double shift_before = 0.0;
  double shift_after = 0.0;
  double shift_magnitude = 0.0;
  double shift_evidence = 0.0;
  uint64_t shift_run_length = 0;
};

/// Read-only view of one sensor's monitor, for tests and diagnostics.
/// Only coherent while no worker owns the monitor (synchronous mode, or a
/// stopped engine).
struct SensorProbe {
  uint64_t samples_seen = 0;
  uint64_t alarms_raised = 0;
  bool alarm = false;
  bool model_ready = false;
};

/// Result of scoring one sample inline (synchronous mode).
struct InlineScore {
  /// False when the sensor is quarantined and the sample was withheld
  /// from its monitor.
  bool scored = false;
  core::MonitorUpdate update;
};

struct ShardedScorerOptions {
  size_t num_shards = 4;
  /// Per-shard queue capacity (samples).
  size_t queue_capacity = 1024;
  /// Max samples a worker drains per queue acquisition.
  size_t max_batch = 64;
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  /// Producer wait bound under kBlockWithTimeout.
  std::chrono::milliseconds block_timeout{100};
  /// How many threads push to each shard. With kSinglePerShard the shard
  /// ingress queue is the lock-free SpscRing instead of the mutex-based
  /// BoundedQueue — same backpressure/accounting semantics, no lock on
  /// the per-sample fast path. The caller owns the guarantee (e.g. one
  /// replay thread, or producers partitioned by the router's StableHash64).
  ProducerHint producer_hint = ProducerHint::kUnknown;
  /// Configuration of every per-sensor OnlineMonitor.
  core::OnlineMonitorOptions monitor;
  /// Scores above this are forwarded to the collector even without an
  /// alarm transition (feeds the per-level outlier snapshot).
  double forward_threshold = 0.5;
  /// Online concept-shift detection: when enabled, every scored sample
  /// also feeds a per-lane core::BocpdDetector, and a confirmed shift
  /// re-baselines the lane (seeded from the post-shift posterior; deferred
  /// while the lane's baseline is frozen by quarantine) and forwards a
  /// kConceptShift event. Disabled by default — the scoring path is then
  /// byte-identical to a scorer built before this option existed.
  bool shift_enabled = false;
  core::BocpdOptions bocpd;
  /// Test seam: called by each worker once per drain iteration with its
  /// shard index. Lets liveness tests wedge a worker deterministically
  /// (watchdog / shutdown-under-saturation coverage). Must be cheap and
  /// thread-safe; leave empty in production.
  std::function<void(size_t)> worker_tick_hook;
  /// Borrowed executor (fleet mode). When set, Start() spawns no worker
  /// threads: shard drains run as notify-driven pooled tasks on the
  /// executor's worker lane, so N scorers share one fixed thread set. The
  /// executor must outlive the scorer and must not shut down before
  /// Stop() returns.
  util::ThreadPool* executor = nullptr;
  /// Called after every successful push to the collector queue (executor
  /// mode): the engine uses it to arm its pooled collector-drain task,
  /// replacing the blocking PopBatch thread.
  std::function<void()> collector_notify;
};

/// The scoring tier: N shards, each owning a bounded queue, a worker
/// thread, and a `core::BatchMonitorBank` holding the monitors of the
/// sensors hashed to it in structure-of-arrays form. Shard state is
/// strictly thread-private — a sensor's samples are only ever scored by
/// its shard's worker, so the hot path touches no shared mutable state
/// and takes no lock (the queue mutex is amortized over micro-batches;
/// the optional health tracker adds one uncontended per-sensor mutex
/// acquisition per sample). A drained micro-batch is scored in one
/// BatchMonitorBank::PushBatch call, so the residual/z/EWMA-sigma math
/// runs through the vectorized util/simd.h kernels instead of a map
/// lookup and scalar update per sample; scores, counters, and checkpoint
/// state are bit-identical to the per-sample path.
class ShardedScorer {
 public:
  /// `stats`, `collector`, `health`, and `peers` must outlive the scorer.
  /// `collector` receives forwarded ScoredSamples and may be nullptr
  /// (forwarding disabled); `health` may be nullptr (no health gating);
  /// `peers` may be nullptr (no peer-group comparison). Peer observation
  /// happens on the scoring thread, after the health gate: a quarantined
  /// channel's samples never move its peers' reference medians.
  ShardedScorer(const ShardedScorerOptions& options, StreamStats* stats,
                BoundedQueue<ScoredSample>* collector,
                SensorHealthTracker* health,
                PeerGroupMonitor* peers = nullptr);
  ~ShardedScorer();

  ShardedScorer(const ShardedScorer&) = delete;
  ShardedScorer& operator=(const ShardedScorer&) = delete;

  /// Creates the monitor for one sensor on its shard. Call before Start().
  Status AddSensor(size_t shard, const std::string& sensor_id);

  /// Spawns one worker per shard. Without Start() the scorer is usable
  /// synchronously via ScoreNow().
  Status Start();

  /// Enqueues a routed sample onto its shard under `policy` (the sensor
  /// class's backpressure), accounting evictions and timeouts.
  Status Submit(size_t shard, SensorSample sample, BackpressurePolicy policy);

  /// Scores a sample inline on the caller's thread (synchronous mode).
  /// Must not be mixed with running workers. A quarantined sensor's
  /// sample is withheld from its monitor (result.scored == false).
  /// `lane_hint` (the router's cached lane, kNoLane when unresolved)
  /// skips the string-keyed lane lookup when valid.
  StatusOr<InlineScore> ScoreNow(size_t shard, const SensorSample& sample,
                                 uint32_t lane_hint = kNoLane);

  /// Lane of a sensor on one shard, or BatchMonitorBank::kNotFound. Used
  /// by the engine to publish the sensor-id → (shard, lane) cache to the
  /// router after the banks are populated.
  size_t LaneOf(size_t shard, const std::string& sensor_id) const;

  /// Blocks until every submitted sample has been scored. Producers must
  /// be quiescent for the post-condition to be meaningful.
  Status Flush();

  /// Closes every queue, drains remaining samples, and joins workers.
  /// Idempotent.
  void Stop();

  /// Copies per-shard queue high-water marks and kDropOldest eviction
  /// counts into `snapshot` (they live in the queues, not in StreamStats).
  void FillQueueStats(StreamStatsSnapshot& snapshot) const;

  bool running() const { return running_.load(std::memory_order_acquire); }
  size_t num_shards() const { return shards_.size(); }
  /// Samples forwarded to the collector so far. Counts only pushes the
  /// collector accepted — failed forwards land in forward_failed().
  uint64_t forwarded() const {
    return forwarded_.load(std::memory_order_acquire);
  }
  /// Forwards the collector refused (normally: closed during shutdown).
  uint64_t forward_failed() const {
    return forward_failed_.load(std::memory_order_acquire);
  }
  /// Implementation tag of a shard's ingress queue ("mpsc" or "spsc").
  std::string_view QueueKind(size_t shard) const {
    return shard < shards_.size() ? shards_[shard]->queue->kind()
                                  : std::string_view{"?"};
  }

  /// Liveness telemetry for the engine watchdog: a shard worker's
  /// heartbeat advances once per drain iteration; a queue with waiting
  /// samples whose heartbeat stands still is a stalled worker.
  uint64_t ShardHeartbeat(size_t shard) const;
  size_t ShardQueueDepth(size_t shard) const;

  /// Monitor state of one sensor. FailedPrecondition while workers run.
  StatusOr<SensorProbe> Probe(const std::string& sensor_id) const;

  /// Checkpoint support: copy a sensor's monitor state out / in.
  /// FailedPrecondition while workers run.
  StatusOr<core::OnlineMonitorState> SaveMonitor(
      const std::string& sensor_id) const;
  /// SaveMonitor for a running-but-quiesced scorer (background
  /// checkpointing): workers may be alive, but the caller guarantees every
  /// submitted sample has been scored (Flush returned) and no producer can
  /// submit until the save completes. The Flush release/acquire chain on
  /// the shard `processed` counters makes the monitor reads safe; without
  /// that guarantee this is a data race.
  StatusOr<core::OnlineMonitorState> SaveMonitorQuiesced(
      const std::string& sensor_id) const;
  Status RestoreMonitor(const std::string& sensor_id,
                        const core::OnlineMonitorState& state);

  /// Checkpoint support for the per-lane BOCPD detectors. Same quiescence
  /// contract as SaveMonitorQuiesced. NotFound when the sensor is unknown
  /// or shift detection is disabled.
  StatusOr<core::BocpdState> SaveBocpdQuiesced(
      const std::string& sensor_id) const;
  Status RestoreBocpd(const std::string& sensor_id,
                      const core::BocpdState& state);
  bool shift_enabled() const { return options_.shift_enabled; }

 private:
  struct Shard {
    Shard(ProducerHint hint, size_t capacity, BackpressurePolicy policy,
          std::chrono::milliseconds block_timeout,
          const core::OnlineMonitorOptions& monitor_options)
        : queue(MakeShardQueue<SensorSample>(hint, capacity, policy,
                                            block_timeout)),
          bank(monitor_options) {}
    std::unique_ptr<ShardQueue<SensorSample>> queue;
    /// SoA bank of this shard's per-sensor monitors. Touched only by the
    /// shard's drain thread (or the caller in synchronous mode).
    core::BatchMonitorBank bank;
    /// Per-lane BOCPD detectors (same indexing as the bank's lanes).
    /// Empty unless options.shift_enabled; thread-private like the bank.
    std::vector<core::BocpdDetector> bocpd;
    /// Shifts confirmed in pass 1 of the current batch, by admitted-row
    /// index — pass 2 segments PushBatch at these rows so post-confirm
    /// samples score against the re-baselined model exactly as in
    /// synchronous mode, and pass 3 forwards the events in order.
    struct PendingShift {
      size_t admitted_row;
      size_t lane;
      core::BocpdShift shift;
      bool deferred;  ///< lane was frozen: reset parked until thaw
    };
    std::vector<PendingShift> batch_shifts;
    /// ProcessBatch scratch, parallel over the health-admitted samples of
    /// one micro-batch. Owned by the drain thread; reused across batches.
    std::vector<size_t> batch_rows;     ///< positions in the drained batch
    std::vector<size_t> batch_lanes;
    std::vector<double> batch_values;
    std::vector<unsigned char> batch_forward;
    std::vector<core::MonitorUpdate> batch_updates;
    std::vector<unsigned char> batch_scored;
    std::atomic<uint64_t> submitted{0};
    std::atomic<uint64_t> processed{0};
    std::atomic<uint64_t> heartbeat{0};
    /// Executor mode only: kTaskIdle / kTaskArmed / kTaskRunning (see
    /// NotifyShard). Exactly one drain task is in flight per shard.
    std::atomic<int> task_state{0};
    std::jthread worker;
  };

  /// Pooled-task state machine (executor mode). A shard (or the engine's
  /// collector) has at most one drain task in flight; a notify while the
  /// task runs re-arms it so no push is ever missed:
  ///   Idle    --notify-->  Armed (+ submit task)
  ///   Armed   --notify-->  Armed (task already pending)
  ///   Running --notify-->  Armed (task loops instead of exiting)
  enum TaskState : int { kTaskIdle = 0, kTaskArmed = 1, kTaskRunning = 2 };
  /// Batches a drain task processes before resubmitting itself — bounds a
  /// busy shard's slice so co-scheduled plants share the pool fairly.
  static constexpr size_t kBatchesPerSlice = 4;

  void WorkerLoop(size_t shard_index);
  /// Executor mode: arms shard `shard_index`'s drain task (no-op when one
  /// is already armed). Called after every successful Submit push.
  void NotifyShard(size_t shard_index);
  /// Executor mode: the pooled drain body for one shard.
  void DrainTask(size_t shard_index);
  /// Scores one drained batch on the calling thread and publishes the
  /// shard's progress counters. Shared by WorkerLoop, DrainTask, and the
  /// post-join straggler drain in Stop(). Three passes: health-gate in
  /// sample order (gate events forward here), one vectorized
  /// BatchMonitorBank::PushBatch over the admitted samples, then peer
  /// observation / alarm accounting / collector forwarding in sample
  /// order. Per-sensor event order is unchanged from the per-sample path.
  void ProcessBatch(size_t shard_index, std::vector<SensorSample>& batch);
  /// Pushes one event to the collector, counting it in forwarded_ only on
  /// success and in forward_failed_ (+ stats) otherwise.
  void ForwardToCollector(ScoredSample event);
  /// Health-gates one sample: forwards fault/recovery events, and reports
  /// whether to score it and whether its results may feed the collector.
  struct HealthGateResult {
    bool score = true;    ///< feed the sample to the monitor
    bool forward = true;  ///< let scores/alarms reach the collector
  };
  HealthGateResult HealthGate(const SensorSample& sample);
  /// Baseline-lifecycle transitions driven by the health gate: the first
  /// quarantined sample freezes the lane's baseline, the first admitted
  /// sample after quarantine thaws it (applying any reset a concept shift
  /// parked during the freeze). Call after HealthGate, before scoring.
  void SyncBaselineFreeze(Shard& shard, size_t lane, bool admitted);
  /// Feeds one scored sample to the lane's BOCPD detector; a confirmed
  /// shift is returned with the sample's timestamp stamped. When
  /// `deferred` is non-null the re-baseline is applied immediately
  /// (synchronous path); when null the caller sequences ApplyShiftReset
  /// itself (ProcessBatch applies it between PushBatch segments so
  /// post-confirm samples score against the new model, exactly as in
  /// synchronous mode).
  std::optional<core::BocpdShift> FeedBocpd(Shard& shard, size_t lane,
                                            const SensorSample& sample,
                                            bool* deferred);
  /// Re-baselines one lane from a confirmed shift's posterior (deferred
  /// while frozen) and bumps the shift counters. Returns whether the
  /// reset was parked for the thaw.
  bool ApplyShiftReset(Shard& shard, size_t lane,
                       const core::BocpdShift& shift);
  /// Builds and forwards one kConceptShift collector event.
  void ForwardShiftEvent(const SensorSample& sample,
                         const core::BocpdShift& shift);
  void ForwardEvent(StreamEventKind kind, const SensorSample& sample,
                    HealthSignal reason);
  /// Feeds one health-admitted sample to the peer-group monitor; a fired
  /// deviation is forwarded to the collector when `forward` allows it (a
  /// recovering channel still updates its peer state silently).
  void ObservePeers(const SensorSample& sample, bool forward);

  ShardedScorerOptions options_;
  StreamStats* stats_;
  BoundedQueue<ScoredSample>* collector_;
  SensorHealthTracker* health_;
  PeerGroupMonitor* peers_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Executor mode: pooled drain tasks currently submitted or running.
  /// Stop() waits for zero (release on task exit / acquire in the wait)
  /// before declaring the shards quiescent.
  std::atomic<uint64_t> tasks_in_flight_{0};
  std::atomic<uint64_t> forwarded_{0};
  std::atomic<uint64_t> forward_failed_{0};
  std::mutex flush_mu_;
  std::condition_variable flush_cv_;
  // Atomics: running() / Submit / ScoreNow read these from caller threads
  // while Stop() writes them from another (e.g. a watchdog or a test
  // harness tearing down mid-stream).
  std::atomic<bool> running_{false};
  std::atomic<bool> stopped_{false};
};

}  // namespace hod::stream

#endif  // HOD_STREAM_SHARDED_SCORER_H_
