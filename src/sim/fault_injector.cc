#include "sim/fault_injector.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

namespace hod::sim {

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDropout: return "dropout";
    case FaultKind::kStuckAt: return "stuck-at";
    case FaultKind::kNaNBurst: return "nan-burst";
    case FaultKind::kGainDrift: return "gain-drift";
    case FaultKind::kDuplicate: return "duplicate";
    case FaultKind::kClockSkew: return "clock-skew";
    case FaultKind::kLineOutage: return "line-outage";
    case FaultKind::kLevelShift: return "level-shift";
  }
  return "?";
}

FaultInjector::FaultInjector(FaultInjectorOptions options)
    : options_(std::move(options)), rng_(options_.seed) {
  if (options_.kinds.empty()) {
    // kLineOutage is deliberately absent: it only makes sense scheduled as
    // a correlated group (AddLineOutage), not drawn sensor by sensor.
    options_.kinds = {FaultKind::kDropout,   FaultKind::kStuckAt,
                      FaultKind::kNaNBurst,  FaultKind::kGainDrift,
                      FaultKind::kDuplicate, FaultKind::kClockSkew};
  }
}

Status FaultInjector::AddFault(const std::string& sensor_id,
                               FaultProfile profile) {
  if (sensor_id.empty()) return Status::InvalidArgument("empty sensor id");
  if (!(profile.duration > 0.0)) {
    return Status::InvalidArgument("fault duration must be positive");
  }
  faults_[sensor_id].push_back(ScheduledFault{profile, false, 0.0});
  FaultInterval interval;
  interval.sensor_id = sensor_id;
  interval.kind = profile.kind;
  interval.start = profile.start;
  interval.end = profile.start + profile.duration;
  ground_truth_.push_back(std::move(interval));
  std::sort(ground_truth_.begin(), ground_truth_.end(),
            [](const FaultInterval& a, const FaultInterval& b) {
              if (a.sensor_id != b.sensor_id) return a.sensor_id < b.sensor_id;
              return a.start < b.start;
            });
  return Status::Ok();
}

Status FaultInjector::PlanRandom(const std::vector<std::string>& sensor_ids,
                                 size_t count, ts::TimePoint window_start,
                                 ts::TimePoint window_end) {
  if (count > sensor_ids.size()) {
    return Status::InvalidArgument("more faults than sensors");
  }
  if (!(window_end > window_start)) {
    return Status::InvalidArgument("empty fault window");
  }
  std::vector<std::string> victims = sensor_ids;
  rng_.Shuffle(victims);
  victims.resize(count);
  std::sort(victims.begin(), victims.end());  // draw order independent of
                                              // the shuffle's tail
  for (const std::string& victim : victims) {
    FaultProfile profile;
    profile.kind =
        options_.kinds[rng_.NextBelow(options_.kinds.size())];
    const double max_duration =
        std::min(options_.max_duration, window_end - window_start);
    const double min_duration = std::min(options_.min_duration, max_duration);
    profile.duration = min_duration < max_duration
                           ? rng_.Uniform(min_duration, max_duration)
                           : min_duration;
    if (!(profile.duration > 0.0)) profile.duration = 1.0;
    profile.start =
        rng_.Uniform(window_start,
                     std::max(window_start + 1e-9,
                              window_end - profile.duration));
    profile.gain_rate = options_.gain_rate;
    profile.skew = options_.skew;
    HOD_RETURN_IF_ERROR(AddFault(victim, profile));
  }
  return Status::Ok();
}

Status FaultInjector::AddLineOutage(
    const std::vector<std::string>& sensor_ids, ts::TimePoint start,
    double duration) {
  if (sensor_ids.empty()) {
    return Status::InvalidArgument("line outage needs at least one sensor");
  }
  std::set<std::string> distinct(sensor_ids.begin(), sensor_ids.end());
  if (distinct.size() != sensor_ids.size()) {
    return Status::InvalidArgument("duplicate sensor id in line outage");
  }
  // Validate everything before scheduling anything: a rejected call must
  // not leave half a line faulted.
  if (distinct.count("") > 0) {
    return Status::InvalidArgument("empty sensor id");
  }
  if (!(duration > 0.0)) {
    return Status::InvalidArgument("fault duration must be positive");
  }
  FaultProfile profile;
  profile.kind = FaultKind::kLineOutage;
  profile.start = start;
  profile.duration = duration;
  for (const std::string& sensor_id : sensor_ids) {
    HOD_RETURN_IF_ERROR(AddFault(sensor_id, profile));
  }
  return Status::Ok();
}

Status FaultInjector::AddLevelShift(const std::string& sensor_id,
                                    ts::TimePoint start, double duration,
                                    double delta, double ramp) {
  if (sensor_id.empty()) return Status::InvalidArgument("empty sensor id");
  if (!(duration > 0.0)) {
    return Status::InvalidArgument("fault duration must be positive");
  }
  if (!std::isfinite(delta) || delta == 0.0) {
    return Status::InvalidArgument("level shift delta must be finite and "
                                   "nonzero");
  }
  if (!std::isfinite(ramp) || ramp < 0.0) {
    return Status::InvalidArgument("level shift ramp must be finite and "
                                   "non-negative");
  }
  FaultProfile profile;
  profile.kind = FaultKind::kLevelShift;
  profile.start = start;
  profile.duration = duration;
  profile.shift_delta = delta;
  profile.shift_ramp = ramp;
  return AddFault(sensor_id, profile);
}

std::vector<stream::SensorSample> FaultInjector::Apply(
    const stream::SensorSample& sample) {
  std::vector<stream::SensorSample> out;
  auto it = faults_.find(sample.sensor_id);
  if (it == faults_.end()) {
    out.push_back(sample);
    return out;
  }
  stream::SensorSample corrupted = sample;
  bool dropped = false;
  bool duplicated = false;
  for (ScheduledFault& fault : it->second) {
    if (!Active(fault.profile, sample.ts)) continue;
    switch (fault.profile.kind) {
      case FaultKind::kDropout:
      case FaultKind::kLineOutage:
        dropped = true;
        break;
      case FaultKind::kStuckAt:
        if (!fault.has_stuck_value) {
          fault.has_stuck_value = true;
          fault.stuck_value = corrupted.value;
        }
        corrupted.value = fault.stuck_value;
        break;
      case FaultKind::kNaNBurst:
        corrupted.value = std::numeric_limits<double>::quiet_NaN();
        break;
      case FaultKind::kGainDrift:
        corrupted.value *=
            1.0 + fault.profile.gain_rate * (sample.ts - fault.profile.start);
        break;
      case FaultKind::kDuplicate:
        duplicated = true;
        break;
      case FaultKind::kClockSkew:
        corrupted.ts -= fault.profile.skew;
        break;
      case FaultKind::kLevelShift: {
        const double ramp = fault.profile.shift_ramp;
        const double fraction =
            ramp <= 0.0
                ? 1.0
                : std::min(1.0, (sample.ts - fault.profile.start) / ramp);
        corrupted.value += fault.profile.shift_delta * fraction;
        break;
      }
    }
  }
  if (dropped) return out;
  out.push_back(corrupted);
  if (duplicated) out.push_back(corrupted);
  return out;
}

bool FaultInjector::IsFaulted(const std::string& sensor_id,
                              ts::TimePoint ts) const {
  auto it = faults_.find(sensor_id);
  if (it == faults_.end()) return false;
  for (const ScheduledFault& fault : it->second) {
    if (Active(fault.profile, ts)) return true;
  }
  return false;
}

}  // namespace hod::sim
