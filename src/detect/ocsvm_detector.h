#ifndef HOD_DETECT_OCSVM_DETECTOR_H_
#define HOD_DETECT_OCSVM_DETECTOR_H_

#include <cstdint>
#include <vector>

#include "detect/detector.h"
#include "detect/kmeans.h"

namespace hod::detect {

/// One-class SVM in the geometric framework of Eskin et al. 2002 —
/// Table 1 row 9, family DA, data types PTS + SSQ + TSS.
///
/// Implemented as support vector data description (SVDD, the sphere form
/// of the one-class SVM, equivalent to the Schoelkopf formulation under a
/// Gaussian kernel): find centers c_k and radius R minimizing
///   R^2 + 1/(nu*n) * sum_i max(0, min_k ||x_i - c_k||^2 - R^2)
/// by subgradient descent on z-scaled data. Several centers (one per
/// k-means seed cluster) handle multi-modal normality, matching Eskin's
/// cluster-based geometric framing. A point's outlierness grows with its
/// squared distance beyond the sphere.
struct OcsvmOptions {
  /// Upper bound on the training outlier fraction (sets the radius at the
  /// (1-nu) quantile of training distances after descent).
  double nu = 0.05;
  /// Spheres fitted (k-means initialization).
  size_t centers = 2;
  size_t epochs = 30;
  double learning_rate = 0.1;
  uint64_t seed = 42;
  /// Relative radius overshoot at which outlierness reaches 0.5.
  double margin_scale = 1.0;
};

class OcsvmDetector : public VectorDetector {
 public:
  explicit OcsvmDetector(OcsvmOptions options = {});

  std::string name() const override { return "OneClassSVM"; }

  Status Train(const std::vector<std::vector<double>>& data) override;

  StatusOr<std::vector<double>> Score(
      const std::vector<std::vector<double>>& data) const override;

  const std::vector<std::vector<double>>& centers() const { return centers_; }
  double radius_squared() const { return radius_sq_; }

 private:
  /// Squared distance to the nearest center of a z-scaled row.
  double NearestSq(const std::vector<double>& scaled) const;

  OcsvmOptions options_;
  ColumnScaler scaler_;
  std::vector<std::vector<double>> centers_;
  double radius_sq_ = 1.0;
  size_t dim_ = 0;
  bool trained_ = false;
};

}  // namespace hod::detect

#endif  // HOD_DETECT_OCSVM_DETECTOR_H_
