#ifndef HOD_HIERARCHY_LEVEL_H_
#define HOD_HIERARCHY_LEVEL_H_

#include <string_view>

#include "util/statusor.h"

namespace hod::hierarchy {

/// The five production levels of the paper's Fig. 2, ordered from the most
/// detailed view (phase) to the most complex scenario (production). The
/// numeric values match the circled numbers in the figure and are what the
/// global score counts over.
enum class ProductionLevel : int {
  kPhase = 1,           // multi-dimensional, high-resolution sensor data
  kJob = 2,             // setup + CAQ check: high-dimensional job vectors
  kEnvironment = 3,     // series measured alongside production (room temp)
  kProductionLine = 4,  // jobs over time: setups form a time series
  kProduction = 5,      // data from different machines
};

/// Number of levels in the hierarchy.
inline constexpr int kNumLevels = 5;

/// Human-readable name, e.g. "Phase Level".
std::string_view LevelName(ProductionLevel level);

/// Level above/below, or OutOfRange at the hierarchy's ends.
StatusOr<ProductionLevel> LevelAbove(ProductionLevel level);
StatusOr<ProductionLevel> LevelBelow(ProductionLevel level);

/// Integer value (1..5) of a level.
inline int LevelValue(ProductionLevel level) { return static_cast<int>(level); }

/// Level from its integer value, or OutOfRange.
StatusOr<ProductionLevel> LevelFromValue(int value);

}  // namespace hod::hierarchy

#endif  // HOD_HIERARCHY_LEVEL_H_
