#ifndef HOD_DETECT_SOM_DETECTOR_H_
#define HOD_DETECT_SOM_DETECTOR_H_

#include <cstdint>
#include <vector>

#include "detect/detector.h"
#include "detect/kmeans.h"

namespace hod::detect {

/// Self-organizing map for real-valued anomaly detection (Gonzalez &
/// Dasgupta 2003) — Table 1 row 10, family DA, data types PTS + SSQ + TSS.
///
/// A rows x cols grid of prototype vectors is trained on normal data with
/// the classic SOM update (winner + Gaussian neighborhood, both learning
/// rate and radius decaying over epochs). A test vector's outlierness
/// grows with its quantization error (distance to the best matching unit)
/// relative to the training error distribution.
struct SomOptions {
  size_t rows = 6;
  size_t cols = 6;
  size_t epochs = 30;
  double initial_learning_rate = 0.5;
  /// Initial neighborhood radius in grid units (0 = max(rows, cols)/2).
  double initial_radius = 0.0;
  uint64_t seed = 42;
  /// Quantization-error ratio above the training 95th percentile at which
  /// outlierness reaches 0.5.
  double error_scale = 1.0;
};

class SomDetector : public VectorDetector {
 public:
  explicit SomDetector(SomOptions options = {});

  std::string name() const override { return "SelfOrganizingMap"; }

  Status Train(const std::vector<std::vector<double>>& data) override;

  StatusOr<std::vector<double>> Score(
      const std::vector<std::vector<double>>& data) const override;

  /// Prototype vector of unit (r, c).
  const std::vector<double>& Prototype(size_t r, size_t c) const {
    return units_[r * options_.cols + c];
  }

 private:
  double QuantizationError(const std::vector<double>& scaled_row) const;

  SomOptions options_;
  ColumnScaler scaler_;
  std::vector<std::vector<double>> units_;
  double baseline_error_ = 1.0;  // training q95 quantization error
  size_t dim_ = 0;
  bool trained_ = false;
};

}  // namespace hod::detect

#endif  // HOD_DETECT_SOM_DETECTOR_H_
