// E10 — streaming ingestion & scoring throughput (hod::stream).
//
// The paper's §1/§5 calculation-speed requirement, applied to the online
// path: samples/sec through the StreamEngine as a function of shard count
// and micro-batch size. Emits the human-readable table on stdout and a
// machine-readable BENCH_STREAM.json in the working directory so the perf
// trajectory can be tracked across PRs.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "stream/engine.h"
#include "stream/queue.h"
#include "stream/router.h"
#include "stream/spsc_ring.h"
#include "util/rng.h"

namespace {

using hod::stream::BackpressurePolicy;
using hod::stream::ProducerHint;
using hod::stream::SensorSample;
using hod::stream::ShardQueue;
using hod::stream::StreamEngine;
using hod::stream::StreamEngineOptions;
using Clock = std::chrono::steady_clock;

struct RunResult {
  size_t shards = 0;
  size_t batch = 0;
  size_t samples = 0;
  double seconds = 0.0;
  double samples_per_sec = 0.0;
  uint64_t alarms = 0;
  ProducerHint hint = ProducerHint::kUnknown;
  std::string queue_kind;
};

/// Raw shard-queue throughput: one producer, one consumer, no scoring —
/// isolates exactly the hand-off the SPSC ring optimizes.
struct QueueCompareResult {
  double mpsc_per_sec = 0.0;
  double spsc_per_sec = 0.0;
  double speedup = 0.0;
};

std::string SensorId(size_t i) { return "sensor_" + std::to_string(i); }

/// Pre-generates the workload: `sensors` interleaved streams with sparse
/// fault bursts, flattened into ingest order.
std::vector<SensorSample> MakeWorkload(size_t sensors,
                                       size_t samples_per_sensor) {
  std::vector<std::vector<double>> streams(sensors);
  for (size_t i = 0; i < sensors; ++i) {
    hod::Rng rng(1000 + i);
    double noise = 0.0;
    streams[i].reserve(samples_per_sensor);
    const size_t fault_at = 2000 + (i * 137) % 1500;
    for (size_t t = 0; t < samples_per_sensor; ++t) {
      noise = 0.7 * noise + rng.Gaussian(0.0, 0.25);
      double value = 50.0 + noise;
      if (t >= fault_at && t < fault_at + 10) value += 6.0;
      streams[i].push_back(value);
    }
  }
  std::vector<SensorSample> workload;
  workload.reserve(sensors * samples_per_sensor);
  for (size_t t = 0; t < samples_per_sensor; ++t) {
    for (size_t i = 0; i < sensors; ++i) {
      workload.push_back({SensorId(i),
                          hod::hierarchy::ProductionLevel::kPhase,
                          static_cast<double>(t), streams[i][t]});
    }
  }
  return workload;
}

/// Pushes `total` samples through one queue on a dedicated producer thread
/// while the calling thread drains in batches of 64 — the shape of one
/// shard's ingest path at saturation. Returns samples/sec.
double BenchQueueOnce(ShardQueue<SensorSample>& queue, size_t total) {
  const SensorSample prototype{"sensor_0",
                               hod::hierarchy::ProductionLevel::kPhase, 0.0,
                               50.0};
  const auto start = Clock::now();
  std::thread producer([&queue, &prototype, total] {
    for (size_t i = 0; i < total; ++i) {
      SensorSample sample = prototype;
      sample.ts = static_cast<double>(i);
      (void)queue.Push(std::move(sample));
    }
    queue.Close();
  });
  std::vector<SensorSample> batch;
  batch.reserve(64);
  size_t popped = 0;
  while (queue.PopBatch(batch, 64)) {
    popped += batch.size();
    batch.clear();
  }
  producer.join();
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  return seconds > 0.0 && popped == total
             ? static_cast<double>(total) / seconds
             : 0.0;
}

QueueCompareResult RunQueueCompare(size_t total) {
  QueueCompareResult result;
  // Equal capacity, equal policy; only the implementation differs. One
  // throwaway warm-up lap each, then the measured lap.
  for (int lap = 0; lap < 2; ++lap) {
    hod::stream::BoundedQueue<SensorSample> mpsc(4096,
                                                 BackpressurePolicy::kBlock);
    result.mpsc_per_sec = BenchQueueOnce(mpsc, total);
  }
  for (int lap = 0; lap < 2; ++lap) {
    hod::stream::SpscRing<SensorSample> spsc(4096,
                                             BackpressurePolicy::kBlock);
    result.spsc_per_sec = BenchQueueOnce(spsc, total);
  }
  result.speedup = result.mpsc_per_sec > 0.0
                       ? result.spsc_per_sec / result.mpsc_per_sec
                       : 0.0;
  return result;
}

RunResult RunOnce(const std::vector<SensorSample>& workload, size_t sensors,
                  size_t shards, size_t batch, ProducerHint hint) {
  StreamEngineOptions options;
  options.num_shards = shards;
  options.max_batch = batch;
  options.queue_capacity = 4096;
  options.backpressure = BackpressurePolicy::kBlock;
  options.monitor.warmup = 256;
  options.producer_hint = hint;
  StreamEngine engine(options);
  for (size_t i = 0; i < sensors; ++i) {
    (void)engine.AddSensor(SensorId(i));
  }
  (void)engine.Start();

  // One producer per shard, each feeding exactly its shard's sensors (the
  // same stable hash the router uses) — models an upstream that partitions
  // traffic by sensor id, so ingest parallelizes with the shard count and
  // each queue runs single-producer/single-consumer.
  std::vector<std::vector<const SensorSample*>> per_shard(shards);
  for (const SensorSample& sample : workload) {
    per_shard[hod::stream::StableHash64(sample.sensor_id) % shards]
        .push_back(&sample);
  }

  const auto start = Clock::now();
  std::vector<std::thread> producers;
  producers.reserve(shards);
  for (size_t p = 0; p < shards; ++p) {
    producers.emplace_back([&engine, &per_shard, p] {
      for (const SensorSample* sample : per_shard[p]) {
        (void)engine.Ingest(*sample);
      }
    });
  }
  for (auto& producer : producers) producer.join();
  (void)engine.Stop();  // drains everything
  const auto end = Clock::now();

  RunResult result;
  result.shards = shards;
  result.batch = batch;
  result.samples = workload.size();
  result.seconds = std::chrono::duration<double>(end - start).count();
  result.samples_per_sec =
      result.seconds > 0.0 ? static_cast<double>(result.samples) /
                                 result.seconds
                           : 0.0;
  result.alarms = engine.stats().alarms_raised;
  result.hint = hint;
  result.queue_kind =
      hint == ProducerHint::kSinglePerShard ? "spsc" : "mpsc";
  return result;
}

}  // namespace

int main() {
  hod::bench::PrintHeader(
      "E10", "Streaming ingestion & scoring throughput",
      "§1/§5 calculation-speed requirement, online path (hod::stream)");

  constexpr size_t kSensors = 64;
  constexpr size_t kSamplesPerSensor = 6000;
  const std::vector<SensorSample> workload =
      MakeWorkload(kSensors, kSamplesPerSensor);
  std::printf("\nWorkload: %zu sensors x %zu samples = %zu total\n", kSensors,
              kSamplesPerSensor, workload.size());

  // Queue-level comparison first: one producer + one consumer against each
  // implementation at equal capacity. This is the hand-off the SPSC ring
  // replaces, with the scoring cost stripped away.
  hod::bench::PrintSection("shard queue: SPSC ring vs MPSC mutex queue");
  const QueueCompareResult queue_compare = RunQueueCompare(1'000'000);
  std::printf("mpsc (BoundedQueue)  %-14.0f samples/sec\n",
              queue_compare.mpsc_per_sec);
  std::printf("spsc (SpscRing)      %-14.0f samples/sec\n",
              queue_compare.spsc_per_sec);
  std::printf("speedup              %.2fx\n", queue_compare.speedup);

  const std::vector<size_t> shard_counts = {1, 2, 4, 8};
  const std::vector<size_t> batch_sizes = {1, 16, 64};
  std::vector<RunResult> results;

  hod::bench::PrintSection("samples/sec by shard count, batch size and queue");
  std::printf("%-8s %-8s %-8s %-14s %-10s %s\n", "shards", "batch", "queue",
              "samples/sec", "seconds", "alarms");
  for (ProducerHint hint :
       {ProducerHint::kUnknown, ProducerHint::kSinglePerShard}) {
    for (size_t shards : shard_counts) {
      for (size_t batch : batch_sizes) {
        RunResult result = RunOnce(workload, kSensors, shards, batch, hint);
        results.push_back(result);
        std::printf("%-8zu %-8zu %-8s %-14.0f %-10.3f %llu\n", result.shards,
                    result.batch, result.queue_kind.c_str(),
                    result.samples_per_sec, result.seconds,
                    static_cast<unsigned long long>(result.alarms));
      }
    }
  }

  // Scaling summary at the largest batch size (the intended operating
  // point): throughput relative to 1 shard.
  hod::bench::PrintSection("scaling vs 1 shard (batch=64)");
  double base = 0.0;
  for (const RunResult& result : results) {
    if (result.batch != 64 || result.hint != ProducerHint::kUnknown) continue;
    if (result.shards == 1) base = result.samples_per_sec;
    std::printf("shards=%zu  %.2fx\n", result.shards,
                base > 0.0 ? result.samples_per_sec / base : 0.0);
  }

  std::ofstream json("BENCH_STREAM.json");
  json << "{\n  \"experiment\": \"stream_throughput\",\n"
       << "  \"sensors\": " << kSensors << ",\n"
       << "  \"samples_total\": " << workload.size() << ",\n"
       << "  \"queue_compare\": {\"mpsc_per_sec\": "
       << static_cast<uint64_t>(queue_compare.mpsc_per_sec)
       << ", \"spsc_per_sec\": "
       << static_cast<uint64_t>(queue_compare.spsc_per_sec)
       << ", \"speedup\": " << queue_compare.speedup << "},\n"
       << "  \"runs\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    json << "    {\"shards\": " << r.shards << ", \"batch\": " << r.batch
         << ", \"queue\": \"" << r.queue_kind << "\""
         << ", \"samples_per_sec\": " << static_cast<uint64_t>(r.samples_per_sec)
         << ", \"seconds\": " << r.seconds << ", \"alarms\": " << r.alarms
         << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  json.close();
  std::printf("\nWrote BENCH_STREAM.json\n");
  return 0;
}
