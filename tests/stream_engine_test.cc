#include "stream/engine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "core/monitor.h"
#include "util/rng.h"

namespace hod::stream {
namespace {

using hierarchy::ProductionLevel;

/// A deterministic chamber-temperature-like stream with one fault burst.
std::vector<double> MakeStream(uint64_t seed, size_t n, size_t fault_at,
                               size_t fault_len, double fault_mag) {
  Rng rng(seed);
  std::vector<double> values;
  values.reserve(n);
  double noise = 0.0;
  for (size_t t = 0; t < n; ++t) {
    noise = 0.7 * noise + rng.Gaussian(0.0, 0.25);
    double value = 55.0 + noise;
    if (t >= fault_at && t < fault_at + fault_len) value += fault_mag;
    values.push_back(value);
  }
  return values;
}

StreamEngineOptions SyncOptions() {
  StreamEngineOptions options;
  options.synchronous = true;
  options.monitor.warmup = 64;
  return options;
}

TEST(StreamEngine, SynchronousScoresMatchPlainOnlineMonitorExactly) {
  StreamEngineOptions options = SyncOptions();
  StreamEngine engine(options);
  ASSERT_TRUE(engine.AddSensor("s1", ProductionLevel::kPhase).ok());
  ASSERT_TRUE(engine.Start().ok());

  core::OnlineMonitor reference(options.monitor);
  const std::vector<double> values = MakeStream(11, 600, 400, 8, 5.0);
  for (size_t t = 0; t < values.size(); ++t) {
    SensorSample sample{"s1", ProductionLevel::kPhase,
                        static_cast<double>(t), values[t]};
    auto ack = engine.Ingest(sample);
    ASSERT_TRUE(ack.ok()) << ack.status().ToString();
    ASSERT_TRUE(ack->update.has_value());
    auto expected = reference.Push(values[t]);
    ASSERT_TRUE(expected.ok());
    // Byte-identical scoring: the engine runs the same OnlineMonitor code
    // on the same sample sequence.
    EXPECT_DOUBLE_EQ(ack->update->score, expected->score) << "t=" << t;
    EXPECT_EQ(ack->update->alarm, expected->alarm) << "t=" << t;
    EXPECT_EQ(ack->update->alarm_raised, expected->alarm_raised);
    EXPECT_EQ(ack->update->alarm_cleared, expected->alarm_cleared);
  }
  ASSERT_TRUE(engine.Stop().ok());
  auto probe = engine.Probe("s1");
  ASSERT_TRUE(probe.ok());
  EXPECT_EQ(probe->samples_seen, values.size());
  EXPECT_EQ(probe->alarms_raised, reference.alarms_raised());
  EXPECT_GE(probe->alarms_raised, 1u) << "the fault burst must alarm";
}

TEST(StreamEngine, RejectsInvalidSamplesWithTypedCounters) {
  StreamEngine engine(SyncOptions());
  ASSERT_TRUE(engine.AddSensor("s1", ProductionLevel::kPhase).ok());
  ASSERT_TRUE(engine.Start().ok());

  auto nan = engine.Ingest(
      {"s1", ProductionLevel::kPhase, 0.0, std::nan("")});
  EXPECT_EQ(nan.status().code(), StatusCode::kInvalidArgument);
  auto inf = engine.Ingest({"s1", ProductionLevel::kPhase, 1.0,
                            std::numeric_limits<double>::infinity()});
  EXPECT_EQ(inf.status().code(), StatusCode::kInvalidArgument);
  auto unknown =
      engine.Ingest({"nope", ProductionLevel::kPhase, 2.0, 1.0});
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
  auto wrong_level =
      engine.Ingest({"s1", ProductionLevel::kEnvironment, 3.0, 1.0});
  EXPECT_EQ(wrong_level.status().code(), StatusCode::kInvalidArgument);

  ASSERT_TRUE(engine.Ingest({"s1", ProductionLevel::kPhase, 10.0, 1.0}).ok());
  auto stale = engine.Ingest({"s1", ProductionLevel::kPhase, 4.0, 1.0});
  EXPECT_EQ(stale.status().code(), StatusCode::kOutOfRange);

  StreamStatsSnapshot stats = engine.stats();
  EXPECT_EQ(stats.rejected_non_finite, 2u);
  EXPECT_EQ(stats.rejected_unknown_sensor, 1u);
  EXPECT_EQ(stats.rejected_level_mismatch, 1u);
  EXPECT_EQ(stats.rejected_out_of_order, 1u);
  EXPECT_EQ(stats.rejected_total(), 5u);
  EXPECT_EQ(stats.ingested, 1u);
  EXPECT_EQ(stats.scored, 1u);
}

TEST(StreamEngine, OutOfOrderToleranceAdmitsSlightRegression) {
  StreamEngineOptions options = SyncOptions();
  options.out_of_order_tolerance = 2.0;
  StreamEngine engine(options);
  ASSERT_TRUE(engine.AddSensor("s1", ProductionLevel::kPhase).ok());
  ASSERT_TRUE(engine.Start().ok());
  ASSERT_TRUE(engine.Ingest({"s1", ProductionLevel::kPhase, 10.0, 1.0}).ok());
  // 1.5 s behind the frontier: inside tolerance.
  EXPECT_TRUE(engine.Ingest({"s1", ProductionLevel::kPhase, 8.5, 1.0}).ok());
  // 3 s behind: rejected.
  EXPECT_FALSE(engine.Ingest({"s1", ProductionLevel::kPhase, 7.0, 1.0}).ok());
  EXPECT_EQ(engine.stats().rejected_out_of_order, 1u);
}

TEST(StreamEngine, LifecycleGuards) {
  StreamEngine engine(SyncOptions());
  EXPECT_FALSE(engine.Start().ok()) << "no sensors registered";
  ASSERT_TRUE(engine.AddSensor("s1").ok());
  EXPECT_FALSE(engine.Ingest({"s1", ProductionLevel::kPhase, 0.0, 1.0}).ok())
      << "not started";
  ASSERT_TRUE(engine.Start().ok());
  EXPECT_FALSE(engine.AddSensor("s2").ok()) << "registry sealed";
  EXPECT_FALSE(engine.Start().ok()) << "double start";
  ASSERT_TRUE(engine.Stop().ok());
  ASSERT_TRUE(engine.Stop().ok()) << "Stop is idempotent";
  EXPECT_FALSE(engine.Ingest({"s1", ProductionLevel::kPhase, 0.0, 1.0}).ok());
}

TEST(StreamEngine, DuplicateSensorRegistrationFails) {
  StreamEngine engine(SyncOptions());
  ASSERT_TRUE(engine.AddSensor("s1").ok());
  EXPECT_FALSE(engine.AddSensor("s1").ok());
}

TEST(StreamEngine, AlarmTransitionsFeedAlertEpisodes) {
  StreamEngineOptions options = SyncOptions();
  StreamEngine engine(options);
  ASSERT_TRUE(engine.AddSensor("m1.bed_temp", ProductionLevel::kPhase).ok());
  ASSERT_TRUE(engine.Start().ok());
  const std::vector<double> values = MakeStream(13, 600, 300, 10, 6.0);
  for (size_t t = 0; t < values.size(); ++t) {
    ASSERT_TRUE(engine
                    .Ingest({"m1.bed_temp", ProductionLevel::kPhase,
                             static_cast<double>(t), values[t]})
                    .ok());
  }
  ASSERT_TRUE(engine.Flush().ok());

  StreamStatsSnapshot stats = engine.stats();
  EXPECT_GE(stats.alarms_raised, 1u);
  std::vector<core::AlertEpisode> episodes = engine.Episodes();
  ASSERT_FALSE(episodes.empty());
  EXPECT_EQ(episodes[0].entity, "m1.bed_temp");
  EXPECT_GT(episodes[0].peak_outlierness, 0.5);
  // The 10-sample burst merges into one episode, not ten.
  EXPECT_EQ(episodes.size(), 1u);
}

TEST(StreamEngine, SnapshotTracksPerLevelOutlierState) {
  StreamEngineOptions options = SyncOptions();
  options.snapshot_every = 1;
  StreamEngine engine(options);
  ASSERT_TRUE(
      engine.AddSensor("room_temp", ProductionLevel::kEnvironment).ok());
  ASSERT_TRUE(engine.Start().ok());
  // End the stream inside the fault so the alarm is still active.
  const std::vector<double> values = MakeStream(17, 520, 500, 20, 6.0);
  for (size_t t = 0; t < values.size(); ++t) {
    ASSERT_TRUE(engine
                    .Ingest({"room_temp", ProductionLevel::kEnvironment,
                             static_cast<double>(t), values[t]})
                    .ok());
  }
  ASSERT_TRUE(engine.Flush().ok());

  EngineSnapshot snapshot = engine.Snapshot();
  ASSERT_GT(snapshot.sequence, 0u);
  const LevelOutlierState& environment =
      snapshot.levels[hierarchy::LevelValue(ProductionLevel::kEnvironment) -
                      1];
  EXPECT_GE(environment.alarms_raised, 1u);
  EXPECT_GT(environment.outlier_samples, 0u);
  EXPECT_GT(environment.peak_score, 0.5);
  EXPECT_EQ(environment.active_alarms, 1u);
  ASSERT_EQ(snapshot.active_alarms.size(), 1u);
  EXPECT_EQ(snapshot.active_alarms[0].sensor_id, "room_temp");
  EXPECT_EQ(snapshot.active_alarms[0].level, ProductionLevel::kEnvironment);
  // Untouched levels stay zero.
  const LevelOutlierState& phase =
      snapshot.levels[hierarchy::LevelValue(ProductionLevel::kPhase) - 1];
  EXPECT_EQ(phase.outlier_samples, 0u);
  EXPECT_EQ(phase.alarms_raised, 0u);
}

TEST(StreamEngine, SyncStatsAreExact) {
  StreamEngineOptions options = SyncOptions();
  // This test feeds a perfectly constant stream, which the health layer
  // would (correctly) quarantine as a flatline; here we only care about
  // the accounting, so fault tolerance is off.
  options.health.enabled = false;
  StreamEngine engine(options);
  ASSERT_TRUE(engine.AddSensor("s1").ok());
  ASSERT_TRUE(engine.Start().ok());
  for (size_t t = 0; t < 200; ++t) {
    ASSERT_TRUE(engine
                    .Ingest({"s1", ProductionLevel::kPhase,
                             static_cast<double>(t), 55.0})
                    .ok());
  }
  StreamStatsSnapshot stats = engine.stats();
  EXPECT_EQ(stats.ingested, 200u);
  EXPECT_EQ(stats.scored, 200u);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.rejected_total(), 0u);
  // Synchronous mode scores one sample per "batch".
  EXPECT_EQ(stats.batch_size_histogram[0], 200u);
}

TEST(StableHash64, IsStableAcrossRuns) {
  // Pinned values: shard assignment must never change between versions,
  // or per-sensor stream ordering silently breaks on rolling restarts.
  EXPECT_EQ(StableHash64(""), 14695981039346656037ull);
  EXPECT_EQ(StableHash64("a"), 12638187200555641996ull);
  EXPECT_EQ(StableHash64("m1.bed_temp_a") % 4,
            StableHash64("m1.bed_temp_a") % 4);
}

}  // namespace
}  // namespace hod::stream
