#ifndef HOD_DETECT_VIBRATION_SIGNATURE_H_
#define HOD_DETECT_VIBRATION_SIGNATURE_H_

#include <vector>

#include "detect/detector.h"

namespace hod::detect {

/// Vibration-signature analysis (Nairac et al. 1999, jet-engine vibration)
/// — Table 1 row 3, family DA, data types PTS + TSS.
///
/// Each window of the signal is summarized by its normalized spectral band
/// energies (the "signature"); training learns the mean signature and the
/// per-band spread over normal windows. Scoring measures the Mahalanobis-
/// style distance of a window's signature from the learned envelope.
struct VibrationSignatureOptions {
  size_t window = 64;
  size_t stride = 16;
  size_t bands = 8;
  /// Score scale: band distance (in pooled sigmas) at which outlierness
  /// reaches 0.5.
  double sigma_scale = 3.0;
};

class VibrationSignatureDetector : public SeriesDetector {
 public:
  explicit VibrationSignatureDetector(VibrationSignatureOptions options = {});

  std::string name() const override { return "VibrationSignature"; }

  Status Train(const std::vector<ts::TimeSeries>& normal) override;

  StatusOr<std::vector<double>> Score(
      const ts::TimeSeries& series) const override;

  /// Learned reference signature (band energies summing to 1).
  const std::vector<double>& reference_signature() const { return mean_; }

 private:
  VibrationSignatureOptions options_;
  std::vector<double> mean_;
  std::vector<double> stddev_;
  bool trained_ = false;
};

}  // namespace hod::detect

#endif  // HOD_DETECT_VIBRATION_SIGNATURE_H_
