#include "timeseries/rolling.h"

#include <gtest/gtest.h>

#include "timeseries/stats.h"
#include "util/rng.h"

namespace hod::ts {
namespace {

TEST(RollingWindow, EmptyIsZero) {
  RollingWindow window(4);
  EXPECT_EQ(window.size(), 0u);
  EXPECT_DOUBLE_EQ(window.mean(), 0.0);
  EXPECT_DOUBLE_EQ(window.variance(), 0.0);
  EXPECT_DOUBLE_EQ(window.median(), 0.0);
  EXPECT_DOUBLE_EQ(window.min(), 0.0);
  EXPECT_DOUBLE_EQ(window.max(), 0.0);
}

TEST(RollingWindow, FillsToCapacityThenEvicts) {
  RollingWindow window(3);
  window.Add(1.0);
  window.Add(2.0);
  EXPECT_FALSE(window.full());
  window.Add(3.0);
  EXPECT_TRUE(window.full());
  EXPECT_DOUBLE_EQ(window.front(), 1.0);
  window.Add(4.0);  // evicts 1
  EXPECT_EQ(window.size(), 3u);
  EXPECT_DOUBLE_EQ(window.front(), 2.0);
  EXPECT_DOUBLE_EQ(window.back(), 4.0);
  EXPECT_DOUBLE_EQ(window.mean(), 3.0);
}

TEST(RollingWindow, StatsMatchBatchComputation) {
  RollingWindow window(16);
  Rng rng(3);
  std::vector<double> last16;
  for (int i = 0; i < 100; ++i) {
    const double x = rng.Gaussian(5.0, 2.0);
    window.Add(x);
    last16.push_back(x);
    if (last16.size() > 16) last16.erase(last16.begin());
    EXPECT_NEAR(window.mean(), Mean(last16), 1e-9);
    EXPECT_NEAR(window.variance(), Variance(last16), 1e-9);
    EXPECT_NEAR(window.min(), Min(last16), 1e-12);
    EXPECT_NEAR(window.max(), Max(last16), 1e-12);
    EXPECT_NEAR(window.median(), Median(last16), 1e-12);
  }
}

TEST(RollingWindow, MedianEvenAndOdd) {
  RollingWindow window(5);
  window.Add(3.0);
  EXPECT_DOUBLE_EQ(window.median(), 3.0);
  window.Add(1.0);
  EXPECT_DOUBLE_EQ(window.median(), 2.0);  // {1,3}
  window.Add(2.0);
  EXPECT_DOUBLE_EQ(window.median(), 2.0);  // {1,2,3}
  window.Add(2.0);
  EXPECT_DOUBLE_EQ(window.median(), 2.0);  // {1,2,2,3}
  window.Add(10.0);
  EXPECT_DOUBLE_EQ(window.median(), 2.0);  // {1,2,2,3,10}
}

TEST(RollingWindow, DuplicateValuesEvictCorrectly) {
  RollingWindow window(3);
  window.Add(5.0);
  window.Add(5.0);
  window.Add(5.0);
  window.Add(5.0);  // evicts one 5, still three 5s
  EXPECT_DOUBLE_EQ(window.median(), 5.0);
  EXPECT_DOUBLE_EQ(window.min(), 5.0);
  window.Add(1.0);  // {5,5,1}
  window.Add(1.0);  // {5,1,1}
  EXPECT_DOUBLE_EQ(window.median(), 1.0);
  EXPECT_DOUBLE_EQ(window.max(), 5.0);
  window.Add(1.0);  // {1,1,1}
  EXPECT_DOUBLE_EQ(window.max(), 1.0);
}

TEST(RollingWindow, ZeroCapacityClampedToOne) {
  RollingWindow window(0);
  window.Add(1.0);
  window.Add(2.0);
  EXPECT_EQ(window.size(), 1u);
  EXPECT_DOUBLE_EQ(window.back(), 2.0);
}

TEST(RollingWindow, ClearEmpties) {
  RollingWindow window(4);
  window.Add(1.0);
  window.Add(2.0);
  window.Clear();
  EXPECT_EQ(window.size(), 0u);
  EXPECT_DOUBLE_EQ(window.mean(), 0.0);
  window.Add(7.0);
  EXPECT_DOUBLE_EQ(window.mean(), 7.0);
}

TEST(RollingWindow, VarianceNeverNegative) {
  RollingWindow window(8);
  for (int i = 0; i < 50; ++i) {
    window.Add(1e9 + 0.0001 * i);  // catastrophic-cancellation territory
    EXPECT_GE(window.variance(), 0.0);
  }
}

}  // namespace
}  // namespace hod::ts
