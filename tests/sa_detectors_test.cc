// SA-family (supervised) detectors: rule learning, MLP, rule classifier.

#include <gtest/gtest.h>

#include "detect/mlp_detector.h"
#include "detect/rule_classifier.h"
#include "detect/rule_learning.h"
#include "detector_test_util.h"
#include "eval/metrics.h"

namespace hod::detect {
namespace {

using detect_test::CanonicalPoints;
using detect_test::CanonicalSequences;
using detect_test::ExpectAnomaliesScoreHigher;
using detect_test::ExpectScoresInUnitInterval;

TEST(RuleLearning, RefusesUnsupervisedTraining) {
  RuleLearningDetector detector;
  EXPECT_TRUE(detector.supervised());
  EXPECT_EQ(detector.Train({}).code(), StatusCode::kFailedPrecondition);
}

TEST(RuleLearning, LearnsRulesFromLabels) {
  const auto dataset = CanonicalSequences();
  RuleLearningDetector detector;
  ASSERT_TRUE(
      detector.TrainSupervised(dataset.train, dataset.train_labels).ok());
  EXPECT_GT(detector.num_rules(), 0u);
}

TEST(RuleLearning, FlagsCorruptedBursts) {
  const auto dataset = CanonicalSequences();
  RuleLearningDetector detector;
  ASSERT_TRUE(
      detector.TrainSupervised(dataset.train, dataset.train_labels).ok());
  for (size_t s = 0; s < dataset.test.size(); ++s) {
    auto scores = detector.Score(dataset.test[s]);
    ASSERT_TRUE(scores.ok());
    ExpectScoresInUnitInterval(scores.value());
    ExpectAnomaliesScoreHigher(scores.value(), dataset.test_labels[s], 0.05);
  }
}

TEST(RuleLearning, RejectsMismatchedLabels) {
  RuleLearningDetector detector;
  ts::DiscreteSequence seq("x", 2, {0, 1, 0});
  EXPECT_FALSE(detector.TrainSupervised({seq}, {}).ok());
  EXPECT_FALSE(detector.TrainSupervised({seq}, {{0, 1}}).ok());
}

TEST(Mlp, RefusesUnsupervisedTraining) {
  MlpDetector detector;
  EXPECT_TRUE(detector.supervised());
  EXPECT_EQ(detector.Train({{1.0}}).code(), StatusCode::kFailedPrecondition);
}

TEST(Mlp, LearnsDisplacedPoints) {
  const auto dataset = CanonicalPoints();
  MlpDetector detector;
  ASSERT_TRUE(
      detector.TrainSupervised(dataset.train, dataset.train_labels).ok());
  auto scores = detector.Score(dataset.test);
  ASSERT_TRUE(scores.ok());
  ExpectScoresInUnitInterval(scores.value());
  auto auc = eval::RocAuc(scores.value(), dataset.test_labels);
  EXPECT_GT(auc.value(), 0.9);
  EXPECT_LT(detector.train_loss(), 0.7);
}

TEST(Mlp, RequiresBothClasses) {
  MlpDetector detector;
  const std::vector<std::vector<double>> data = {{1.0}, {2.0}};
  EXPECT_FALSE(detector.TrainSupervised(data, {0, 0}).ok());
  EXPECT_FALSE(detector.TrainSupervised(data, {1, 1}).ok());
  EXPECT_FALSE(detector.TrainSupervised(data, {1}).ok());  // size mismatch
}

TEST(Mlp, DimensionMismatchRejected) {
  const auto dataset = CanonicalPoints();
  MlpDetector detector;
  ASSERT_TRUE(
      detector.TrainSupervised(dataset.train, dataset.train_labels).ok());
  EXPECT_FALSE(detector.Score({{1.0}}).ok());
}

TEST(RuleClassifier, LearnsInterpretableRules) {
  const auto dataset = CanonicalPoints();
  RuleClassifierDetector detector;
  ASSERT_TRUE(
      detector.TrainSupervised(dataset.train, dataset.train_labels).ok());
  ASSERT_FALSE(detector.rules().empty());
  for (const IntervalRule& rule : detector.rules()) {
    EXPECT_GT(rule.gain, 0.0);
    EXPECT_GE(rule.confidence, 0.0);
    EXPECT_LE(rule.confidence, 1.0);
  }
}

TEST(RuleClassifier, SeparatesObviousSplit) {
  // Anomalies live strictly above x = 10.
  std::vector<std::vector<double>> data;
  Labels labels;
  for (int i = 0; i < 100; ++i) {
    data.push_back({static_cast<double>(i % 10)});
    labels.push_back(0);
  }
  for (int i = 0; i < 10; ++i) {
    data.push_back({20.0 + i});
    labels.push_back(1);
  }
  RuleClassifierDetector detector;
  ASSERT_TRUE(detector.TrainSupervised(data, labels).ok());
  auto scores = detector.Score({{5.0}, {25.0}}).value();
  EXPECT_LT(scores[0], 0.3);
  EXPECT_GT(scores[1], 0.7);
}

TEST(RuleClassifier, RefusesUnsupervised) {
  RuleClassifierDetector detector;
  EXPECT_EQ(detector.Train({{1.0}}).code(),
            StatusCode::kFailedPrecondition);
}

TEST(RuleClassifier, PointsFiringNoRuleTakeBaseRate) {
  std::vector<std::vector<double>> data;
  Labels labels;
  for (int i = 0; i < 60; ++i) {
    data.push_back({static_cast<double>(i % 6)});
    labels.push_back(0);
  }
  for (int i = 0; i < 6; ++i) {
    data.push_back({50.0});
    labels.push_back(1);
  }
  RuleClassifierDetector detector(
      RuleClassifierOptions{.candidate_thresholds = 8, .min_coverage = 2});
  ASSERT_TRUE(detector.TrainSupervised(data, labels).ok());
  ExpectScoresInUnitInterval(detector.Score(data).value());
}

}  // namespace
}  // namespace hod::detect
