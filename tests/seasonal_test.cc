#include "timeseries/seasonal.h"

#include <gtest/gtest.h>

#include <cmath>

#include "timeseries/stats.h"
#include "util/rng.h"

namespace hod::ts {
namespace {

std::vector<double> Cycle(size_t n, size_t period, double amplitude,
                          uint64_t seed, double noise_sigma = 0.1) {
  Rng rng(seed);
  std::vector<double> values(n);
  for (size_t i = 0; i < n; ++i) {
    values[i] = amplitude * std::sin(2.0 * M_PI * static_cast<double>(i) /
                                     static_cast<double>(period)) +
                rng.Gaussian(0.0, noise_sigma);
  }
  return values;
}

TEST(Deseasonalize, RemovesExactCycle) {
  std::vector<double> values = Cycle(400, 8, 5.0, 1, /*noise_sigma=*/0.0);
  auto result = Deseasonalize(values, 8).value();
  EXPECT_EQ(result.seasonal.size(), 8u);
  for (double v : result.adjusted) EXPECT_NEAR(v, 0.0, 1e-9);
}

TEST(Deseasonalize, ReducesVarianceOnNoisyCycle) {
  std::vector<double> values = Cycle(800, 16, 3.0, 2, /*noise_sigma=*/0.5);
  auto result = Deseasonalize(values, 16).value();
  EXPECT_LT(StdDev(result.adjusted), 0.4 * StdDev(values));
  // Residual noise level survives.
  EXPECT_NEAR(StdDev(result.adjusted), 0.5, 0.1);
}

TEST(Deseasonalize, PreservesAnomalies) {
  std::vector<double> values = Cycle(400, 8, 5.0, 3, /*noise_sigma=*/0.0);
  values[100] += 4.0;
  auto result = Deseasonalize(values, 8).value();
  // The spike survives (slightly shrunk by its own leverage on the phase
  // mean: 4 * (1 - 1/50)).
  EXPECT_GT(result.adjusted[100], 3.5);
}

TEST(Deseasonalize, RejectsBadPeriod) {
  const std::vector<double> values(10, 0.0);
  EXPECT_FALSE(Deseasonalize(values, 0).ok());
  EXPECT_FALSE(Deseasonalize(values, 11).ok());
  EXPECT_TRUE(Deseasonalize(values, 10).ok());
}

TEST(DominantPeriod, FindsTruePeriod) {
  std::vector<double> values = Cycle(1000, 24, 2.0, 4, /*noise_sigma=*/0.3);
  auto period = DominantPeriod(values, 2, 64).value();
  EXPECT_EQ(period, 24u);
}

TEST(DominantPeriod, WhiteNoiseHasNone) {
  Rng rng(5);
  std::vector<double> values(1000);
  for (double& v : values) v = rng.NextGaussian();
  auto period = DominantPeriod(values, 2, 64).value();
  EXPECT_EQ(period, 0u);
}

TEST(DominantPeriod, RejectsBadBounds) {
  const std::vector<double> values(100, 0.0);
  EXPECT_FALSE(DominantPeriod(values, 1, 10).ok());
  EXPECT_FALSE(DominantPeriod(values, 10, 5).ok());
  EXPECT_FALSE(DominantPeriod(values, 2, 100).ok());
}

TEST(DominantPeriod, ComposesWithDeseasonalize) {
  std::vector<double> values = Cycle(1200, 32, 4.0, 6, /*noise_sigma=*/0.4);
  const size_t period = DominantPeriod(values, 2, 100).value();
  ASSERT_EQ(period, 32u);
  auto result = Deseasonalize(values, period).value();
  EXPECT_LT(StdDev(result.adjusted), 0.3 * StdDev(values));
}

}  // namespace
}  // namespace hod::ts
