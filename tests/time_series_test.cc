#include "timeseries/time_series.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace hod::ts {
namespace {

TEST(TimeSeries, BasicAccessors) {
  TimeSeries s("temp", 100.0, 0.5, {1.0, 2.0, 3.0});
  EXPECT_EQ(s.name(), "temp");
  EXPECT_EQ(s.size(), 3u);
  EXPECT_FALSE(s.empty());
  EXPECT_DOUBLE_EQ(s[1], 2.0);
  EXPECT_DOUBLE_EQ(s.TimeAt(0), 100.0);
  EXPECT_DOUBLE_EQ(s.TimeAt(2), 101.0);
  EXPECT_DOUBLE_EQ(s.end_time(), 101.5);
}

TEST(TimeSeries, AppendGrows) {
  TimeSeries s("x", 0.0, 1.0);
  EXPECT_TRUE(s.empty());
  s.Append(5.0);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s[0], 5.0);
}

TEST(TimeSeries, IndexAtMapsTimesToSamples) {
  TimeSeries s("x", 10.0, 2.0, {0, 0, 0, 0});
  EXPECT_EQ(s.IndexAt(10.0).value(), 0u);
  EXPECT_EQ(s.IndexAt(11.9).value(), 0u);
  EXPECT_EQ(s.IndexAt(12.0).value(), 1u);
  EXPECT_EQ(s.IndexAt(17.9).value(), 3u);
  EXPECT_FALSE(s.IndexAt(9.9).ok());
  EXPECT_FALSE(s.IndexAt(18.0).ok());
}

TEST(TimeSeries, SliceAdjustsStartTime) {
  TimeSeries s("x", 0.0, 1.0, {1, 2, 3, 4, 5});
  auto slice = s.Slice(2, 4);
  ASSERT_TRUE(slice.ok());
  EXPECT_EQ(slice->size(), 2u);
  EXPECT_DOUBLE_EQ(slice->start_time(), 2.0);
  EXPECT_DOUBLE_EQ((*slice)[0], 3.0);
}

TEST(TimeSeries, SliceRejectsBadRanges) {
  TimeSeries s("x", 0.0, 1.0, {1, 2, 3});
  EXPECT_FALSE(s.Slice(2, 1).ok());
  EXPECT_FALSE(s.Slice(0, 4).ok());
  EXPECT_TRUE(s.Slice(3, 3).ok());  // empty slice at the end is legal
}

TEST(TimeSeries, ValidateCatchesBadInterval) {
  TimeSeries s("x", 0.0, 0.0, {1.0});
  EXPECT_FALSE(s.Validate().ok());
  TimeSeries t("x", 0.0, -1.0, {1.0});
  EXPECT_FALSE(t.Validate().ok());
}

TEST(TimeSeries, ValidateCatchesNonFiniteValues) {
  TimeSeries s("x", 0.0, 1.0, {1.0, std::nan(""), 2.0});
  EXPECT_FALSE(s.Validate().ok());
  TimeSeries inf("x", 0.0, 1.0,
                 {1.0, std::numeric_limits<double>::infinity()});
  EXPECT_FALSE(inf.Validate().ok());
  TimeSeries good("x", 0.0, 1.0, {1.0, 2.0});
  EXPECT_TRUE(good.Validate().ok());
}

TEST(FeatureVector, GetByName) {
  FeatureVector v({"a", "b"}, {1.0, 2.0});
  EXPECT_DOUBLE_EQ(v.Get("b").value(), 2.0);
  EXPECT_FALSE(v.Get("c").ok());
  EXPECT_EQ(v.size(), 2u);
  EXPECT_DOUBLE_EQ(v[0], 1.0);
}

TEST(FeatureVector, ValidateCatchesMismatch) {
  FeatureVector bad({"a"}, {1.0, 2.0});
  EXPECT_FALSE(bad.Validate().ok());
  FeatureVector nan_vec({"a"}, {std::nan("")});
  EXPECT_FALSE(nan_vec.Validate().ok());
  FeatureVector good({"a", "b"}, {1.0, 2.0});
  EXPECT_TRUE(good.Validate().ok());
}

}  // namespace
}  // namespace hod::ts
