#include "detect/profile_similarity.h"

#include <algorithm>
#include <cmath>

#include "timeseries/sax.h"

namespace hod::detect {

ProfileSimilarityDetector::ProfileSimilarityDetector(
    ProfileSimilarityOptions options)
    : options_(options) {}

Status ProfileSimilarityDetector::Train(
    const std::vector<ts::TimeSeries>& normal) {
  if (options_.profile_length == 0) {
    return Status::InvalidArgument("profile_length must be > 0");
  }
  std::vector<std::vector<double>> profiles;
  for (const ts::TimeSeries& series : normal) {
    HOD_RETURN_IF_ERROR(series.Validate());
    if (series.size() < options_.profile_length) {
      return Status::InvalidArgument(
          "training series shorter than profile length");
    }
    HOD_ASSIGN_OR_RETURN(std::vector<double> profile,
                         ts::Paa(series.values(), options_.profile_length));
    profiles.push_back(std::move(profile));
  }
  if (profiles.empty()) {
    return Status::InvalidArgument("no training series");
  }
  const size_t p = options_.profile_length;
  mean_.assign(p, 0.0);
  sigma_.assign(p, 0.0);
  for (const auto& profile : profiles) {
    for (size_t i = 0; i < p; ++i) mean_[i] += profile[i];
  }
  for (size_t i = 0; i < p; ++i) {
    mean_[i] /= static_cast<double>(profiles.size());
  }
  for (const auto& profile : profiles) {
    for (size_t i = 0; i < p; ++i) {
      const double d = profile[i] - mean_[i];
      sigma_[i] += d * d;
    }
  }
  for (size_t i = 0; i < p; ++i) {
    sigma_[i] = std::sqrt(sigma_[i] / static_cast<double>(profiles.size()));
    sigma_[i] = std::max(sigma_[i], options_.min_sigma);
  }
  trained_ = true;
  return Status::Ok();
}

StatusOr<std::vector<double>> ProfileSimilarityDetector::Score(
    const ts::TimeSeries& series) const {
  if (!trained_) return Status::FailedPrecondition("detector not trained");
  HOD_RETURN_IF_ERROR(series.Validate());
  const size_t n = series.size();
  std::vector<double> scores(n, 0.0);
  if (n == 0) return scores;
  const size_t p = options_.profile_length;
  for (size_t i = 0; i < n; ++i) {
    // Position in profile coordinates.
    const size_t pos = std::min(i * p / n, p - 1);
    const double z = std::fabs(series[i] - mean_[pos]) / sigma_[pos];
    const double excess = z - 2.0;  // two envelope sigmas of slack
    scores[i] =
        excess <= 0.0 ? 0.0 : excess / (excess + options_.sigma_scale);
  }
  return scores;
}

}  // namespace hod::detect
