#include "detect/var_detector.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace hod::detect {
namespace {

/// Two coupled channels: y follows x with lag 1 (y_t = 0.9 x_{t-1} + eps).
std::vector<ts::TimeSeries> CoupledChannels(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n);
  std::vector<double> y(n);
  double state = 0.0;
  for (size_t t = 0; t < n; ++t) {
    state = 0.7 * state + rng.Gaussian(0.0, 0.5);
    x[t] = state;
    y[t] = (t > 0 ? 0.9 * x[t - 1] : 0.0) + rng.Gaussian(0.0, 0.1);
  }
  return {ts::TimeSeries("x", 0, 1, std::move(x)),
          ts::TimeSeries("y", 0, 1, std::move(y))};
}

TEST(Var, RecoversCouplingCoefficient) {
  VarDetector detector;
  ASSERT_TRUE(detector
                  .Train({CoupledChannels(2000, 1), CoupledChannels(2000, 2)})
                  .ok());
  ASSERT_EQ(detector.num_channels(), 2u);
  // y's equation: coefficient on lagged x ~ 0.9, on lagged y ~ 0.
  EXPECT_NEAR(detector.transition()[1][0], 0.9, 0.05);
  EXPECT_NEAR(detector.transition()[1][1], 0.0, 0.1);
  // x's own AR coefficient ~ 0.7.
  EXPECT_NEAR(detector.transition()[0][0], 0.7, 0.08);
}

TEST(Var, CatchesCrossChannelViolation) {
  VarDetector detector;
  ASSERT_TRUE(detector.Train({CoupledChannels(2000, 3)}).ok());
  auto channels = CoupledChannels(300, 4);
  // Break the relationship at t=150: y gets a value its own history and
  // x's history do not explain.
  channels[1].mutable_values()[150] += 2.0;
  auto scores = detector.Score(channels).value();
  EXPECT_GT(scores[150], 0.6);
  double max_elsewhere = 0.0;
  for (size_t t = 0; t < scores.size(); ++t) {
    if (t < 149 || t > 152) max_elsewhere = std::max(max_elsewhere, scores[t]);
  }
  EXPECT_GT(scores[150], max_elsewhere);
}

TEST(Var, JointAnomalyInvisibleToMarginalsIsCaught) {
  // Flip the SIGN of the coupling at one step: both values stay well
  // inside their marginal ranges, but y contradicts what x's history
  // dictates — only a joint model can see it.
  VarDetector detector;
  ASSERT_TRUE(detector.Train({CoupledChannels(3000, 5)}).ok());
  auto channels = CoupledChannels(400, 6);
  channels[0].mutable_values()[199] = 1.2;  // in-range x excursion
  channels[1].mutable_values()[200] =
      -0.9 * 1.2;  // y mirrors x with the WRONG sign (in-range value)
  auto z = detector.ResidualZ(channels).value();
  double typical = 0.0;
  size_t count = 0;
  for (size_t t = 1; t < z.size(); ++t) {
    if (t < 198 || t > 203) {
      typical += z[t];
      ++count;
    }
  }
  typical /= static_cast<double>(count);
  EXPECT_GT(z[200], 4.0 * typical)
      << "coupling violation must dominate the residual";
}

TEST(Var, ScoresBounded) {
  VarDetector detector;
  ASSERT_TRUE(detector.Train({CoupledChannels(500, 7)}).ok());
  auto channels = CoupledChannels(200, 8);
  channels[0].mutable_values()[50] = 1e6;
  auto scores = detector.Score(channels).value();
  for (double s : scores) {
    EXPECT_TRUE(std::isfinite(s));
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(Var, RejectsBadInput) {
  VarDetector detector;
  EXPECT_FALSE(detector.Train({}).ok());
  // Misaligned channels.
  std::vector<ts::TimeSeries> ragged = {
      ts::TimeSeries("a", 0, 1, {1, 2, 3}),
      ts::TimeSeries("b", 0, 1, {1, 2})};
  EXPECT_FALSE(detector.Train({ragged}).ok());
  // Channel-count mismatch at scoring.
  ASSERT_TRUE(detector.Train({CoupledChannels(300, 9)}).ok());
  EXPECT_FALSE(
      detector.Score({ts::TimeSeries("a", 0, 1, {1, 2, 3})}).ok());
}

TEST(Var, UntrainedScoreRejected) {
  VarDetector detector;
  EXPECT_EQ(detector.Score(CoupledChannels(100, 10)).status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace hod::detect
