#include "sim/datasets.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace hod::sim {

StatusOr<PointDataset> GeneratePointDataset(
    const PointDatasetOptions& options) {
  if (options.dim == 0) return Status::InvalidArgument("dim must be > 0");
  Rng rng(options.seed);
  PointDataset dataset;

  // Two cluster centers at +/- 4 along alternating axes.
  std::vector<std::vector<double>> centers(2,
                                           std::vector<double>(options.dim));
  for (size_t d = 0; d < options.dim; ++d) {
    centers[0][d] = (d % 2 == 0) ? 4.0 : -2.0;
    centers[1][d] = (d % 2 == 0) ? -4.0 : 2.0;
  }
  auto emit = [&](size_t count, std::vector<std::vector<double>>* out,
                  LabelVector* labels) {
    for (size_t i = 0; i < count; ++i) {
      const auto& center = centers[rng.NextBelow(2)];
      std::vector<double> point(options.dim);
      for (size_t d = 0; d < options.dim; ++d) {
        point[d] = center[d] + rng.NextGaussian();
      }
      const bool anomalous = rng.NextBernoulli(options.anomaly_rate);
      if (anomalous) {
        // Displace along a random unit direction.
        std::vector<double> direction(options.dim);
        double norm = 0.0;
        for (size_t d = 0; d < options.dim; ++d) {
          direction[d] = rng.NextGaussian();
          norm += direction[d] * direction[d];
        }
        norm = std::sqrt(std::max(norm, 1e-12));
        for (size_t d = 0; d < options.dim; ++d) {
          point[d] += options.magnitude * direction[d] / norm;
        }
      }
      out->push_back(std::move(point));
      labels->push_back(anomalous ? 1 : 0);
    }
  };
  emit(options.train_size, &dataset.train, &dataset.train_labels);
  emit(options.test_size, &dataset.test, &dataset.test_labels);
  return dataset;
}

StatusOr<SequenceDataset> GenerateSequenceDataset(
    const SequenceDatasetOptions& options) {
  if (options.alphabet < 3) {
    return Status::InvalidArgument("alphabet must be >= 3");
  }
  Rng rng(options.seed);
  SequenceDataset dataset;

  // Cyclic grammar over symbols 0..alphabet-2 (the last symbol is
  // reserved as "rare"): position i emits (i + phase) % cycle with a small
  // substitution rate.
  const int cycle = options.alphabet - 1;
  auto emit_normal = [&](size_t length, ts::DiscreteSequence* sequence) {
    const int phase = static_cast<int>(rng.NextBelow(cycle));
    for (size_t i = 0; i < length; ++i) {
      ts::Symbol symbol =
          static_cast<ts::Symbol>((static_cast<int>(i) + phase) % cycle);
      if (rng.NextBernoulli(options.benign_substitution_rate)) {
        symbol = static_cast<ts::Symbol>(rng.NextBelow(cycle));
      }
      sequence->Append(symbol);
    }
  };

  for (size_t s = 0; s < options.train_sequences; ++s) {
    ts::DiscreteSequence sequence("train" + std::to_string(s),
                                  options.alphabet);
    emit_normal(options.length, &sequence);
    LabelVector labels(options.length, 0);
    // A minority of training sequences carry labeled anomalies so the
    // supervised family has positives to learn from.
    if (s % 3 == 0 && options.length > options.burst_length + 16) {
      const size_t start =
          8 + rng.NextBelow(options.length - options.burst_length - 16);
      for (size_t i = start; i < start + options.burst_length; ++i) {
        sequence.mutable_symbol(i) = static_cast<ts::Symbol>(
            options.alphabet - 1);  // grammar-violating rare symbol
        labels[i] = 1;
      }
    }
    dataset.train.push_back(std::move(sequence));
    dataset.train_labels.push_back(std::move(labels));
  }

  for (size_t s = 0; s < options.test_sequences; ++s) {
    ts::DiscreteSequence sequence("test" + std::to_string(s),
                                  options.alphabet);
    emit_normal(options.length, &sequence);
    LabelVector labels(options.length, 0);
    // Expected number of corrupted bursts from the per-position rate.
    const double expected_bursts =
        options.anomaly_rate * static_cast<double>(options.length) /
        static_cast<double>(options.burst_length);
    const size_t bursts = std::max<size_t>(
        1, static_cast<size_t>(std::lround(expected_bursts)));
    for (size_t b = 0; b < bursts; ++b) {
      if (options.length <= options.burst_length + 16) break;
      const size_t start =
          8 + rng.NextBelow(options.length - options.burst_length - 16);
      for (size_t i = start; i < start + options.burst_length; ++i) {
        // Burst symbols: either the rare symbol or a shuffled grammar
        // symbol (out-of-order), both violating local structure.
        sequence.mutable_symbol(i) =
            rng.NextBernoulli(0.5)
                ? static_cast<ts::Symbol>(options.alphabet - 1)
                : static_cast<ts::Symbol>(rng.NextBelow(cycle));
        labels[i] = 1;
      }
    }
    dataset.test.push_back(std::move(sequence));
    dataset.test_labels.push_back(std::move(labels));
  }
  return dataset;
}

StatusOr<SeriesDataset> GenerateSeriesDataset(
    const SeriesDatasetOptions& options) {
  if (options.length < 64) {
    return Status::InvalidArgument("series length must be >= 64");
  }
  Rng rng(options.seed);
  SeriesDataset dataset;

  auto emit_base = [&](const std::string& name) {
    std::vector<double> values(options.length);
    const double innovation_sigma =
        options.sigma *
        std::sqrt(1.0 - options.ar_coefficient * options.ar_coefficient);
    double noise = rng.Gaussian(0.0, options.sigma);
    for (size_t i = 0; i < options.length; ++i) {
      values[i] = options.seasonal_amplitude *
                      std::sin(2.0 * M_PI * static_cast<double>(i) /
                               options.seasonal_period) +
                  noise;
      noise = options.ar_coefficient * noise +
              rng.Gaussian(0.0, innovation_sigma);
    }
    return ts::TimeSeries(name, 0.0, 1.0, std::move(values));
  };

  for (size_t s = 0; s < options.train_series; ++s) {
    dataset.train.push_back(emit_base("train" + std::to_string(s)));
    dataset.train_labels.emplace_back(options.length, 0);
  }
  size_t type_cursor = 0;
  for (size_t s = 0; s < options.test_series; ++s) {
    ts::TimeSeries series = emit_base("test" + std::to_string(s));
    LabelVector labels(options.length, 0);
    for (size_t a = 0; a < options.anomalies_per_series; ++a) {
      InjectionSpec injection;
      injection.type = options.only_type != nullptr
                           ? *options.only_type
                           : AllOutlierTypes()[type_cursor++ %
                                               AllOutlierTypes().size()];
      injection.position = 16 + rng.NextBelow(options.length - 48);
      injection.magnitude = options.magnitude * options.sigma *
                            (rng.NextBernoulli(0.5) ? 1.0 : -1.0);
      injection.ar_coefficient = options.ar_coefficient;
      HOD_RETURN_IF_ERROR(
          Inject(injection, series.mutable_values(), labels));
    }
    dataset.test.push_back(std::move(series));
    dataset.test_labels.push_back(std::move(labels));
  }
  return dataset;
}

StatusOr<WholeSeriesDataset> GenerateWholeSeriesDataset(
    size_t train_series, size_t test_series, double anomaly_fraction,
    uint64_t seed) {
  Rng rng(seed);
  WholeSeriesDataset dataset;
  const size_t length = 256;
  auto emit = [&](bool anomalous, const std::string& name) {
    std::vector<double> values(length);
    // Normal: one dominant period; anomalous: different period + phase
    // spike structure.
    const double period = anomalous ? 23.0 : 40.0;
    const double amplitude = anomalous ? 3.5 : 2.5;
    for (size_t i = 0; i < length; ++i) {
      values[i] = amplitude * std::sin(2.0 * M_PI *
                                       static_cast<double>(i) / period) +
                  rng.Gaussian(0.0, 0.6);
    }
    return ts::TimeSeries(name, 0.0, 1.0, std::move(values));
  };
  for (size_t s = 0; s < train_series; ++s) {
    dataset.train.push_back(emit(false, "train" + std::to_string(s)));
  }
  for (size_t s = 0; s < test_series; ++s) {
    const bool anomalous = rng.NextBernoulli(anomaly_fraction);
    dataset.test.push_back(emit(anomalous, "test" + std::to_string(s)));
    dataset.test_labels.push_back(anomalous ? 1 : 0);
  }
  return dataset;
}

}  // namespace hod::sim
