#ifndef HOD_DETECT_DISTANCE_H_
#define HOD_DETECT_DISTANCE_H_

#include <cmath>
#include <cstddef>
#include <vector>

#include "util/simd.h"
#include "util/statusor.h"

namespace hod::detect {

/// Shared squared-Euclidean kernel for the batch detectors. One
/// implementation replaces the four duplicated `Distance` /
/// `SquaredDistance` helpers that used to live in knn_detector.cc,
/// lof_detector.cc, kmeans.cc, and single_linkage.cc — each of which
/// iterated over `a.size()` with no dimension check, so a longer first
/// argument read past the end of the second.
///
/// Two layers:
///  - pointer kernels: the hot path. The caller has validated dimensions
///    once at its own boundary (Train/Score reject ragged or mismatched
///    rows) and guarantees both arrays hold `n` doubles. Dispatched to the
///    vectorized backend (util/simd.h); summation order is deterministic
///    but may differ from the scalar reference by blocked accumulation.
///  - checked overloads: the kernel boundary for callers whose operand
///    shapes are not structurally guaranteed. Mismatched dimensions return
///    InvalidArgument instead of reading out of bounds.

/// sum (a[i]-b[i])^2 over n dimensions. Caller guarantees sizes.
inline double SquaredDistance(const double* a, const double* b, size_t n) {
  return util::simd::SquaredL2(a, b, n);
}

/// Euclidean distance over n dimensions. Caller guarantees sizes.
inline double Distance(const double* a, const double* b, size_t n) {
  return std::sqrt(util::simd::SquaredL2(a, b, n));
}

/// Scalar left-to-right reference kernel (parity tests, bench baseline).
inline double SquaredDistanceReference(const double* a, const double* b,
                                       size_t n) {
  return util::simd::SquaredL2Reference(a, b, n);
}

/// Checked boundary: InvalidArgument on dimension mismatch.
StatusOr<double> SquaredDistance(const std::vector<double>& a,
                                 const std::vector<double>& b);
StatusOr<double> Distance(const std::vector<double>& a,
                          const std::vector<double>& b);

}  // namespace hod::detect

#endif  // HOD_DETECT_DISTANCE_H_
