// E5 — Fig. 3: research fields of outlier detection.
//
// The paper charts Web-of-Science article counts for eight detection
// synonyms, each filtered with "time series" and then refined to the
// "automation control systems" category. Web of Science is not available
// offline, so the same query pipeline runs against a synthetic
// bibliographic corpus calibrated to the field's shape (see DESIGN.md);
// the bars' ordering and proportions are the reproduced result.

#include "bench_util.h"
#include "biblio/corpus.h"

int main() {
  using namespace hod;
  bench::PrintHeader("E5", "Research fields of outlier detection",
                     "Fig. 3 (literature counts)");

  biblio::CorpusOptions options;
  options.records = 60000;
  options.seed = 13;
  const biblio::Corpus corpus = biblio::GenerateResearchCorpus(options);
  std::cout << "Corpus: " << corpus.size()
            << " synthetic bibliographic records (substitute for Web of "
               "Science; see DESIGN.md)\n";

  const auto rows = biblio::RunFig3Queries(corpus);
  bench::PrintSection(
      "Counts per query term (AND \"time series\"; refined by category)");
  Table table({"Field", "Time Series", "+ Automation Control Systems"});
  size_t max_count = 1;
  for (const auto& row : rows) {
    max_count = std::max(max_count, row.time_series_count);
  }
  for (const auto& row : rows) {
    table.AddRow({row.field, std::to_string(row.time_series_count),
                  std::to_string(row.automation_count)});
  }
  table.Print(std::cout);

  bench::PrintSection("Bar chart (each # ~ 2% of the tallest bar)");
  for (const auto& row : rows) {
    const size_t bar =
        row.time_series_count * 50 / max_count;
    const size_t acs_bar = row.automation_count * 50 / max_count;
    std::printf("%-24s |%s\n", row.field.c_str(),
                std::string(bar, '#').c_str());
    std::printf("%-24s |%s\n", "  (automation control)",
                std::string(acs_bar, '=').c_str());
  }
  std::cout << "\nExpected shape (as in the paper's figure): anomaly "
               "detection dominates,\nfault detection second and strongest "
               "under the automation-control filter,\ndeviant discovery "
               "near zero.\n";
  return 0;
}
