#ifndef HOD_DETECT_MATCH_COUNT_H_
#define HOD_DETECT_MATCH_COUNT_H_

#include <vector>

#include "detect/detector.h"

namespace hod::detect {

/// Match-count sequence similarity (Lane & Brodley 1997) — Table 1 row 1,
/// family DA, data type SSQ.
///
/// Training stores the library of length-`window` symbol windows observed
/// in normal sequences. A test window's similarity is the best positional
/// match fraction against the library (optionally smoothed over the top-k
/// matches); its outlierness is 1 - similarity. Position scores are the
/// maximum over covering windows.
struct MatchCountOptions {
  size_t window = 8;
  /// Similarity is averaged over the best `smoothing_k` library matches to
  /// be robust against a single accidental near-match.
  size_t smoothing_k = 3;
  /// Training windows are deduplicated; libraries larger than this are
  /// subsampled deterministically to bound scoring cost.
  size_t max_library = 4096;
};

class MatchCountDetector : public SequenceDetector {
 public:
  explicit MatchCountDetector(MatchCountOptions options = {});

  std::string name() const override { return "MatchCountSequenceSimilarity"; }

  Status Train(const std::vector<ts::DiscreteSequence>& normal) override;

  StatusOr<std::vector<double>> Score(
      const ts::DiscreteSequence& sequence) const override;

 private:
  MatchCountOptions options_;
  std::vector<std::vector<ts::Symbol>> library_;
  bool trained_ = false;
};

}  // namespace hod::detect

#endif  // HOD_DETECT_MATCH_COUNT_H_
