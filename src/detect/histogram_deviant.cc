#include "detect/histogram_deviant.h"

#include <algorithm>
#include <cmath>

#include "timeseries/stats.h"

namespace hod::detect {

HistogramDeviantDetector::HistogramDeviantDetector(
    HistogramDeviantOptions options)
    : options_(options) {}

double HistogramDeviantDetector::Reduce(const std::vector<double>& row) const {
  if (row.size() == 1) return row[0];
  double sq = 0.0;
  for (double v : row) sq += v * v;
  return std::sqrt(sq);
}

size_t HistogramDeviantDetector::BucketOf(double v) const {
  if (v <= lo_) return 0;
  if (v >= hi_) return buckets_.size() - 1;
  const double width = (hi_ - lo_) / static_cast<double>(buckets_.size());
  return std::min(static_cast<size_t>((v - lo_) / width),
                  buckets_.size() - 1);
}

Status HistogramDeviantDetector::Train(
    const std::vector<std::vector<double>>& data) {
  if (data.empty()) {
    return Status::InvalidArgument("histogram on empty data");
  }
  if (options_.buckets == 0) {
    return Status::InvalidArgument("buckets must be > 0");
  }
  dim_ = data[0].size();
  std::vector<double> values;
  values.reserve(data.size());
  for (const auto& row : data) {
    if (row.size() != dim_) {
      return Status::InvalidArgument("ragged data in histogram train");
    }
    values.push_back(Reduce(row));
  }
  lo_ = ts::Min(values);
  hi_ = ts::Max(values);
  if (hi_ <= lo_) hi_ = lo_ + 1.0;
  // Widen slightly so training extremes do not sit on the boundary.
  const double margin = 0.05 * (hi_ - lo_);
  lo_ -= margin;
  hi_ += margin;

  buckets_.assign(options_.buckets, {});
  const double width = (hi_ - lo_) / static_cast<double>(options_.buckets);
  for (size_t b = 0; b < buckets_.size(); ++b) {
    buckets_[b].lo = lo_ + width * static_cast<double>(b);
    buckets_[b].hi = buckets_[b].lo + width;
  }
  for (double v : values) {
    Bucket& bucket = buckets_[BucketOf(v)];
    ++bucket.count;
    bucket.mean += v;
  }
  for (Bucket& bucket : buckets_) {
    if (bucket.count > 0) bucket.mean /= static_cast<double>(bucket.count);
  }
  for (double v : values) {
    Bucket& bucket = buckets_[BucketOf(v)];
    const double d = v - bucket.mean;
    bucket.sse += d * d;
  }
  // Typical per-point representation error.
  double total_sse = 0.0;
  for (const Bucket& bucket : buckets_) total_sse += bucket.sse;
  typical_error_ = total_sse / static_cast<double>(values.size());
  if (typical_error_ <= 0.0) typical_error_ = 1e-9;
  total_count_ = values.size();
  trained_ = true;
  return Status::Ok();
}

StatusOr<std::vector<double>> HistogramDeviantDetector::Score(
    const std::vector<std::vector<double>>& data) const {
  if (!trained_) return Status::FailedPrecondition("detector not trained");
  std::vector<double> scores(data.size(), 0.0);
  for (size_t i = 0; i < data.size(); ++i) {
    if (data[i].size() != dim_) {
      return Status::InvalidArgument("dimension mismatch in histogram score");
    }
    const double v = Reduce(data[i]);
    const Bucket& bucket = buckets_[BucketOf(v)];
    // Error this point adds to the bucket's representation: its squared
    // deviation from the bucket representative (the deviant-deletion
    // gain). Points beyond the trained range use distance to the range.
    double deviation;
    if (v < lo_) {
      deviation = lo_ - v + (bucket.count > 0 ? std::fabs(bucket.mean - lo_) : 0.0);
    } else if (v > hi_) {
      deviation = v - hi_ + (bucket.count > 0 ? std::fabs(hi_ - bucket.mean) : 0.0);
    } else if (bucket.count == 0) {
      // Empty bucket: distance to the nearest populated bucket mean.
      deviation = hi_ - lo_;
      for (const Bucket& other : buckets_) {
        if (other.count > 0) {
          deviation = std::min(deviation, std::fabs(v - other.mean));
        }
      }
    } else {
      deviation = std::fabs(v - bucket.mean);
    }
    const double gain = deviation * deviation / typical_error_;
    const double gain_excess = gain - 1.0;
    const double gain_score =
        gain_excess <= 0.0 ? 0.0
                           : gain_excess / (gain_excess + options_.gain_scale);
    // Rarity term: a point in a (near-)empty bucket is a deviant even when
    // close to that bucket's few members — deleting it (and reallocating
    // the bucket) improves the representation. Expected occupancy under a
    // uniform spread is n/buckets.
    const double expected_occupancy =
        static_cast<double>(total_count_) /
        static_cast<double>(buckets_.size());
    const double occupancy_excess =
        expected_occupancy / (static_cast<double>(bucket.count) + 1.0) - 1.0;
    const double rarity_score =
        occupancy_excess <= 0.0
            ? 0.0
            : occupancy_excess / (occupancy_excess + options_.gain_scale);
    scores[i] = std::max(gain_score, rarity_score);
  }
  return scores;
}

}  // namespace hod::detect
