#ifndef HOD_TIMESERIES_RESAMPLE_H_
#define HOD_TIMESERIES_RESAMPLE_H_

#include <vector>

#include "timeseries/time_series.h"
#include "util/statusor.h"

namespace hod::ts {

/// How consecutive samples are combined when rolling a high-resolution
/// series up to a lower-resolution production level (phase -> job -> line).
enum class Aggregation {
  kMean,
  kMin,
  kMax,
  kLast,
  kSum,
  kStdDev,
};

/// Downsamples `series` by `factor` (>= 1): each output sample aggregates
/// `factor` consecutive inputs; a trailing partial group is aggregated too.
/// This implements the paper's CAQ rule that data is assigned to a higher
/// hierarchy level when it has lower resolution.
StatusOr<TimeSeries> Downsample(const TimeSeries& series, size_t factor,
                                Aggregation how);

/// Aggregates a whole series to a single value.
double AggregateAll(const std::vector<double>& values, Aggregation how);

/// Returns the overlap [max(start), min(end)) of two series as index ranges
/// into each, or NotFound when they do not overlap in time. Used by support
/// computation to compare corresponding sensors sample-by-sample.
struct AlignedRange {
  size_t a_begin = 0;
  size_t b_begin = 0;
  size_t length = 0;
};
StatusOr<AlignedRange> AlignByTime(const TimeSeries& a, const TimeSeries& b);

}  // namespace hod::ts

#endif  // HOD_TIMESERIES_RESAMPLE_H_
