// Property sweeps across every Table-1 technique:
//   * determinism — identical training data and inputs give identical
//     scores across independently constructed detectors;
//   * robustness — constant, short, and extreme inputs never crash, never
//     produce out-of-range or non-finite scores.
// Parameterized over the registry so a new technique is covered the day it
// is added.

#include <gtest/gtest.h>

#include <cmath>

#include "detect/registry.h"
#include "detector_test_util.h"
#include "hod.h"  // umbrella header must compile and suffice

namespace hod::detect {
namespace {

std::vector<int> SeriesRows() {
  std::vector<int> rows;
  for (const TechniqueInfo& info : Table1()) {
    if (info.mask.time_series && !info.supervised) rows.push_back(info.row);
  }
  return rows;
}

std::vector<int> VectorRows() {
  std::vector<int> rows;
  for (const TechniqueInfo& info : Table1()) {
    if (info.mask.points && !info.supervised) rows.push_back(info.row);
  }
  return rows;
}

std::string RowName(const ::testing::TestParamInfo<int>& info) {
  return "Row" + std::to_string(info.param);
}

class SeriesDetectorProperty : public ::testing::TestWithParam<int> {};

TEST_P(SeriesDetectorProperty, Deterministic) {
  sim::SeriesDatasetOptions options;
  options.seed = 42;
  const auto dataset = sim::GenerateSeriesDataset(options).value();
  auto a = MakeSeriesDetector(GetParam()).value();
  auto b = MakeSeriesDetector(GetParam()).value();
  ASSERT_TRUE(a->Train(dataset.train).ok());
  ASSERT_TRUE(b->Train(dataset.train).ok());
  for (const auto& series : dataset.test) {
    auto scores_a = a->Score(series).value();
    auto scores_b = b->Score(series).value();
    EXPECT_EQ(scores_a, scores_b) << a->name();
  }
}

TEST_P(SeriesDetectorProperty, ConstantSeriesHandled) {
  sim::SeriesDatasetOptions options;
  options.seed = 43;
  const auto dataset = sim::GenerateSeriesDataset(options).value();
  auto detector = MakeSeriesDetector(GetParam()).value();
  ASSERT_TRUE(detector->Train(dataset.train).ok());
  ts::TimeSeries flat("flat", 0.0, 1.0, std::vector<double>(300, 7.0));
  auto scores = detector->Score(flat);
  ASSERT_TRUE(scores.ok()) << detector->name() << ": "
                           << scores.status().ToString();
  for (double s : scores.value()) {
    EXPECT_TRUE(std::isfinite(s)) << detector->name();
    EXPECT_GE(s, 0.0) << detector->name();
    EXPECT_LE(s, 1.0) << detector->name();
  }
}

TEST_P(SeriesDetectorProperty, ExtremeValuesBounded) {
  sim::SeriesDatasetOptions options;
  options.seed = 44;
  const auto dataset = sim::GenerateSeriesDataset(options).value();
  auto detector = MakeSeriesDetector(GetParam()).value();
  ASSERT_TRUE(detector->Train(dataset.train).ok());
  ts::TimeSeries wild = dataset.test[0];
  wild.mutable_values()[100] = 1e9;
  wild.mutable_values()[200] = -1e9;
  auto scores = detector->Score(wild);
  ASSERT_TRUE(scores.ok()) << detector->name();
  for (double s : scores.value()) {
    EXPECT_TRUE(std::isfinite(s)) << detector->name();
    EXPECT_GE(s, 0.0) << detector->name();
    EXPECT_LE(s, 1.0) << detector->name();
  }
}

TEST_P(SeriesDetectorProperty, ShortSeriesDoesNotCrash) {
  sim::SeriesDatasetOptions options;
  options.seed = 45;
  const auto dataset = sim::GenerateSeriesDataset(options).value();
  auto detector = MakeSeriesDetector(GetParam()).value();
  ASSERT_TRUE(detector->Train(dataset.train).ok());
  ts::TimeSeries tiny("tiny", 0.0, 1.0, {1.0, 2.0, 1.5});
  auto scores = detector->Score(tiny);
  // Either a clean error or bounded scores; never a crash.
  if (scores.ok()) {
    for (double s : scores.value()) {
      EXPECT_TRUE(std::isfinite(s)) << detector->name();
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 1.0);
    }
  }
}

TEST_P(SeriesDetectorProperty, ConstantTrainingHandled) {
  // Training on constant data is degenerate but must not crash or emit
  // unbounded scores afterwards.
  std::vector<ts::TimeSeries> flat_training;
  for (int s = 0; s < 3; ++s) {
    flat_training.emplace_back("flat" + std::to_string(s), 0.0, 1.0,
                               std::vector<double>(256, 5.0));
  }
  auto detector = MakeSeriesDetector(GetParam()).value();
  const Status trained = detector->Train(flat_training);
  if (!trained.ok()) return;  // refusing degenerate data is acceptable
  ts::TimeSeries probe("p", 0.0, 1.0, std::vector<double>(128, 5.0));
  probe.mutable_values()[64] = 6.0;
  auto scores = detector->Score(probe);
  ASSERT_TRUE(scores.ok()) << detector->name();
  for (double s : scores.value()) {
    EXPECT_TRUE(std::isfinite(s)) << detector->name();
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllUnsupervisedTssRows, SeriesDetectorProperty,
                         ::testing::ValuesIn(SeriesRows()), RowName);

std::vector<int> SequenceRows() {
  std::vector<int> rows;
  for (const TechniqueInfo& info : Table1()) {
    if (info.mask.sequences && !info.supervised) rows.push_back(info.row);
  }
  return rows;
}

class SequenceDetectorProperty : public ::testing::TestWithParam<int> {};

TEST_P(SequenceDetectorProperty, Deterministic) {
  sim::SequenceDatasetOptions options;
  options.seed = 47;
  const auto dataset = sim::GenerateSequenceDataset(options).value();
  auto a = MakeSequenceDetector(GetParam()).value();
  auto b = MakeSequenceDetector(GetParam()).value();
  ASSERT_TRUE(a->Train(dataset.train).ok());
  ASSERT_TRUE(b->Train(dataset.train).ok());
  for (const auto& sequence : dataset.test) {
    EXPECT_EQ(a->Score(sequence).value(), b->Score(sequence).value())
        << a->name();
  }
}

TEST_P(SequenceDetectorProperty, ConstantSequenceHandled) {
  sim::SequenceDatasetOptions options;
  options.seed = 48;
  const auto dataset = sim::GenerateSequenceDataset(options).value();
  auto detector = MakeSequenceDetector(GetParam()).value();
  ASSERT_TRUE(detector->Train(dataset.train).ok());
  ts::DiscreteSequence constant("c", options.alphabet,
                                std::vector<ts::Symbol>(200, 0));
  auto scores = detector->Score(constant);
  ASSERT_TRUE(scores.ok()) << detector->name();
  for (double s : scores.value()) {
    EXPECT_TRUE(std::isfinite(s)) << detector->name();
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllUnsupervisedSsqRows, SequenceDetectorProperty,
                         ::testing::ValuesIn(SequenceRows()), RowName);

class VectorDetectorProperty : public ::testing::TestWithParam<int> {};

TEST_P(VectorDetectorProperty, Deterministic) {
  sim::PointDatasetOptions options;
  options.seed = 46;
  const auto dataset = sim::GeneratePointDataset(options).value();
  auto a = MakeVectorDetector(GetParam()).value();
  auto b = MakeVectorDetector(GetParam()).value();
  ASSERT_TRUE(a->Train(dataset.train).ok());
  ASSERT_TRUE(b->Train(dataset.train).ok());
  EXPECT_EQ(a->Score(dataset.test).value(), b->Score(dataset.test).value())
      << a->name();
}

TEST_P(VectorDetectorProperty, ConstantColumnHandled) {
  // One feature is constant across training — a common real-world
  // degeneracy (a stuck setpoint).
  std::vector<std::vector<double>> train;
  for (int i = 0; i < 100; ++i) {
    train.push_back({static_cast<double>(i % 7), 42.0});
  }
  auto detector = MakeVectorDetector(GetParam()).value();
  const Status trained = detector->Train(train);
  if (!trained.ok()) return;  // refusal is acceptable
  auto scores = detector->Score({{3.0, 42.0}, {3.0, 100.0}});
  ASSERT_TRUE(scores.ok()) << detector->name();
  for (double s : scores.value()) {
    EXPECT_TRUE(std::isfinite(s)) << detector->name();
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST_P(VectorDetectorProperty, UntrainedScoreIsCleanError) {
  auto detector = MakeVectorDetector(GetParam()).value();
  auto scores = detector->Score({{1.0}});
  EXPECT_FALSE(scores.ok()) << detector->name();
}

INSTANTIATE_TEST_SUITE_P(AllUnsupervisedPtsRows, VectorDetectorProperty,
                         ::testing::ValuesIn(VectorRows()), RowName);

}  // namespace
}  // namespace hod::detect
