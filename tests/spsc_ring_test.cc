#include "stream/spsc_ring.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "stream/queue.h"

namespace hod::stream {
namespace {

using QueueFactory = std::unique_ptr<ShardQueue<int>> (*)(
    size_t, BackpressurePolicy, std::chrono::milliseconds);

std::unique_ptr<ShardQueue<int>> MakeMpsc(
    size_t capacity, BackpressurePolicy policy,
    std::chrono::milliseconds timeout) {
  return std::make_unique<BoundedQueue<int>>(capacity, policy, timeout);
}

std::unique_ptr<ShardQueue<int>> MakeSpsc(
    size_t capacity, BackpressurePolicy policy,
    std::chrono::milliseconds timeout) {
  return std::make_unique<SpscRing<int>>(capacity, policy, timeout);
}

/// Conformance suite: both ShardQueue implementations must satisfy the
/// identical contract — FIFO order, backpressure policies, counters, and
/// close semantics — so the scorer can swap them by ProducerHint alone.
class ShardQueueConformance
    : public ::testing::TestWithParam<std::pair<const char*, QueueFactory>> {
 protected:
  std::unique_ptr<ShardQueue<int>> Make(
      size_t capacity,
      BackpressurePolicy policy = BackpressurePolicy::kBlock,
      std::chrono::milliseconds timeout = std::chrono::milliseconds(50)) {
    return GetParam().second(capacity, policy, timeout);
  }
};

TEST_P(ShardQueueConformance, KindMatchesImplementation) {
  auto queue = Make(4);
  EXPECT_EQ(queue->kind(), GetParam().first);
}

TEST_P(ShardQueueConformance, FifoWithinCapacity) {
  auto queue = Make(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(queue->Push(i).ok());
  EXPECT_EQ(queue->size(), 5u);
  std::vector<int> out;
  EXPECT_TRUE(queue->PopBatch(out, 16));
  ASSERT_EQ(out.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(out[static_cast<size_t>(i)], i);
}

TEST_P(ShardQueueConformance, ZeroCapacityClampsToOne) {
  auto queue = Make(0);
  EXPECT_EQ(queue->capacity(), 1u);
  ASSERT_TRUE(queue->Push(7).ok());
}

TEST_P(ShardQueueConformance, NonPowerOfTwoCapacityIsExact) {
  // The SPSC ring rounds its slot array up to a power of two internally;
  // the logical capacity must still be what the caller asked for.
  auto queue = Make(5, BackpressurePolicy::kReject);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(queue->Push(i).ok());
  EXPECT_EQ(queue->Push(99).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(queue->size(), 5u);
}

TEST_P(ShardQueueConformance, DropOldestEvictsAndCounts) {
  auto queue = Make(4, BackpressurePolicy::kDropOldest);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(queue->Push(i).ok());
  EXPECT_EQ(queue->dropped(), 6u);
  std::vector<int> out;
  EXPECT_TRUE(queue->PopBatch(out, 16));
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0], 6);
  EXPECT_EQ(out[3], 9);
}

TEST_P(ShardQueueConformance, DropOldestReportsTheVictim) {
  auto queue = Make(2, BackpressurePolicy::kDropOldest);
  ASSERT_TRUE(queue->Push(1).ok());
  ASSERT_TRUE(queue->Push(2).ok());
  std::optional<int> evicted;
  ASSERT_TRUE(
      queue->Push(3, BackpressurePolicy::kDropOldest, &evicted).ok());
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(*evicted, 1);
}

TEST_P(ShardQueueConformance, RejectPolicyRefusesWhenFullAndCounts) {
  auto queue = Make(3, BackpressurePolicy::kReject);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(queue->Push(i).ok());
  EXPECT_EQ(queue->Push(99).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(queue->rejected(), 1u);
  EXPECT_EQ(queue->dropped(), 0u);
  std::vector<int> out;
  EXPECT_TRUE(queue->PopBatch(out, 1));
  ASSERT_TRUE(queue->Push(99).ok());
}

TEST_P(ShardQueueConformance, BlockWithTimeoutExpiresAndCounts) {
  auto queue = Make(1, BackpressurePolicy::kBlockWithTimeout,
                    std::chrono::milliseconds(10));
  ASSERT_TRUE(queue->Push(1).ok());
  Status status = queue->Push(2);
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(queue->timed_out(), 1u);
}

TEST_P(ShardQueueConformance, BlockedProducerAdmittedWhenConsumerDrains) {
  auto queue = Make(2);
  ASSERT_TRUE(queue->Push(1).ok());
  ASSERT_TRUE(queue->Push(2).ok());
  std::atomic<bool> admitted{false};
  std::thread producer([&] {
    ASSERT_TRUE(queue->Push(3).ok());  // parks: queue is full
    admitted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::vector<int> out;
  EXPECT_TRUE(queue->PopBatch(out, 1));
  producer.join();
  EXPECT_TRUE(admitted.load());
  out.clear();
  while (queue->TryPopBatch(out, 8) > 0) {
  }
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[1], 3);
}

TEST_P(ShardQueueConformance, PushAfterCloseFailsPrecondition) {
  auto queue = Make(4);
  ASSERT_TRUE(queue->Push(1).ok());
  queue->Close();
  EXPECT_TRUE(queue->closed());
  EXPECT_EQ(queue->Push(2).code(), StatusCode::kFailedPrecondition);
}

TEST_P(ShardQueueConformance, CloseLeavesItemsPoppableThenExhausts) {
  auto queue = Make(4);
  ASSERT_TRUE(queue->Push(1).ok());
  ASSERT_TRUE(queue->Push(2).ok());
  queue->Close();
  std::vector<int> out;
  EXPECT_TRUE(queue->PopBatch(out, 16));
  EXPECT_EQ(out.size(), 2u);
  EXPECT_FALSE(queue->PopBatch(out, 16));  // closed and drained
}

TEST_P(ShardQueueConformance, CloseWakesParkedProducer) {
  auto queue = Make(1);
  ASSERT_TRUE(queue->Push(1).ok());
  std::atomic<bool> woke{false};
  std::thread producer([&] {
    Status status = queue->Push(2);  // parks: full, kBlock
    EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
    woke.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue->Close();
  producer.join();
  EXPECT_TRUE(woke.load());
}

TEST_P(ShardQueueConformance, CloseWakesBlockedConsumer) {
  auto queue = Make(4);
  std::atomic<bool> woke{false};
  std::thread consumer([&] {
    std::vector<int> out;
    EXPECT_FALSE(queue->PopBatch(out, 8));  // parks: open and empty
    woke.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue->Close();
  consumer.join();
  EXPECT_TRUE(woke.load());
}

TEST_P(ShardQueueConformance, HighWaterTracksDeepestOccupancy) {
  auto queue = Make(8);
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(queue->Push(i).ok());
  std::vector<int> out;
  queue->TryPopBatch(out, 6);
  for (int i = 0; i < 2; ++i) ASSERT_TRUE(queue->Push(i).ok());
  EXPECT_EQ(queue->high_water(), 6u);
}

TEST_P(ShardQueueConformance, WraparoundPreservesFifoAcrossManyLaps) {
  auto queue = Make(4);
  std::vector<int> out;
  int next_expected = 0;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(queue->Push(i).ok());
    // Drain every third push (at most 3 queued: never blocks, but the
    // indices lap the 4-slot ring hundreds of times).
    if (i % 3 == 2) {
      out.clear();
      queue->TryPopBatch(out, 3);
      for (int value : out) EXPECT_EQ(value, next_expected++);
    }
  }
  out.clear();
  while (queue->TryPopBatch(out, 8) > 0) {
  }
  for (int value : out) EXPECT_EQ(value, next_expected++);
  EXPECT_EQ(next_expected, 1000);
}

INSTANTIATE_TEST_SUITE_P(
    BothKinds, ShardQueueConformance,
    ::testing::Values(std::make_pair("mpsc", &MakeMpsc),
                      std::make_pair("spsc", &MakeSpsc)),
    [](const ::testing::TestParamInfo<ShardQueueConformance::ParamType>&
           info) { return std::string(info.param.first); });

// ---------------------------------------------------------------------------
// SPSC-specific stress tests (run these under TSan: the whole point of the
// ring is that its acquire/release protocol is race-free without a mutex).
// ---------------------------------------------------------------------------

TEST(SpscRingStress, SaturatingProducerSingleConsumerConservesEverything) {
  SpscRing<int> ring(64);
  constexpr int kSamples = 20000;
  std::atomic<uint64_t> popped{0};
  long long popped_sum = 0;
  std::thread consumer([&] {
    std::vector<int> out;
    while (ring.PopBatch(out, 32)) {
      for (int value : out) popped_sum += value;
      popped.fetch_add(out.size());
      out.clear();
    }
  });
  long long pushed_sum = 0;
  for (int i = 0; i < kSamples; ++i) {
    ASSERT_TRUE(ring.Push(i).ok());  // kBlock: lossless
    pushed_sum += i;
  }
  ring.Close();
  consumer.join();
  EXPECT_EQ(popped.load(), static_cast<uint64_t>(kSamples));
  EXPECT_EQ(popped_sum, pushed_sum);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(SpscRingStress, ConsumerClosingUnderSaturationNeverLosesOrDuplicates) {
  // The ISSUE's stress shape: a producer saturating the ring while the
  // consumer pops a while and then closes mid-stream. Every successfully
  // pushed item must be popped exactly once — by the consumer, or by the
  // post-join sweep (Close leaves items poppable; a racing push may land
  // after the consumer exits).
  for (int round = 0; round < 5; ++round) {
    SpscRing<int> ring(32);
    std::atomic<uint64_t> pushed_ok{0};
    std::atomic<uint64_t> popped{0};
    std::thread producer([&] {
      for (int i = 0; i < 100000; ++i) {
        if (!ring.Push(i).ok()) break;  // closed under us: stop
        pushed_ok.fetch_add(1);
      }
    });
    std::thread consumer([&] {
      std::vector<int> out;
      for (int batches = 0; batches < 200; ++batches) {
        if (!ring.PopBatch(out, 16)) break;
        popped.fetch_add(out.size());
        out.clear();
      }
      ring.Close();
    });
    producer.join();
    consumer.join();
    // Post-join sweep: single-threaded now, so TryPopBatch sees all.
    std::vector<int> swept;
    while (ring.TryPopBatch(swept, 64) > 0) {
    }
    EXPECT_EQ(pushed_ok.load(), popped.load() + swept.size())
        << "round " << round;
  }
}

TEST(SpscRingStress, EvictionStormConservesAndKeepsOrder) {
  // kDropOldest: producer-side eviction (a head CAS) races the consumer's
  // pops. Conservation: every pushed item is either popped or counted as
  // dropped. Order: the popped items are a strictly increasing subsequence
  // of what was pushed.
  SpscRing<int> ring(16, BackpressurePolicy::kDropOldest);
  constexpr int kSamples = 50000;
  std::vector<int> popped_values;
  std::thread consumer([&] {
    std::vector<int> out;
    while (ring.PopBatch(out, 8)) {
      popped_values.insert(popped_values.end(), out.begin(), out.end());
      out.clear();
    }
  });
  for (int i = 0; i < kSamples; ++i) ASSERT_TRUE(ring.Push(i).ok());
  ring.Close();
  consumer.join();
  std::vector<int> swept;
  while (ring.TryPopBatch(swept, 64) > 0) {
  }
  popped_values.insert(popped_values.end(), swept.begin(), swept.end());
  EXPECT_EQ(popped_values.size() + ring.dropped(),
            static_cast<uint64_t>(kSamples));
  for (size_t i = 1; i < popped_values.size(); ++i) {
    ASSERT_LT(popped_values[i - 1], popped_values[i]) << "at " << i;
  }
}

TEST(SpscRingStress, BlockWithTimeoutUnderConcurrencyCountsExactly) {
  // With a consumer draining slowly, some pushes time out; each must be
  // accounted: pushed_ok + timed_out == attempts, popped + queued ==
  // pushed_ok.
  SpscRing<int> ring(8, BackpressurePolicy::kBlockWithTimeout,
                     std::chrono::milliseconds(2));
  std::atomic<uint64_t> popped{0};
  std::atomic<bool> stop{false};
  std::thread consumer([&] {
    std::vector<int> out;
    while (!stop.load()) {
      out.clear();
      popped.fetch_add(ring.TryPopBatch(out, 4));
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  uint64_t pushed_ok = 0;
  uint64_t timed_out = 0;
  for (int i = 0; i < 2000; ++i) {
    Status status = ring.Push(i);
    if (status.ok()) {
      ++pushed_ok;
    } else {
      ASSERT_EQ(status.code(), StatusCode::kDeadlineExceeded);
      ++timed_out;
    }
  }
  stop.store(true);
  consumer.join();
  EXPECT_EQ(ring.timed_out(), timed_out);
  std::vector<int> rest;
  while (ring.TryPopBatch(rest, 64) > 0) {
  }
  EXPECT_EQ(popped.load() + rest.size(), pushed_ok);
}

}  // namespace
}  // namespace hod::stream
