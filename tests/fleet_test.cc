#include "fleet/manager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "fleet/alert_board.h"
#include "fleet/router.h"
#include "stream/engine.h"
#include "stream/stats.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace hod::fleet {
namespace {

using hierarchy::ProductionLevel;
using std::chrono::milliseconds;

/// A deterministic stream with one fault burst (same recipe as the
/// stream-tier tests).
std::vector<double> MakeStream(uint64_t seed, size_t n, size_t fault_at,
                               size_t fault_len, double fault_mag) {
  Rng rng(seed);
  std::vector<double> values;
  values.reserve(n);
  double noise = 0.0;
  for (size_t t = 0; t < n; ++t) {
    noise = 0.7 * noise + rng.Gaussian(0.0, 0.25);
    double value = 55.0 + noise;
    if (t >= fault_at && t < fault_at + fault_len) value += fault_mag;
    values.push_back(value);
  }
  return values;
}

std::vector<PlantSensorSpec> MakeSensors(size_t n) {
  std::vector<PlantSensorSpec> sensors;
  for (size_t i = 0; i < n; ++i) {
    sensors.push_back({"s" + std::to_string(i), ProductionLevel::kPhase, {}});
  }
  return sensors;
}

stream::StreamEngineOptions SmallEngine() {
  stream::StreamEngineOptions engine;
  engine.num_shards = 2;
  engine.queue_capacity = 256;
  engine.monitor.warmup = 16;
  engine.watchdog_interval = milliseconds(0);  // determinism: no sweeps
  return engine;
}

#ifdef __linux__
size_t CountOsThreads() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("Threads:", 0) == 0) {
      return static_cast<size_t>(std::stoul(line.substr(8)));
    }
  }
  return 0;
}
#endif

// ---------------------------------------------------------------------------
// FleetRouter: stable-hash placement
// ---------------------------------------------------------------------------

TEST(FleetRouter, PlacementIsDeterministicAcrossInstances) {
  // Place is a pure function of (id, slots): a restarted process — or a
  // different machine — computes the identical placement for every plant.
  const FleetRouter a(256);
  const FleetRouter b(256);
  for (int i = 0; i < 100; ++i) {
    const std::string id = "plant-" + std::to_string(i);
    const PlantPlacement pa = a.Place(id);
    const PlantPlacement pb = b.Place(id);
    EXPECT_EQ(pa.hash, pb.hash) << id;
    EXPECT_EQ(pa.slot, pb.slot) << id;
    EXPECT_EQ(pa.hash, stream::StableHash64(id));
    EXPECT_LT(pa.slot, 256u);
  }
}

TEST(FleetRouter, AddRemoveNeverMovesOtherPlants) {
  // Bounded redistribution, degenerate-and-desirable form: placement
  // depends only on the plant's own id, so adding or removing any plant
  // moves exactly zero others.
  FleetRouter router(64);
  std::vector<std::string> ids;
  std::vector<PlantPlacement> before;
  for (int i = 0; i < 50; ++i) {
    ids.push_back("line-" + std::to_string(i));
    before.push_back(router.Place(ids.back()));
    ASSERT_TRUE(router.Add(ids.back(), std::make_shared<PlantHandle>()).ok());
  }
  ASSERT_TRUE(router.Add("newcomer", std::make_shared<PlantHandle>()).ok());
  EXPECT_NE(router.Remove("line-17"), nullptr);
  for (size_t i = 0; i < ids.size(); ++i) {
    const PlantPlacement after = router.Place(ids[i]);
    EXPECT_EQ(after.hash, before[i].hash) << ids[i];
    EXPECT_EQ(after.slot, before[i].slot) << ids[i];
  }
  EXPECT_EQ(router.Resolve("line-17"), nullptr);
  EXPECT_NE(router.Resolve("line-18"), nullptr);
  EXPECT_EQ(router.size(), 50u);  // 50 + newcomer - line-17
}

TEST(FleetRouter, PlacementSpreadsAcrossSlots) {
  const FleetRouter router(64);
  std::vector<bool> hit(64, false);
  size_t distinct = 0;
  for (int i = 0; i < 200; ++i) {
    const size_t slot = router.Place("plant-" + std::to_string(i)).slot;
    if (!hit[slot]) {
      hit[slot] = true;
      ++distinct;
    }
  }
  // 200 ids into 64 slots: a healthy hash fills most of the space.
  EXPECT_GE(distinct, 48u);
}

// ---------------------------------------------------------------------------
// StreamStatsSnapshot merge (fleet roll-up arithmetic)
// ---------------------------------------------------------------------------

/// Fills every scalar counter with a distinct value derived from `base`
/// so a field accidentally skipped by operator+= shows up as a precise
/// mismatch, not a coincidental pass.
stream::StreamStatsSnapshot FilledSnapshot(uint64_t base) {
  stream::StreamStatsSnapshot s;
  uint64_t v = base;
  s.ingested = v++;
  s.scored = v++;
  s.dropped = v++;
  s.rejected_queue_full = v++;
  s.rejected_timeout = v++;
  s.rejected_non_finite = v++;
  s.rejected_unknown_sensor = v++;
  s.rejected_level_mismatch = v++;
  s.rejected_out_of_order = v++;
  s.rejected_closed = v++;
  s.alarms_raised = v++;
  s.alarms_cleared = v++;
  s.quarantined_samples = v++;
  s.sensor_faults = v++;
  s.sensor_recoveries = v++;
  s.watchdog_stall_events = v++;
  s.forward_failed = v++;
  s.escalation_runs = v++;
  s.escalation_entities = v++;
  s.escalation_findings = v++;
  s.escalation_unresolved = v++;
  s.escalation_cache_hits = v++;
  s.escalation_cache_misses = v++;
  s.escalation_latency_us = v++;
  s.checkpoints_written = v++;
  s.checkpoint_failures = v++;
  for (int i = 0; i < hierarchy::kNumLevels; ++i) {
    s.level_dropped[i] = v++;
    s.level_rejected[i] = v++;
    s.level_quarantined[i] = v++;
  }
  for (size_t i = 0; i < stream::kBatchBuckets; ++i) {
    s.batch_size_histogram[i] = v++;
  }
  return s;
}

TEST(StreamStatsMerge, EveryCounterAddsIncludingEscalationAndCheckpoint) {
  const stream::StreamStatsSnapshot a = FilledSnapshot(1000);
  const stream::StreamStatsSnapshot b = FilledSnapshot(5000);
  stream::StreamStatsSnapshot sum = a;
  sum += b;
  EXPECT_EQ(sum.ingested, a.ingested + b.ingested);
  EXPECT_EQ(sum.scored, a.scored + b.scored);
  EXPECT_EQ(sum.dropped, a.dropped + b.dropped);
  EXPECT_EQ(sum.rejected_queue_full,
            a.rejected_queue_full + b.rejected_queue_full);
  EXPECT_EQ(sum.rejected_timeout, a.rejected_timeout + b.rejected_timeout);
  EXPECT_EQ(sum.rejected_non_finite,
            a.rejected_non_finite + b.rejected_non_finite);
  EXPECT_EQ(sum.rejected_unknown_sensor,
            a.rejected_unknown_sensor + b.rejected_unknown_sensor);
  EXPECT_EQ(sum.rejected_level_mismatch,
            a.rejected_level_mismatch + b.rejected_level_mismatch);
  EXPECT_EQ(sum.rejected_out_of_order,
            a.rejected_out_of_order + b.rejected_out_of_order);
  EXPECT_EQ(sum.rejected_closed, a.rejected_closed + b.rejected_closed);
  EXPECT_EQ(sum.rejected_total(), a.rejected_total() + b.rejected_total());
  EXPECT_EQ(sum.alarms_raised, a.alarms_raised + b.alarms_raised);
  EXPECT_EQ(sum.alarms_cleared, a.alarms_cleared + b.alarms_cleared);
  EXPECT_EQ(sum.quarantined_samples,
            a.quarantined_samples + b.quarantined_samples);
  EXPECT_EQ(sum.sensor_faults, a.sensor_faults + b.sensor_faults);
  EXPECT_EQ(sum.sensor_recoveries, a.sensor_recoveries + b.sensor_recoveries);
  EXPECT_EQ(sum.watchdog_stall_events,
            a.watchdog_stall_events + b.watchdog_stall_events);
  EXPECT_EQ(sum.forward_failed, a.forward_failed + b.forward_failed);
  // The escalation_* block — the satellite audit's named suspects.
  EXPECT_EQ(sum.escalation_runs, a.escalation_runs + b.escalation_runs);
  EXPECT_EQ(sum.escalation_entities,
            a.escalation_entities + b.escalation_entities);
  EXPECT_EQ(sum.escalation_findings,
            a.escalation_findings + b.escalation_findings);
  EXPECT_EQ(sum.escalation_unresolved,
            a.escalation_unresolved + b.escalation_unresolved);
  EXPECT_EQ(sum.escalation_cache_hits,
            a.escalation_cache_hits + b.escalation_cache_hits);
  EXPECT_EQ(sum.escalation_cache_misses,
            a.escalation_cache_misses + b.escalation_cache_misses);
  EXPECT_EQ(sum.escalation_latency_us,
            a.escalation_latency_us + b.escalation_latency_us);
  // The checkpoint_* block.
  EXPECT_EQ(sum.checkpoints_written,
            a.checkpoints_written + b.checkpoints_written);
  EXPECT_EQ(sum.checkpoint_failures,
            a.checkpoint_failures + b.checkpoint_failures);
  for (int i = 0; i < hierarchy::kNumLevels; ++i) {
    EXPECT_EQ(sum.level_dropped[i], a.level_dropped[i] + b.level_dropped[i]);
    EXPECT_EQ(sum.level_rejected[i],
              a.level_rejected[i] + b.level_rejected[i]);
    EXPECT_EQ(sum.level_quarantined[i],
              a.level_quarantined[i] + b.level_quarantined[i]);
  }
  for (size_t i = 0; i < stream::kBatchBuckets; ++i) {
    EXPECT_EQ(sum.batch_size_histogram[i],
              a.batch_size_histogram[i] + b.batch_size_histogram[i]);
  }
}

TEST(StreamStatsMerge, HighWaterTakesMaxAndStalledTakesOrAcrossShapes) {
  stream::StreamStatsSnapshot a;
  a.shard_queue_high_water = {10, 3};
  a.shard_stalled = {1, 0};
  stream::StreamStatsSnapshot b;
  b.shard_queue_high_water = {4, 9, 7};  // more shards than a
  b.shard_stalled = {0, 1, 0};
  a += b;
  ASSERT_EQ(a.shard_queue_high_water.size(), 3u);
  EXPECT_EQ(a.shard_queue_high_water[0], 10u);  // max, not sum
  EXPECT_EQ(a.shard_queue_high_water[1], 9u);
  EXPECT_EQ(a.shard_queue_high_water[2], 7u);
  ASSERT_EQ(a.shard_stalled.size(), 3u);
  EXPECT_EQ(a.shard_stalled[0], 1);  // OR
  EXPECT_EQ(a.shard_stalled[1], 1);
  EXPECT_EQ(a.shard_stalled[2], 0);
}

TEST(StreamStatsMerge, MergeOfExactSnapshotsPreservesConservation) {
  // Run two small synchronous engines, merge their exact snapshots, and
  // check the conservation identity survives the merge.
  auto run = [](uint64_t seed) {
    stream::StreamEngineOptions options;
    options.synchronous = true;
    options.monitor.warmup = 16;
    stream::StreamEngine engine(options);
    EXPECT_TRUE(engine.AddSensor("s0", ProductionLevel::kPhase).ok());
    EXPECT_TRUE(engine.Start().ok());
    const std::vector<double> values = MakeStream(seed, 300, 200, 6, 6.0);
    for (size_t t = 0; t < values.size(); ++t) {
      (void)engine.Ingest(
          {"s0", ProductionLevel::kPhase, static_cast<double>(t), values[t]});
    }
    EXPECT_TRUE(engine.Stop().ok());
    return engine.stats();
  };
  const stream::StreamStatsSnapshot a = run(3);
  const stream::StreamStatsSnapshot b = run(7);
  const stream::StreamStatsSnapshot sum = a + b;
  EXPECT_EQ(sum.ingested, a.ingested + b.ingested);
  EXPECT_EQ(sum.ingested, sum.scored + sum.dropped + sum.rejected_total() +
                              sum.quarantined_samples);
}

// ---------------------------------------------------------------------------
// Pooled engine mode (borrowed executor) vs legacy jthread mode
// ---------------------------------------------------------------------------

TEST(PooledEngine, MatchesLegacyThreadedEngineExactly) {
  const std::vector<double> faulty = MakeStream(11, 500, 350, 8, 6.0);
  const std::vector<double> clean = MakeStream(13, 500, 0, 0, 0.0);

  auto run = [&](util::ThreadPool* pool) {
    stream::StreamEngineOptions options = SmallEngine();
    options.executor = pool;
    stream::StreamEngine engine(options);
    EXPECT_TRUE(engine.AddSensor("hot", ProductionLevel::kPhase).ok());
    EXPECT_TRUE(engine.AddSensor("cool", ProductionLevel::kJob).ok());
    EXPECT_TRUE(engine.Start().ok());
    for (size_t t = 0; t < faulty.size(); ++t) {
      const double ts = static_cast<double>(t);
      EXPECT_TRUE(
          engine.Ingest({"hot", ProductionLevel::kPhase, ts, faulty[t]}).ok());
      EXPECT_TRUE(
          engine.Ingest({"cool", ProductionLevel::kJob, ts, clean[t]}).ok());
    }
    EXPECT_TRUE(engine.Flush().ok());
    EXPECT_TRUE(engine.Stop().ok());
    return std::make_tuple(engine.stats(), engine.Episodes().size(),
                           engine.Snapshot().levels);
  };

  util::ThreadPool pool(util::ThreadPoolOptions{2, 1});
  const auto [legacy_stats, legacy_episodes, legacy_levels] = run(nullptr);
  const auto [pooled_stats, pooled_episodes, pooled_levels] = run(&pool);

  // Per-sensor sample order is identical (one producer, per-sensor shard
  // affinity), so every deterministic counter must agree bit-for-bit.
  EXPECT_EQ(pooled_stats.ingested, legacy_stats.ingested);
  EXPECT_EQ(pooled_stats.scored, legacy_stats.scored);
  EXPECT_EQ(pooled_stats.dropped, legacy_stats.dropped);
  EXPECT_EQ(pooled_stats.rejected_total(), legacy_stats.rejected_total());
  EXPECT_EQ(pooled_stats.alarms_raised, legacy_stats.alarms_raised);
  EXPECT_EQ(pooled_stats.alarms_cleared, legacy_stats.alarms_cleared);
  EXPECT_EQ(pooled_stats.quarantined_samples,
            legacy_stats.quarantined_samples);
  EXPECT_EQ(pooled_stats.sensor_faults, legacy_stats.sensor_faults);
  EXPECT_GE(legacy_stats.alarms_raised, 1u) << "fault burst must alarm";
  EXPECT_EQ(pooled_episodes, legacy_episodes);
  for (int i = 0; i < hierarchy::kNumLevels; ++i) {
    EXPECT_EQ(pooled_levels[i].alarms_raised, legacy_levels[i].alarms_raised);
    EXPECT_EQ(pooled_levels[i].outlier_samples,
              legacy_levels[i].outlier_samples);
  }
  // Conservation holds in pooled mode too.
  EXPECT_EQ(pooled_stats.ingested,
            pooled_stats.scored + pooled_stats.dropped +
                pooled_stats.rejected_total() +
                pooled_stats.quarantined_samples);
}

TEST(PooledEngine, ManyEnginesShareOnePoolConcurrently) {
  util::ThreadPool pool(util::ThreadPoolOptions{2, 1});
  constexpr size_t kEngines = 6;
  constexpr size_t kSamples = 300;
  std::vector<std::unique_ptr<stream::StreamEngine>> engines;
  for (size_t e = 0; e < kEngines; ++e) {
    stream::StreamEngineOptions options = SmallEngine();
    options.executor = &pool;
    engines.push_back(std::make_unique<stream::StreamEngine>(options));
    ASSERT_TRUE(
        engines[e]->AddSensor("s0", ProductionLevel::kPhase).ok());
    ASSERT_TRUE(engines[e]->Start().ok());
  }
  std::vector<std::thread> producers;
  for (size_t e = 0; e < kEngines; ++e) {
    producers.emplace_back([&, e] {
      const std::vector<double> values = MakeStream(e + 1, kSamples, 0, 0, 0);
      for (size_t t = 0; t < values.size(); ++t) {
        (void)engines[e]->Ingest(
            {"s0", ProductionLevel::kPhase, static_cast<double>(t),
             values[t]});
      }
    });
  }
  for (auto& producer : producers) producer.join();
  for (auto& engine : engines) {
    ASSERT_TRUE(engine->Flush().ok());
    ASSERT_TRUE(engine->Stop().ok());
    const stream::StreamStatsSnapshot stats = engine->stats();
    EXPECT_EQ(stats.ingested, kSamples);
    EXPECT_EQ(stats.scored, kSamples);
  }
}

// ---------------------------------------------------------------------------
// FleetAlertBoard
// ---------------------------------------------------------------------------

core::AlertEpisode Episode(const std::string& entity,
                           core::AlertSeverity severity, double outlierness) {
  core::AlertEpisode episode;
  episode.entity = entity;
  episode.severity = severity;
  episode.peak_outlierness = outlierness;
  episode.finding_count = 1;
  return episode;
}

TEST(FleetAlertBoard, RepeatedUpdatesDedupAndSortBySeverity) {
  FleetAlertBoard board;
  board.UpdatePlant("berlin",
                    {Episode("m1", core::AlertSeverity::kWarning, 2.0)});
  // Same plant refreshed: rows are replaced, not appended.
  board.UpdatePlant("berlin",
                    {Episode("m1", core::AlertSeverity::kWarning, 3.0),
                     Episode("m2", core::AlertSeverity::kInfo, 1.0)});
  board.UpdatePlant("oslo",
                    {Episode("m9", core::AlertSeverity::kCritical, 9.0)});
  const std::vector<FleetAlertRow> rows = board.Board();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].plant_id, "oslo");  // critical first
  EXPECT_EQ(rows[0].episode.entity, "m9");
  EXPECT_EQ(rows[1].plant_id, "berlin");
  EXPECT_EQ(rows[1].episode.entity, "m1");
  EXPECT_DOUBLE_EQ(rows[1].episode.peak_outlierness, 3.0);  // refreshed
  EXPECT_EQ(rows[2].episode.entity, "m2");
  EXPECT_FALSE(rows[0].archived);
}

TEST(FleetAlertBoard, ArchiveKeepsRowsFlaggedAndForgetDropsThem) {
  FleetAlertBoard board;
  board.UpdatePlant("berlin",
                    {Episode("m1", core::AlertSeverity::kWarning, 2.0)});
  board.ArchivePlant("berlin",
                     {Episode("m1", core::AlertSeverity::kWarning, 2.5)});
  std::vector<FleetAlertRow> rows = board.Board();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_TRUE(rows[0].archived);
  EXPECT_DOUBLE_EQ(rows[0].episode.peak_outlierness, 2.5);
  EXPECT_EQ(board.live_plants(), 0u);
  EXPECT_EQ(board.archived_plants(), 1u);
  // Re-admission forgets the predecessor's history.
  board.ForgetPlant("berlin");
  EXPECT_TRUE(board.Board().empty());
}

// ---------------------------------------------------------------------------
// FleetManager
// ---------------------------------------------------------------------------

FleetManagerOptions SmallFleet() {
  FleetManagerOptions options;
  options.engine = SmallEngine();
  options.pool_threads = 2;
  options.service_threads = 1;
  return options;
}

TEST(FleetManager, RoutesAndAggregatesAcrossPlants) {
  FleetManager fleet(SmallFleet());
  ASSERT_TRUE(fleet.AddPlant("berlin", MakeSensors(2)).ok());
  ASSERT_TRUE(fleet.AddPlant("oslo", MakeSensors(2)).ok());
  EXPECT_EQ(fleet.num_plants(), 2u);
  EXPECT_EQ(fleet.AddPlant("berlin", MakeSensors(1)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(fleet.Ingest("ghost", {"s0", ProductionLevel::kPhase, 0.0, 1.0})
                .status()
                .code(),
            StatusCode::kNotFound);

  const std::vector<double> values = MakeStream(5, 200, 0, 0, 0.0);
  for (size_t t = 0; t < values.size(); ++t) {
    const double ts = static_cast<double>(t);
    ASSERT_TRUE(
        fleet.Ingest("berlin", {"s0", ProductionLevel::kPhase, ts, values[t]})
            .ok());
    ASSERT_TRUE(
        fleet.Ingest("oslo", {"s1", ProductionLevel::kPhase, ts, values[t]})
            .ok());
  }
  ASSERT_TRUE(fleet.Flush().ok());
  const FleetStatsSnapshot stats = fleet.Stats();
  EXPECT_EQ(stats.plants, 2u);
  EXPECT_EQ(stats.removed_plants, 0u);
  EXPECT_EQ(stats.aggregate.ingested, 2 * values.size());
  EXPECT_EQ(stats.aggregate.scored, 2 * values.size());
  ASSERT_EQ(stats.per_plant.size(), 2u);
  EXPECT_EQ(stats.per_plant[0].plant_id, "berlin");
  EXPECT_EQ(stats.per_plant[0].stats.ingested, values.size());
  EXPECT_EQ(stats.per_plant[1].plant_id, "oslo");
  ASSERT_TRUE(fleet.Stop().ok());
}

TEST(FleetManager, RemovePlantDrainsArchivesAndKeepsAggregatesMonotone) {
  FleetManager fleet(SmallFleet());
  ASSERT_TRUE(fleet.AddPlant("berlin", MakeSensors(1)).ok());
  ASSERT_TRUE(fleet.AddPlant("oslo", MakeSensors(1)).ok());

  const std::vector<double> faulty = MakeStream(11, 400, 300, 8, 6.0);
  const std::vector<double> clean = MakeStream(13, 400, 0, 0, 0.0);
  for (size_t t = 0; t < faulty.size(); ++t) {
    const double ts = static_cast<double>(t);
    ASSERT_TRUE(
        fleet.Ingest("berlin", {"s0", ProductionLevel::kPhase, ts, faulty[t]})
            .ok());
    ASSERT_TRUE(
        fleet.Ingest("oslo", {"s0", ProductionLevel::kPhase, ts, clean[t]})
            .ok());
  }
  ASSERT_TRUE(fleet.Flush().ok());
  const FleetStatsSnapshot before = fleet.Stats();
  ASSERT_EQ(before.aggregate.ingested, 2 * faulty.size());
  ASSERT_GE(before.aggregate.alarms_raised, 1u);
  const std::vector<FleetAlertRow> live_board = fleet.AlertBoard();
  ASSERT_GE(live_board.size(), 1u);
  EXPECT_EQ(live_board[0].plant_id, "berlin");
  EXPECT_FALSE(live_board[0].archived);

  // Drain-on-remove: the berlin line leaves, its counters fold into the
  // retired roll-up, its episodes archive — nothing double-counts,
  // nothing vanishes.
  ASSERT_TRUE(fleet.RemovePlant("berlin").ok());
  EXPECT_EQ(fleet.RemovePlant("berlin").code(), StatusCode::kNotFound);
  EXPECT_EQ(fleet.num_plants(), 1u);
  const FleetStatsSnapshot after = fleet.Stats();
  EXPECT_EQ(after.plants, 1u);
  EXPECT_EQ(after.removed_plants, 1u);
  EXPECT_EQ(after.aggregate.ingested, before.aggregate.ingested);
  EXPECT_EQ(after.aggregate.scored, before.aggregate.scored);
  EXPECT_EQ(after.aggregate.alarms_raised, before.aggregate.alarms_raised);
  EXPECT_EQ(after.retired.ingested, faulty.size());

  const std::vector<FleetAlertRow> board = fleet.AlertBoard();
  ASSERT_GE(board.size(), 1u);
  EXPECT_EQ(board[0].plant_id, "berlin");
  EXPECT_TRUE(board[0].archived);

  // The removed id no longer ingests; the sibling is untouched.
  EXPECT_EQ(
      fleet.Ingest("berlin", {"s0", ProductionLevel::kPhase, 999.0, 55.0})
          .status()
          .code(),
      StatusCode::kNotFound);
  ASSERT_TRUE(
      fleet.Ingest("oslo", {"s0", ProductionLevel::kPhase, 999.0, 55.0}).ok());
  ASSERT_TRUE(fleet.Stop().ok());
}

#ifdef __linux__
TEST(FleetManager, OsThreadCountBoundedByPoolNotPlantCount) {
  const size_t baseline = CountOsThreads();
  ASSERT_GT(baseline, 0u);
  FleetManagerOptions options = SmallFleet();
  options.engine.num_shards = 4;
  options.pool_threads = 4;
  FleetManager fleet(options);
  constexpr size_t kPlants = 16;
  for (size_t p = 0; p < kPlants; ++p) {
    ASSERT_TRUE(
        fleet.AddPlant("plant-" + std::to_string(p), MakeSensors(2)).ok());
    for (int t = 0; t < 32; ++t) {
      ASSERT_TRUE(fleet
                      .Ingest("plant-" + std::to_string(p),
                              {"s0", ProductionLevel::kPhase,
                               static_cast<double>(t), 55.0})
                      .ok());
    }
  }
  ASSERT_TRUE(fleet.Flush().ok());
  // Threads-per-plant would cost kPlants * (4 shards + collector +
  // watchdog) = 96 threads. The pool costs workers + service + timer.
  const size_t with_fleet = CountOsThreads();
  EXPECT_LE(with_fleet, baseline + 4 + 1 + 1)
      << "fleet spawned per-plant threads";
  ASSERT_TRUE(fleet.Stop().ok());
}
#endif

TEST(FleetManager, CheckpointPhasesAreHashStaggeredAndRestartStable) {
  FleetManagerOptions options = SmallFleet();
  options.checkpoint_dir = ::testing::TempDir();
  options.checkpoint_interval = milliseconds(1000);
  options.checkpoint_stagger_slots = 8;
  FleetManager a(options);
  FleetManager b(options);  // "restarted process"
  std::vector<milliseconds> phases;
  for (int i = 0; i < 12; ++i) {
    const std::string id = "plant-" + std::to_string(i);
    const milliseconds phase = a.CheckpointPhaseOf(id);
    EXPECT_EQ(phase, b.CheckpointPhaseOf(id)) << id;
    EXPECT_GT(phase.count(), 0) << id;
    EXPECT_LE(phase.count(), 1000) << id;
    phases.push_back(phase);
  }
  // The whole point of staggering: the plants do NOT share one phase.
  size_t distinct = 0;
  std::vector<bool> seen(9, false);
  for (const milliseconds phase : phases) {
    const size_t slot = static_cast<size_t>(phase.count() * 8 / 1000);
    if (slot < seen.size() && !seen[slot]) {
      seen[slot] = true;
      ++distinct;
    }
  }
  EXPECT_GE(distinct, 3u);
}

TEST(FleetManager, PeriodicStaggeredCheckpointsLandOnDisk) {
  FleetManagerOptions options = SmallFleet();
  options.checkpoint_dir = ::testing::TempDir();
  options.checkpoint_interval = milliseconds(40);
  options.checkpoint_stagger_slots = 4;
  FleetManager fleet(options);
  ASSERT_TRUE(fleet.AddPlant("ckpt-a", MakeSensors(1)).ok());
  ASSERT_TRUE(fleet.AddPlant("ckpt-b", MakeSensors(1)).ok());
  for (int t = 0; t < 64; ++t) {
    ASSERT_TRUE(fleet
                    .Ingest("ckpt-a", {"s0", ProductionLevel::kPhase,
                                       static_cast<double>(t), 55.0})
                    .ok());
    ASSERT_TRUE(fleet
                    .Ingest("ckpt-b", {"s0", ProductionLevel::kPhase,
                                       static_cast<double>(t), 55.0})
                    .ok());
  }
  // Several intervals' worth of wall time for the executor timer.
  std::this_thread::sleep_for(milliseconds(400));
  ASSERT_TRUE(fleet.Stop().ok());
  const FleetStatsSnapshot stats = fleet.Stats();
  EXPECT_GE(stats.aggregate.checkpoints_written, 2u);
  for (const char* id : {"ckpt-a", "ckpt-b"}) {
    std::ifstream is(fleet.CheckpointPathFor(id), std::ios::binary);
    EXPECT_TRUE(is.good()) << fleet.CheckpointPathFor(id);
  }
}

TEST(FleetManager, KillAndRestoreOnePlantWithoutPausingSiblings) {
  FleetManagerOptions options = SmallFleet();
  options.checkpoint_dir = ::testing::TempDir();
  options.checkpoint_interval = milliseconds(0);  // manual checkpoints only
  FleetManager fleet(options);
  ASSERT_TRUE(fleet.AddPlant("victim", MakeSensors(1)).ok());
  ASSERT_TRUE(fleet.AddPlant("sibling", MakeSensors(1)).ok());

  constexpr size_t kBefore = 200;
  for (size_t t = 0; t < kBefore; ++t) {
    ASSERT_TRUE(fleet
                    .Ingest("victim", {"s0", ProductionLevel::kPhase,
                                       static_cast<double>(t), 55.0})
                    .ok());
  }
  ASSERT_TRUE(fleet.CheckpointPlant("victim").ok());

  // The sibling ingests continuously through the victim's whole
  // kill-and-restore cycle; every sample must be accepted.
  std::atomic<bool> stop_producer{false};
  std::atomic<uint64_t> sibling_pushed{0};
  std::thread producer([&] {
    double ts = 0.0;
    while (!stop_producer.load(std::memory_order_acquire)) {
      if (fleet.Ingest("sibling",
                       {"s0", ProductionLevel::kPhase, ts, 55.0})
              .ok()) {
        sibling_pushed.fetch_add(1, std::memory_order_relaxed);
      }
      ts += 1.0;
    }
  });

  ASSERT_TRUE(fleet.RemovePlant("victim").ok());  // "kill"
  ASSERT_TRUE(fleet.RestorePlant("victim").ok());
  EXPECT_EQ(fleet.RestorePlant("victim").code(),
            StatusCode::kInvalidArgument);  // already routed again

  // The restored engine resumes from the checkpointed counters and keeps
  // ingesting.
  constexpr size_t kAfter = 50;
  for (size_t t = 0; t < kAfter; ++t) {
    ASSERT_TRUE(fleet
                    .Ingest("victim", {"s0", ProductionLevel::kPhase,
                                       static_cast<double>(kBefore + t), 55.0})
                    .ok());
  }
  stop_producer.store(true, std::memory_order_release);
  producer.join();
  ASSERT_TRUE(fleet.Flush().ok());

  const FleetStatsSnapshot stats = fleet.Stats();
  ASSERT_EQ(stats.per_plant.size(), 2u);
  const PlantStats& sibling = stats.per_plant[0];
  const PlantStats& victim = stats.per_plant[1];
  ASSERT_EQ(sibling.plant_id, "sibling");
  ASSERT_EQ(victim.plant_id, "victim");
  EXPECT_EQ(victim.stats.ingested, kBefore + kAfter);
  EXPECT_GE(sibling_pushed.load(), 1u);
  EXPECT_EQ(sibling.stats.ingested, sibling_pushed.load());
  // The drained victim's first life is in the retired fold.
  EXPECT_EQ(stats.removed_plants, 1u);
  EXPECT_EQ(stats.retired.ingested, kBefore);
  ASSERT_TRUE(fleet.Stop().ok());
}

}  // namespace
}  // namespace hod::fleet
