#ifndef HOD_SIM_DATASETS_H_
#define HOD_SIM_DATASETS_H_

#include <cstdint>
#include <vector>

#include "sim/anomaly.h"
#include "sim/ground_truth.h"
#include "timeseries/discrete_sequence.h"
#include "timeseries/time_series.h"
#include "util/statusor.h"

namespace hod::sim {

/// Self-contained labeled datasets in the paper's three data shapes (PTS /
/// SSQ / TSS), with a clean training split and a contaminated test split.
/// Used by the Table-1 validation bench, the Fig.-1 outlier-type study,
/// and the detector unit tests.

/// ---- PTS -------------------------------------------------------------
struct PointDatasetOptions {
  size_t train_size = 600;
  size_t test_size = 400;
  size_t dim = 3;
  /// Fraction of anomalous points in both splits (train anomalies are
  /// labeled, for the supervised family).
  double anomaly_rate = 0.05;
  /// Anomaly displacement in cluster sigmas.
  double magnitude = 6.0;
  uint64_t seed = 7;
};

struct PointDataset {
  std::vector<std::vector<double>> train;
  LabelVector train_labels;
  std::vector<std::vector<double>> test;
  LabelVector test_labels;
};

/// Normal points come from two Gaussian clusters; anomalies are cluster
/// points displaced by `magnitude` sigmas in a random direction.
StatusOr<PointDataset> GeneratePointDataset(const PointDatasetOptions& options);

/// ---- SSQ -------------------------------------------------------------
struct SequenceDatasetOptions {
  size_t train_sequences = 12;
  size_t test_sequences = 8;
  size_t length = 256;
  int alphabet = 6;
  double anomaly_rate = 0.04;  // per-position corruption probability mass
  size_t burst_length = 6;     // corrupted run length
  /// Rate of benign single-symbol substitutions in normal data (process
  /// noise). Set to 0 for datasets where every rare word is an anomaly
  /// (frequency-based detectors cannot tell benign rare events apart).
  double benign_substitution_rate = 0.02;
  uint64_t seed = 7;
};

struct SequenceDataset {
  std::vector<ts::DiscreteSequence> train;
  std::vector<LabelVector> train_labels;
  std::vector<ts::DiscreteSequence> test;
  std::vector<LabelVector> test_labels;
};

/// Normal sequences follow a noisy cyclic grammar (state machine with
/// occasional benign substitutions); anomalies are bursts of grammar-
/// violating symbols.
StatusOr<SequenceDataset> GenerateSequenceDataset(
    const SequenceDatasetOptions& options);

/// ---- TSS -------------------------------------------------------------
struct SeriesDatasetOptions {
  size_t train_series = 8;
  size_t test_series = 6;
  size_t length = 512;
  /// AR(1) coefficient and sigma of the base process.
  double ar_coefficient = 0.7;
  double sigma = 1.0;
  /// Sinusoidal component amplitude (seasonal structure).
  double seasonal_amplitude = 2.0;
  double seasonal_period = 64.0;
  /// Injections per test series.
  size_t anomalies_per_series = 3;
  double magnitude = 6.0;
  /// When set, only this outlier type is injected (Fig.-1 study);
  /// otherwise types rotate through all four.
  const OutlierType* only_type = nullptr;
  uint64_t seed = 7;
};

struct SeriesDataset {
  std::vector<ts::TimeSeries> train;
  std::vector<LabelVector> train_labels;
  std::vector<ts::TimeSeries> test;
  std::vector<LabelVector> test_labels;
};

StatusOr<SeriesDataset> GenerateSeriesDataset(
    const SeriesDatasetOptions& options);

/// Whole-series variant for series-unit techniques (phased k-means):
/// normal test series vs structurally different anomalous series.
struct WholeSeriesDataset {
  std::vector<ts::TimeSeries> train;
  std::vector<ts::TimeSeries> test;
  LabelVector test_labels;  // one label per test series
};
StatusOr<WholeSeriesDataset> GenerateWholeSeriesDataset(
    size_t train_series, size_t test_series, double anomaly_fraction,
    uint64_t seed);

}  // namespace hod::sim

#endif  // HOD_SIM_DATASETS_H_
