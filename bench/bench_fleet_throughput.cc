// E12 — multi-plant fleet throughput (hod::fleet).
//
// The paper's §1/§5 calculation-speed requirement, scaled to a fleet: one
// FleetManager, every plant engine sharing one util::ThreadPool, swept
// from 1 to 64 plants at constant TOTAL load (same sample count every
// run, 160 sensors per plant — the 64-plant point covers 10240 sensors).
// Because total work is constant, aggregate throughput at 64 plants
// divided by the single-plant baseline measures what the routing tier and
// the task-per-shard scheduling COST, not what more hardware would buy:
// that ratio is the `retention` the CI gate floors at 0.5.
//
// Also proves the pooled-thread claim: the OS thread count observed
// mid-run at 64 plants must be bounded by pool size + producers + a
// constant, never by plant count (per-plant threads would need
// 64 * (shards + collector + watchdog) ≈ 256 threads).
//
// Emits the human-readable table on stdout and BENCH_FLEET.json in the
// working directory for the CI trajectory.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "fleet/manager.h"
#include "stream/engine.h"

namespace {

using hod::fleet::FleetManager;
using hod::fleet::FleetManagerOptions;
using hod::fleet::FleetStatsSnapshot;
using hod::fleet::PlantSensorSpec;
using hod::hierarchy::ProductionLevel;
using hod::stream::SensorSample;
using Clock = std::chrono::steady_clock;

constexpr size_t kSensorsPerPlant = 160;
// Long enough that each sweep point runs for ~1s+ — the retention ratio is
// two noisy rates divided, and sub-second runs made the CI gate flaky.
constexpr size_t kTotalSamples = 64 * kSensorsPerPlant * 96;  // ≈ 983k
constexpr size_t kPoolThreads = 4;
constexpr size_t kProducers = 2;

struct RunResult {
  size_t plants = 0;
  size_t sensors_total = 0;
  size_t samples_total = 0;
  double seconds = 0.0;
  double aggregate_per_sec = 0.0;
  double per_plant_min = 0.0;
  double per_plant_mean = 0.0;
  double per_plant_max = 0.0;
  uint64_t alarms = 0;
  size_t os_threads = 0;
};

std::string PlantId(size_t p) { return "plant_" + std::to_string(p); }
std::string SensorId(size_t s) { return "s" + std::to_string(s); }

size_t CountOsThreads() {
#ifdef __linux__
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("Threads:", 0) == 0) {
      return static_cast<size_t>(std::stoul(line.substr(8)));
    }
  }
#endif
  return 0;
}

/// One sweep point: `plants` plants x 160 sensors, total samples held
/// constant across the sweep by scaling samples-per-sensor down as the
/// plant count grows.
RunResult RunOnce(size_t plants) {
  FleetManagerOptions options;
  options.engine.num_shards = 2;
  options.engine.queue_capacity = 1024;
  options.engine.backpressure = hod::stream::BackpressurePolicy::kBlock;
  // All sweep points stay inside warmup so the per-sample scoring cost is
  // identical across the sweep — the ratio isolates fleet overhead.
  options.engine.monitor.warmup = 1 << 20;
  options.engine.watchdog_interval = std::chrono::milliseconds(0);
  options.pool_threads = kPoolThreads;
  FleetManager fleet(options);

  std::vector<PlantSensorSpec> sensors;
  for (size_t s = 0; s < kSensorsPerPlant; ++s) {
    sensors.push_back({SensorId(s), ProductionLevel::kPhase, {}});
  }
  for (size_t p = 0; p < plants; ++p) {
    if (!fleet.AddPlant(PlantId(p), sensors).ok()) return {};
  }

  const size_t steps = kTotalSamples / (plants * kSensorsPerPlant);
  std::vector<std::string> plant_ids;
  for (size_t p = 0; p < plants; ++p) plant_ids.push_back(PlantId(p));
  std::vector<std::string> sensor_ids;
  for (size_t s = 0; s < kSensorsPerPlant; ++s) {
    sensor_ids.push_back(SensorId(s));
  }

  // kProducers ingest threads, plants partitioned across them — an
  // upstream gateway per region, not one socket per plant.
  size_t mid_run_threads = 0;
  const auto start = Clock::now();
  std::vector<std::thread> producers;
  for (size_t w = 0; w < kProducers; ++w) {
    producers.emplace_back([&, w] {
      for (size_t t = 0; t < steps; ++t) {
        if (w == 0 && t == steps / 2) mid_run_threads = CountOsThreads();
        for (size_t p = w; p < plants; p += kProducers) {
          for (size_t s = 0; s < kSensorsPerPlant; ++s) {
            const double value =
                50.0 + 0.001 * static_cast<double>(t) +
                0.01 * static_cast<double>(s % 7);
            (void)fleet.Ingest(plant_ids[p],
                               {sensor_ids[s], ProductionLevel::kPhase,
                                static_cast<double>(t), value});
          }
        }
      }
    });
  }
  for (auto& producer : producers) producer.join();
  if (!fleet.Flush().ok()) return {};
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();

  const FleetStatsSnapshot stats = fleet.Stats();
  RunResult result;
  result.plants = plants;
  result.sensors_total = plants * kSensorsPerPlant;
  result.samples_total = plants * kSensorsPerPlant * steps;
  result.seconds = seconds;
  result.aggregate_per_sec =
      seconds > 0.0 ? static_cast<double>(stats.aggregate.ingested) / seconds
                    : 0.0;
  double min_rate = 0.0;
  double max_rate = 0.0;
  double sum_rate = 0.0;
  for (size_t i = 0; i < stats.per_plant.size(); ++i) {
    const double rate =
        seconds > 0.0
            ? static_cast<double>(stats.per_plant[i].stats.ingested) / seconds
            : 0.0;
    min_rate = i == 0 ? rate : std::min(min_rate, rate);
    max_rate = std::max(max_rate, rate);
    sum_rate += rate;
  }
  result.per_plant_min = min_rate;
  result.per_plant_max = max_rate;
  result.per_plant_mean =
      stats.per_plant.empty() ? 0.0 : sum_rate / stats.per_plant.size();
  result.alarms = stats.aggregate.alarms_raised;
  result.os_threads = mid_run_threads;
  (void)fleet.Stop();
  return result;
}

}  // namespace

int main() {
  hod::bench::PrintHeader(
      "E12", "Multi-plant fleet throughput",
      "§1/§5 calculation-speed requirement, fleet tier (hod::fleet)");

  const size_t baseline_threads = CountOsThreads();
  std::printf("\nConstant total load: %zu samples per run, %zu sensors/plant, "
              "pool=%zu+1 threads, %zu producers\n",
              kTotalSamples, kSensorsPerPlant, kPoolThreads, kProducers);

  const std::vector<size_t> plant_counts = {1, 4, 16, 64};
  std::vector<RunResult> results;

  hod::bench::PrintSection("aggregate and per-plant samples/sec by fleet size");
  std::printf("%-8s %-9s %-10s %-14s %-12s %-12s %-12s %s\n", "plants",
              "sensors", "seconds", "aggregate/s", "plant-min/s",
              "plant-mean/s", "plant-max/s", "threads");
  for (const size_t plants : plant_counts) {
    RunResult result = RunOnce(plants);
    results.push_back(result);
    std::printf("%-8zu %-9zu %-10.3f %-14.0f %-12.0f %-12.0f %-12.0f %zu\n",
                result.plants, result.sensors_total, result.seconds,
                result.aggregate_per_sec, result.per_plant_min,
                result.per_plant_mean, result.per_plant_max,
                result.os_threads);
  }

  // Retention: fleet overhead at 64 plants vs the single-plant baseline at
  // the SAME total sample count. 1.0 = routing + task scheduling are free.
  const double base = results.front().aggregate_per_sec;
  const double at64 = results.back().aggregate_per_sec;
  const double retention = base > 0.0 ? at64 / base : 0.0;

  // Thread bound: pool workers + service + timer + producers + main +
  // slack. Per-plant threading would sit near 64 * 4 = 256.
  const size_t thread_limit =
      baseline_threads + kPoolThreads + 1 + 1 + kProducers + 4;
  const size_t threads_at64 = results.back().os_threads;
  const bool threads_ok = threads_at64 > 0 && threads_at64 <= thread_limit;

  hod::bench::PrintSection("fleet-tier verdict");
  std::printf("retention (64 plants vs 1, equal load)  %.3f  (floor 0.5)\n",
              retention);
  std::printf("os threads at 64 plants                 %zu  (limit %zu)  %s\n",
              threads_at64, thread_limit, threads_ok ? "ok" : "VIOLATION");

  std::ofstream json("BENCH_FLEET.json");
  json << "{\n  \"experiment\": \"fleet_throughput\",\n"
       << "  \"sensors_per_plant\": " << kSensorsPerPlant << ",\n"
       << "  \"samples_per_run\": " << kTotalSamples << ",\n"
       << "  \"pool_threads\": " << kPoolThreads << ",\n"
       << "  \"producers\": " << kProducers << ",\n"
       << "  \"retention\": " << retention << ",\n"
       << "  \"retention_floor\": 0.5,\n"
       << "  \"threads_at_64_plants\": " << threads_at64 << ",\n"
       << "  \"thread_limit\": " << thread_limit << ",\n"
       << "  \"threads_ok\": " << (threads_ok ? "true" : "false") << ",\n"
       << "  \"runs\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    json << "    {\"plants\": " << r.plants
         << ", \"sensors_total\": " << r.sensors_total
         << ", \"samples_total\": " << r.samples_total
         << ", \"seconds\": " << r.seconds << ", \"aggregate_per_sec\": "
         << static_cast<uint64_t>(r.aggregate_per_sec)
         << ", \"per_plant_min\": " << static_cast<uint64_t>(r.per_plant_min)
         << ", \"per_plant_mean\": "
         << static_cast<uint64_t>(r.per_plant_mean)
         << ", \"per_plant_max\": " << static_cast<uint64_t>(r.per_plant_max)
         << ", \"os_threads\": " << r.os_threads << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  json.close();
  std::printf("\nWrote BENCH_FLEET.json\n");
  return threads_ok ? 0 : 1;
}
