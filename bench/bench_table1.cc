// E1 — Table 1: Categorization of Literature on Outliers.
//
// Regenerates the paper's Table 1 from the registry metadata and, unlike
// the paper (which prints the taxonomy without evidence), validates every
// checkmark empirically: the technique is trained and scored on a synthetic
// dataset of the claimed shape and must rank injected anomalies above a
// random-score baseline (reported as ROC-AUC and event-tolerant best F1).

#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "detect/registry.h"
#include "eval/metrics.h"
#include "sim/datasets.h"
#include "util/rng.h"

namespace hod {
namespace {

struct Validation {
  double auc = 0.0;
  double best_f1 = 0.0;
  bool ok = false;
  std::string note;
};

constexpr uint64_t kSeed = 7;

Validation ValidatePoints(const detect::TechniqueInfo& info) {
  Validation v;
  // Two PTS flavors: plain point detectors see an unordered point cloud;
  // stream-based techniques (vibration windows, AR prediction) see the
  // same points in arrival order, which is what "outliers as points" means
  // for them.
  const bool streaming = info.row == 3 || info.row == 20;
  sim::PointDataset dataset;
  if (streaming) {
    sim::SeriesDatasetOptions series_options;
    series_options.seed = kSeed;
    static const sim::OutlierType kAdditive = sim::OutlierType::kAdditive;
    series_options.only_type = &kAdditive;
    auto series_or = sim::GenerateSeriesDataset(series_options);
    if (!series_or.ok()) {
      v.note = series_or.status().ToString();
      return v;
    }
    for (const auto& series : series_or->train) {
      for (double value : series.values()) {
        dataset.train.push_back({value});
        dataset.train_labels.push_back(0);
      }
    }
    for (size_t s = 0; s < series_or->test.size(); ++s) {
      for (size_t i = 0; i < series_or->test[s].size(); ++i) {
        dataset.test.push_back({series_or->test[s][i]});
        dataset.test_labels.push_back(series_or->test_labels[s][i]);
      }
    }
  } else {
    sim::PointDatasetOptions options;
    options.seed = kSeed;
    options.dim = 1;  // PTS = univariate points (sensor readings)
    auto dataset_or = sim::GeneratePointDataset(options);
    if (!dataset_or.ok()) {
      v.note = dataset_or.status().ToString();
      return v;
    }
    dataset = std::move(dataset_or).value();
  }
  auto detector_or = detect::MakeVectorDetector(info.row);
  if (!detector_or.ok()) {
    v.note = detector_or.status().ToString();
    return v;
  }
  auto& detector = *detector_or.value();
  const Status trained =
      info.supervised
          ? detector.TrainSupervised(dataset.train, dataset.train_labels)
          : detector.Train(dataset.train);
  if (!trained.ok()) {
    v.note = trained.ToString();
    return v;
  }
  auto scores_or = detector.Score(dataset.test);
  if (!scores_or.ok()) {
    v.note = scores_or.status().ToString();
    return v;
  }
  v.auc = eval::RocAuc(scores_or.value(), dataset.test_labels).value_or(0.5);
  v.best_f1 = eval::BestF1WithTolerance(scores_or.value(),
                                        dataset.test_labels, streaming ? 3 : 0)
                  ->f1;
  v.ok = true;
  return v;
}

Validation ValidateSequences(const detect::TechniqueInfo& info) {
  Validation v;
  sim::SequenceDatasetOptions options;
  options.seed = kSeed;
  options.benign_substitution_rate = 0.0;
  auto dataset_or = sim::GenerateSequenceDataset(options);
  if (!dataset_or.ok()) {
    v.note = dataset_or.status().ToString();
    return v;
  }
  const auto& dataset = dataset_or.value();
  auto detector_or = detect::MakeSequenceDetector(info.row);
  if (!detector_or.ok()) {
    v.note = detector_or.status().ToString();
    return v;
  }
  auto& detector = *detector_or.value();
  const Status trained =
      info.supervised
          ? detector.TrainSupervised(dataset.train, dataset.train_labels)
          : detector.Train(dataset.train);
  if (!trained.ok()) {
    v.note = trained.ToString();
    return v;
  }
  double auc_sum = 0.0;
  double f1_sum = 0.0;
  for (size_t s = 0; s < dataset.test.size(); ++s) {
    auto scores_or = detector.Score(dataset.test[s]);
    if (!scores_or.ok()) {
      v.note = scores_or.status().ToString();
      return v;
    }
    auc_sum +=
        eval::RocAuc(scores_or.value(), dataset.test_labels[s]).value_or(0.5);
    f1_sum += eval::BestF1WithTolerance(scores_or.value(),
                                        dataset.test_labels[s], 3)
                  ->f1;
  }
  v.auc = auc_sum / static_cast<double>(dataset.test.size());
  v.best_f1 = f1_sum / static_cast<double>(dataset.test.size());
  v.ok = true;
  return v;
}

Validation ValidateTimeSeries(const detect::TechniqueInfo& info) {
  Validation v;
  if (info.whole_series) {
    auto dataset_or = sim::GenerateWholeSeriesDataset(12, 16, 0.4, kSeed);
    if (!dataset_or.ok()) {
      v.note = dataset_or.status().ToString();
      return v;
    }
    const auto& dataset = dataset_or.value();
    auto detector_or = detect::MakeSeriesDetector(info.row);
    if (!detector_or.ok()) {
      v.note = detector_or.status().ToString();
      return v;
    }
    auto& detector = *detector_or.value();
    const Status trained = detector.Train(dataset.train);
    if (!trained.ok()) {
      v.note = trained.ToString();
      return v;
    }
    std::vector<double> series_scores;
    for (const auto& series : dataset.test) {
      auto scores_or = detector.Score(series);
      if (!scores_or.ok()) {
        v.note = scores_or.status().ToString();
        return v;
      }
      series_scores.push_back(scores_or->empty() ? 0.0 : (*scores_or)[0]);
    }
    v.auc = eval::RocAuc(series_scores, dataset.test_labels).value_or(0.5);
    v.best_f1 = eval::BestF1(series_scores, dataset.test_labels)->f1;
    v.ok = true;
    v.note = "whole-series";
    return v;
  }
  sim::SeriesDatasetOptions options;
  options.seed = kSeed;
  auto dataset_or = sim::GenerateSeriesDataset(options);
  if (!dataset_or.ok()) {
    v.note = dataset_or.status().ToString();
    return v;
  }
  const auto& dataset = dataset_or.value();
  auto detector_or = detect::MakeSeriesDetector(info.row);
  if (!detector_or.ok()) {
    v.note = detector_or.status().ToString();
    return v;
  }
  auto& detector = *detector_or.value();
  const Status trained =
      info.supervised
          ? detector.TrainSupervised(dataset.test, dataset.test_labels)
          : detector.Train(dataset.train);
  if (!trained.ok()) {
    v.note = trained.ToString();
    return v;
  }
  double auc_sum = 0.0;
  double f1_sum = 0.0;
  for (size_t s = 0; s < dataset.test.size(); ++s) {
    auto scores_or = detector.Score(dataset.test[s]);
    if (!scores_or.ok()) {
      v.note = scores_or.status().ToString();
      return v;
    }
    auc_sum +=
        eval::RocAuc(scores_or.value(), dataset.test_labels[s]).value_or(0.5);
    f1_sum += eval::BestF1WithTolerance(scores_or.value(),
                                        dataset.test_labels[s], 3)
                  ->f1;
  }
  v.auc = auc_sum / static_cast<double>(dataset.test.size());
  v.best_f1 = f1_sum / static_cast<double>(dataset.test.size());
  v.ok = true;
  return v;
}

}  // namespace
}  // namespace hod

int main() {
  using namespace hod;
  bench::PrintHeader("E1", "Categorization of outlier-detection literature",
                     "Table 1");

  bench::PrintSection("Table 1 as printed in the paper");
  Table taxonomy({"#", "Technique", "Type", "PTS", "SSQ", "TSS", "Citation"});
  for (const detect::TechniqueInfo& info : detect::Table1()) {
    taxonomy.AddRow({std::to_string(info.row), info.name,
                     std::string(detect::FamilyAbbreviation(info.family)),
                     info.mask.points ? "x" : "", info.mask.sequences ? "x" : "",
                     info.mask.time_series ? "x" : "", info.citation});
  }
  taxonomy.Print(std::cout);

  bench::PrintSection(
      "Empirical validation of every checkmark (beats random = AUC > 0.5)");
  std::cout << "Datasets: PTS = 1-D two-regime points with 6-sigma "
               "displacements;\n          SSQ = cyclic-grammar sequences "
               "with corrupted bursts;\n          TSS = AR(1)+seasonal "
               "series with the four Fig.-1 outlier types.\n";
  Table validation(
      {"#", "Technique", "Shape", "ROC-AUC", "best-F1", "verdict", "note"});
  size_t passed = 0;
  size_t total = 0;
  for (const detect::TechniqueInfo& info : detect::Table1()) {
    struct ShapeCase {
      bool claimed;
      const char* tag;
      Validation (*run)(const detect::TechniqueInfo&);
    };
    const ShapeCase cases[] = {
        {info.mask.points, "PTS", &ValidatePoints},
        {info.mask.sequences, "SSQ", &ValidateSequences},
        {info.mask.time_series, "TSS", &ValidateTimeSeries},
    };
    for (const ShapeCase& shape : cases) {
      if (!shape.claimed) continue;
      ++total;
      const Validation v = shape.run(info);
      // Random baseline: AUC 0.5 and (at ~5% anomaly rate) best-F1 ~0.1
      // from the flag-everything threshold. A technique validates its
      // checkmark by beating either bar decisively.
      const bool beats_random = v.ok && (v.auc > 0.55 || v.best_f1 > 0.3);
      if (beats_random) ++passed;
      validation.AddRow({std::to_string(info.row), info.name, shape.tag,
                         v.ok ? bench::Fmt(v.auc) : "-",
                         v.ok ? bench::Fmt(v.best_f1) : "-",
                         beats_random ? "PASS" : "FAIL", v.note});
    }
  }
  validation.Print(std::cout);
  std::cout << "\nVerdict rule: PASS when ROC-AUC > 0.55 or event-tolerant "
               "best-F1 > 0.3\n(random baseline: AUC 0.5, best-F1 ~0.1).\n";
  std::cout << "Checkmarks validated: " << passed << "/" << total << "\n";
  return passed == total ? 0 : 1;
}
