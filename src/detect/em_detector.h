#ifndef HOD_DETECT_EM_DETECTOR_H_
#define HOD_DETECT_EM_DETECTOR_H_

#include <cstdint>
#include <vector>

#include "detect/detector.h"

namespace hod::detect {

/// Expectation-Maximization density model (Pan et al. 2008 "Ganesha" style)
/// — Table 1 row 4, family DA, data types PTS + SSQ + TSS.
///
/// Fits a diagonal-covariance Gaussian mixture to normal vectors with EM;
/// a test vector's outlierness grows with its negative log-likelihood under
/// the fitted mixture ("a sequence is an anomaly if it is unlikely to be
/// generated from the summary model").
struct EmOptions {
  size_t components = 3;
  size_t max_iters = 50;
  /// Convergence tolerance on mean log-likelihood improvement.
  double tolerance = 1e-5;
  /// Variance floor (numerical stability / degenerate clusters).
  double min_variance = 1e-6;
  uint64_t seed = 42;
  /// Negative-log-likelihood gap (in nats above the training median) at
  /// which outlierness reaches 0.5.
  double nll_scale = 6.0;
};

class EmDetector : public VectorDetector {
 public:
  explicit EmDetector(EmOptions options = {});

  std::string name() const override { return "ExpectationMaximization"; }

  Status Train(const std::vector<std::vector<double>>& data) override;

  StatusOr<std::vector<double>> Score(
      const std::vector<std::vector<double>>& data) const override;

  /// Mixture internals (for tests): weights sum to 1, one mean/variance row
  /// per component.
  const std::vector<double>& weights() const { return weights_; }
  const std::vector<std::vector<double>>& means() const { return means_; }
  const std::vector<std::vector<double>>& variances() const {
    return variances_;
  }
  /// Mean log-likelihood of the training data under the final model.
  double train_log_likelihood() const { return train_ll_; }

 private:
  double LogDensity(const std::vector<double>& x) const;

  EmOptions options_;
  std::vector<double> weights_;
  std::vector<std::vector<double>> means_;
  std::vector<std::vector<double>> variances_;
  double baseline_nll_ = 0.0;  // median training NLL
  double train_ll_ = 0.0;
  size_t dim_ = 0;
  bool trained_ = false;
};

}  // namespace hod::detect

#endif  // HOD_DETECT_EM_DETECTOR_H_
