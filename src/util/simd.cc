#include "util/simd.h"

#include <cmath>

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define HOD_SIMD_X86 1
#elif defined(__aarch64__)
#include <arm_neon.h>
#define HOD_SIMD_NEON 1
#endif

namespace hod::util::simd {

namespace {

// ---------------------------------------------------------------------------
// Scalar reference kernels. These spell out the exact IEEE operation order
// of the loops they replaced (knn/lof/kmeans/single_linkage distance loops,
// OnlineMonitor::Push), and double as the tail handler of every vector path.
// ---------------------------------------------------------------------------

double SquaredL2Scalar(const double* a, const double* b, size_t n) {
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

void MulAccumulateScalar(double* acc, const double* x, const double* y,
                         size_t n) {
  for (size_t i = 0; i < n; ++i) {
    acc[i] += x[i] * y[i];
  }
}

void AxpyScalar(double* acc, double a, const double* x, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    acc[i] += a * x[i];
  }
}

void MonitorScoreLanesScalar(const double* sample, const double* pred,
                             double* sigma, double* score, size_t n,
                             double sigma_scale, double threshold,
                             double alpha, double sigma_floor) {
  for (size_t i = 0; i < n; ++i) {
    const double residual = sample[i] - pred[i];
    const double z = std::fabs(residual) / sigma[i];
    const double excess = z - 1.0;
    score[i] = excess <= 0.0 ? 0.0 : excess / (excess + sigma_scale);
    if (alpha > 0.0 && score[i] <= threshold) {
      // Same association as the monitor: ((1-a)*s)*s + (a*r)*r.
      const double next = std::sqrt((1.0 - alpha) * sigma[i] * sigma[i] +
                                    alpha * residual * residual);
      sigma[i] = std::max(next, sigma_floor);
    }
  }
}

#if defined(HOD_SIMD_X86)

// ---------------------------------------------------------------------------
// AVX2 kernels. Compiled with a function-level target attribute so the rest
// of the binary stays baseline x86-64; only executed after the runtime
// __builtin_cpu_supports("avx2") check passes. No FMA anywhere: the scalar
// paths these must match compile to separate mul+add on the baseline ISA.
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) double SquaredL2Avx2(const double* a,
                                                     const double* b,
                                                     size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  __m256d acc3 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256d d0 =
        _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    const __m256d d1 =
        _mm256_sub_pd(_mm256_loadu_pd(a + i + 4), _mm256_loadu_pd(b + i + 4));
    const __m256d d2 =
        _mm256_sub_pd(_mm256_loadu_pd(a + i + 8), _mm256_loadu_pd(b + i + 8));
    const __m256d d3 = _mm256_sub_pd(_mm256_loadu_pd(a + i + 12),
                                     _mm256_loadu_pd(b + i + 12));
    acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(d0, d0));
    acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(d1, d1));
    acc2 = _mm256_add_pd(acc2, _mm256_mul_pd(d2, d2));
    acc3 = _mm256_add_pd(acc3, _mm256_mul_pd(d3, d3));
  }
  for (; i + 4 <= n; i += 4) {
    const __m256d d =
        _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(d, d));
  }
  const __m256d acc =
      _mm256_add_pd(_mm256_add_pd(acc0, acc1), _mm256_add_pd(acc2, acc3));
  const __m128d lo = _mm256_castpd256_pd128(acc);
  const __m128d hi = _mm256_extractf128_pd(acc, 1);
  const __m128d pair = _mm_add_pd(lo, hi);
  double sum = _mm_cvtsd_f64(_mm_add_sd(pair, _mm_unpackhi_pd(pair, pair)));
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

__attribute__((target("avx2"))) void MulAccumulateAvx2(double* acc,
                                                       const double* x,
                                                       const double* y,
                                                       size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d prod =
        _mm256_mul_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i));
    _mm256_storeu_pd(acc + i, _mm256_add_pd(_mm256_loadu_pd(acc + i), prod));
  }
  MulAccumulateScalar(acc + i, x + i, y + i, n - i);
}

__attribute__((target("avx2"))) void AxpyAvx2(double* acc, double a,
                                              const double* x, size_t n) {
  const __m256d va = _mm256_set1_pd(a);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d prod = _mm256_mul_pd(va, _mm256_loadu_pd(x + i));
    _mm256_storeu_pd(acc + i, _mm256_add_pd(_mm256_loadu_pd(acc + i), prod));
  }
  AxpyScalar(acc + i, a, x + i, n - i);
}

__attribute__((target("avx2"))) void MonitorScoreLanesAvx2(
    const double* sample, const double* pred, double* sigma, double* score,
    size_t n, double sigma_scale, double threshold, double alpha,
    double sigma_floor) {
  const __m256d vzero = _mm256_setzero_pd();
  const __m256d vone = _mm256_set1_pd(1.0);
  const __m256d vscale = _mm256_set1_pd(sigma_scale);
  const __m256d vthreshold = _mm256_set1_pd(threshold);
  const __m256d valpha = _mm256_set1_pd(alpha);
  const __m256d vretain = _mm256_set1_pd(1.0 - alpha);
  const __m256d vfloor = _mm256_set1_pd(sigma_floor);
  const __m256d abs_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
  const bool adapt = alpha > 0.0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vsigma = _mm256_loadu_pd(sigma + i);
    const __m256d residual =
        _mm256_sub_pd(_mm256_loadu_pd(sample + i), _mm256_loadu_pd(pred + i));
    const __m256d z =
        _mm256_div_pd(_mm256_and_pd(residual, abs_mask), vsigma);
    const __m256d excess = _mm256_sub_pd(z, vone);
    const __m256d ratio =
        _mm256_div_pd(excess, _mm256_add_pd(excess, vscale));
    // excess <= 0 -> score 0; the masked-out lanes' ratio is discarded.
    const __m256d positive = _mm256_cmp_pd(excess, vzero, _CMP_GT_OQ);
    const __m256d vscore = _mm256_and_pd(positive, ratio);
    _mm256_storeu_pd(score + i, vscore);
    if (adapt) {
      // ((1-a)*s)*s + (a*r)*r, sqrt, floor — same association as scalar.
      const __m256d decayed = _mm256_mul_pd(
          _mm256_mul_pd(vretain, vsigma), vsigma);
      const __m256d injected = _mm256_mul_pd(
          _mm256_mul_pd(valpha, residual), residual);
      const __m256d next = _mm256_max_pd(
          _mm256_sqrt_pd(_mm256_add_pd(decayed, injected)), vfloor);
      const __m256d within =
          _mm256_cmp_pd(vscore, vthreshold, _CMP_LE_OQ);
      _mm256_storeu_pd(sigma + i, _mm256_blendv_pd(vsigma, next, within));
    }
  }
  MonitorScoreLanesScalar(sample + i, pred + i, sigma + i, score + i, n - i,
                          sigma_scale, threshold, alpha, sigma_floor);
}

#endif  // HOD_SIMD_X86

#if defined(HOD_SIMD_NEON)

// ---------------------------------------------------------------------------
// NEON kernels (aarch64; NEON is part of the baseline ISA there, so no
// runtime probe is needed). Same no-FMA, same per-lane operation order.
// ---------------------------------------------------------------------------

double SquaredL2Neon(const double* a, const double* b, size_t n) {
  float64x2_t acc0 = vdupq_n_f64(0.0);
  float64x2_t acc1 = vdupq_n_f64(0.0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float64x2_t d0 = vsubq_f64(vld1q_f64(a + i), vld1q_f64(b + i));
    const float64x2_t d1 =
        vsubq_f64(vld1q_f64(a + i + 2), vld1q_f64(b + i + 2));
    acc0 = vaddq_f64(acc0, vmulq_f64(d0, d0));
    acc1 = vaddq_f64(acc1, vmulq_f64(d1, d1));
  }
  double sum = vaddvq_f64(vaddq_f64(acc0, acc1));
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

void MulAccumulateNeon(double* acc, const double* x, const double* y,
                       size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t prod = vmulq_f64(vld1q_f64(x + i), vld1q_f64(y + i));
    vst1q_f64(acc + i, vaddq_f64(vld1q_f64(acc + i), prod));
  }
  MulAccumulateScalar(acc + i, x + i, y + i, n - i);
}

void AxpyNeon(double* acc, double a, const double* x, size_t n) {
  const float64x2_t va = vdupq_n_f64(a);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t prod = vmulq_f64(va, vld1q_f64(x + i));
    vst1q_f64(acc + i, vaddq_f64(vld1q_f64(acc + i), prod));
  }
  AxpyScalar(acc + i, a, x + i, n - i);
}

void MonitorScoreLanesNeon(const double* sample, const double* pred,
                           double* sigma, double* score, size_t n,
                           double sigma_scale, double threshold, double alpha,
                           double sigma_floor) {
  const float64x2_t vzero = vdupq_n_f64(0.0);
  const float64x2_t vone = vdupq_n_f64(1.0);
  const float64x2_t vscale = vdupq_n_f64(sigma_scale);
  const float64x2_t vthreshold = vdupq_n_f64(threshold);
  const float64x2_t valpha = vdupq_n_f64(alpha);
  const float64x2_t vretain = vdupq_n_f64(1.0 - alpha);
  const float64x2_t vfloor = vdupq_n_f64(sigma_floor);
  const bool adapt = alpha > 0.0;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t vsigma = vld1q_f64(sigma + i);
    const float64x2_t residual =
        vsubq_f64(vld1q_f64(sample + i), vld1q_f64(pred + i));
    const float64x2_t z = vdivq_f64(vabsq_f64(residual), vsigma);
    const float64x2_t excess = vsubq_f64(z, vone);
    const float64x2_t ratio = vdivq_f64(excess, vaddq_f64(excess, vscale));
    const uint64x2_t positive = vcgtq_f64(excess, vzero);
    const float64x2_t vscore = vbslq_f64(positive, ratio, vzero);
    vst1q_f64(score + i, vscore);
    if (adapt) {
      const float64x2_t decayed =
          vmulq_f64(vmulq_f64(vretain, vsigma), vsigma);
      const float64x2_t injected =
          vmulq_f64(vmulq_f64(valpha, residual), residual);
      const float64x2_t next =
          vmaxq_f64(vsqrtq_f64(vaddq_f64(decayed, injected)), vfloor);
      const uint64x2_t within = vcleq_f64(vscore, vthreshold);
      vst1q_f64(sigma + i, vbslq_f64(within, next, vsigma));
    }
  }
  MonitorScoreLanesScalar(sample + i, pred + i, sigma + i, score + i, n - i,
                          sigma_scale, threshold, alpha, sigma_floor);
}

#endif  // HOD_SIMD_NEON

// ---------------------------------------------------------------------------
// Dispatch table, resolved once at first use.
// ---------------------------------------------------------------------------

struct Dispatch {
  Backend backend = Backend::kScalar;
  double (*squared_l2)(const double*, const double*, size_t) =
      &SquaredL2Scalar;
  void (*mul_accumulate)(double*, const double*, const double*, size_t) =
      &MulAccumulateScalar;
  void (*axpy)(double*, double, const double*, size_t) = &AxpyScalar;
  void (*monitor_score)(const double*, const double*, double*, double*,
                        size_t, double, double, double, double) =
      &MonitorScoreLanesScalar;
};

bool BackendAvailable(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return true;
    case Backend::kAvx2:
#if defined(HOD_SIMD_X86)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Backend::kNeon:
#if defined(HOD_SIMD_NEON)
      return true;
#else
      return false;
#endif
  }
  return false;
}

Dispatch MakeDispatch(Backend backend) {
  Dispatch d;
  d.backend = backend;
  switch (backend) {
    case Backend::kScalar:
      break;
#if defined(HOD_SIMD_X86)
    case Backend::kAvx2:
      d.squared_l2 = &SquaredL2Avx2;
      d.mul_accumulate = &MulAccumulateAvx2;
      d.axpy = &AxpyAvx2;
      d.monitor_score = &MonitorScoreLanesAvx2;
      break;
#endif
#if defined(HOD_SIMD_NEON)
    case Backend::kNeon:
      d.squared_l2 = &SquaredL2Neon;
      d.mul_accumulate = &MulAccumulateNeon;
      d.axpy = &AxpyNeon;
      d.monitor_score = &MonitorScoreLanesNeon;
      break;
#endif
    default:
      d.backend = Backend::kScalar;
      break;
  }
  return d;
}

Backend DetectBackend() {
  if (BackendAvailable(Backend::kAvx2)) return Backend::kAvx2;
  if (BackendAvailable(Backend::kNeon)) return Backend::kNeon;
  return Backend::kScalar;
}

Dispatch& ActiveDispatch() {
  static Dispatch dispatch = MakeDispatch(DetectBackend());
  return dispatch;
}

}  // namespace

Backend ActiveBackend() { return ActiveDispatch().backend; }

std::string_view BackendName() {
  switch (ActiveBackend()) {
    case Backend::kAvx2:
      return "avx2";
    case Backend::kNeon:
      return "neon";
    case Backend::kScalar:
      return "scalar";
  }
  return "scalar";
}

Backend SetBackendForTest(Backend backend) {
  if (BackendAvailable(backend)) {
    ActiveDispatch() = MakeDispatch(backend);
  }
  return ActiveBackend();
}

double SquaredL2(const double* a, const double* b, size_t n) {
  return ActiveDispatch().squared_l2(a, b, n);
}

double SquaredL2Reference(const double* a, const double* b, size_t n) {
  return SquaredL2Scalar(a, b, n);
}

void MulAccumulate(double* acc, const double* x, const double* y, size_t n) {
  ActiveDispatch().mul_accumulate(acc, x, y, n);
}

void Axpy(double* acc, double a, const double* x, size_t n) {
  ActiveDispatch().axpy(acc, a, x, n);
}

void MonitorScoreLanes(const double* sample, const double* pred,
                       double* sigma, double* score, size_t n,
                       double sigma_scale, double threshold, double alpha,
                       double sigma_floor) {
  ActiveDispatch().monitor_score(sample, pred, sigma, score, n, sigma_scale,
                                 threshold, alpha, sigma_floor);
}

}  // namespace hod::util::simd
