#include "detect/lcs_detector.h"

#include <algorithm>
#include <set>

#include "timeseries/distance.h"
#include "timeseries/window.h"

namespace hod::detect {

LcsDetector::LcsDetector(LcsOptions options) : options_(options) {}

Status LcsDetector::Train(const std::vector<ts::DiscreteSequence>& normal) {
  if (options_.window == 0) {
    return Status::InvalidArgument("window must be > 0");
  }
  if (options_.medoids == 0) {
    return Status::InvalidArgument("medoids must be > 0");
  }
  std::set<std::vector<ts::Symbol>> unique;
  for (const auto& sequence : normal) {
    HOD_RETURN_IF_ERROR(sequence.Validate());
    for (auto& w : ts::SymbolWindows(sequence.symbols(), options_.window)) {
      unique.insert(std::move(w));
      if (unique.size() >= options_.max_candidates) break;
    }
  }
  if (unique.empty()) {
    return Status::InvalidArgument("no training windows");
  }
  std::vector<std::vector<ts::Symbol>> candidates(unique.begin(),
                                                  unique.end());
  // Greedy farthest-first medoid selection under LCS distance: start with
  // the first candidate, repeatedly add the candidate least similar to the
  // current medoid set. This covers the variety of normal shapes.
  medoids_.clear();
  medoids_.push_back(candidates.front());
  std::vector<double> best_sim(candidates.size(), 0.0);
  while (medoids_.size() < std::min(options_.medoids, candidates.size())) {
    size_t farthest = 0;
    double farthest_sim = 2.0;
    for (size_t i = 0; i < candidates.size(); ++i) {
      best_sim[i] = std::max(best_sim[i],
                             ts::LcsSimilarity(candidates[i], medoids_.back()));
      if (best_sim[i] < farthest_sim) {
        farthest_sim = best_sim[i];
        farthest = i;
      }
    }
    if (farthest_sim >= 1.0) break;  // everything already covered exactly
    medoids_.push_back(candidates[farthest]);
  }
  trained_ = true;
  return Status::Ok();
}

StatusOr<std::vector<double>> LcsDetector::Score(
    const ts::DiscreteSequence& sequence) const {
  if (!trained_) return Status::FailedPrecondition("detector not trained");
  const size_t n = sequence.size();
  std::vector<double> point_scores(n, 0.0);
  if (n < options_.window) return point_scores;

  auto spans_or = ts::SlidingWindows(n, options_.window, 1);
  if (!spans_or.ok()) return spans_or.status();
  const auto& spans = spans_or.value();

  std::vector<double> window_scores(spans.size(), 0.0);
  for (size_t w = 0; w < spans.size(); ++w) {
    const std::vector<ts::Symbol> window(
        sequence.symbols().begin() + spans[w].begin,
        sequence.symbols().begin() + spans[w].end);
    double best = 0.0;
    for (const auto& medoid : medoids_) {
      best = std::max(best, ts::LcsSimilarity(window, medoid));
      if (best >= 1.0) break;
    }
    window_scores[w] = 1.0 - best;
  }
  return ts::WindowScoresToPointScores(n, spans, window_scores);
}

}  // namespace hod::detect
