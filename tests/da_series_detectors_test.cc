// DA-family series detectors: vibration signature and phased k-means.

#include <gtest/gtest.h>

#include <cmath>

#include "detect/phased_kmeans.h"
#include "detect/vibration_signature.h"
#include "detector_test_util.h"
#include "eval/metrics.h"
#include "util/rng.h"

namespace hod::detect {
namespace {

using detect_test::ExpectScoresInUnitInterval;

/// Vibration-style signal: base tone + noise, with an optional section of
/// high-frequency content (the "bearing fault").
ts::TimeSeries MakeVibration(size_t n, bool faulty_section, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values(n);
  for (size_t i = 0; i < n; ++i) {
    values[i] = std::sin(0.2 * static_cast<double>(i)) +
                0.3 * rng.NextGaussian();
    if (faulty_section && i >= n / 2 && i < n / 2 + 128) {
      values[i] += 1.5 * std::sin(2.9 * static_cast<double>(i));
    }
  }
  return ts::TimeSeries("vib", 0.0, 1.0, std::move(values));
}

TEST(VibrationSignature, LearnsNormalizedReference) {
  VibrationSignatureDetector detector;
  ASSERT_TRUE(detector.Train({MakeVibration(512, false, 1)}).ok());
  double total = 0.0;
  for (double e : detector.reference_signature()) {
    EXPECT_GE(e, 0.0);
    total += e;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(VibrationSignature, FlagsSpectralChange) {
  VibrationSignatureDetector detector;
  ASSERT_TRUE(detector
                  .Train({MakeVibration(512, false, 1),
                          MakeVibration(512, false, 2)})
                  .ok());
  const ts::TimeSeries faulty = MakeVibration(512, true, 3);
  auto scores = detector.Score(faulty);
  ASSERT_TRUE(scores.ok());
  ExpectScoresInUnitInterval(scores.value());
  // Mean score in the faulty section exceeds the clean sections.
  double fault_mean = 0.0;
  double clean_mean = 0.0;
  size_t fault_count = 0;
  size_t clean_count = 0;
  for (size_t i = 0; i < scores->size(); ++i) {
    if (i >= 256 && i < 256 + 128) {
      fault_mean += (*scores)[i];
      ++fault_count;
    } else {
      clean_mean += (*scores)[i];
      ++clean_count;
    }
  }
  fault_mean /= static_cast<double>(fault_count);
  clean_mean /= static_cast<double>(clean_count);
  EXPECT_GT(fault_mean, clean_mean + 0.15);
}

TEST(VibrationSignature, RejectsBadOptions) {
  VibrationSignatureDetector zero_window(
      VibrationSignatureOptions{.window = 0});
  EXPECT_FALSE(zero_window.Train({MakeVibration(128, false, 1)}).ok());
  VibrationSignatureDetector detector;
  EXPECT_FALSE(detector.Train({}).ok());
}

TEST(VibrationSignature, ShortSeriesScoresZero) {
  VibrationSignatureDetector detector;
  ASSERT_TRUE(detector.Train({MakeVibration(512, false, 1)}).ok());
  const ts::TimeSeries tiny("t", 0.0, 1.0, {1.0, 2.0, 3.0});
  auto scores = detector.Score(tiny).value();
  for (double s : scores) EXPECT_DOUBLE_EQ(s, 0.0);
}

TEST(PhasedKMeans, ProfileIsPhaseInvariant) {
  // A series and its rotation produce (nearly) the same profile.
  std::vector<double> base(128);
  for (size_t i = 0; i < base.size(); ++i) {
    base[i] = std::sin(2.0 * M_PI * static_cast<double>(i) / 64.0);
  }
  std::vector<double> rotated(base.size());
  for (size_t i = 0; i < base.size(); ++i) {
    rotated[i] = base[(i + 37) % base.size()];
  }
  auto p1 = PhasedKMeansDetector::PhaseAlignedProfile(
                ts::TimeSeries("a", 0, 1, base), 16)
                .value();
  auto p2 = PhasedKMeansDetector::PhaseAlignedProfile(
                ts::TimeSeries("b", 0, 1, rotated), 16)
                .value();
  for (size_t f = 0; f < p1.size(); ++f) {
    EXPECT_NEAR(p1[f], p2[f], 0.15) << "frame " << f;
  }
}

TEST(PhasedKMeans, SeparatesStructurallyDifferentSeries) {
  auto dataset = sim::GenerateWholeSeriesDataset(10, 12, 0.4, 5).value();
  PhasedKMeansDetector detector;
  ASSERT_TRUE(detector.Train(dataset.train).ok());
  auto scores = detector.ScoreBatch(dataset.test);
  ASSERT_TRUE(scores.ok());
  auto auc = eval::RocAuc(scores.value(), dataset.test_labels);
  ASSERT_TRUE(auc.ok());
  EXPECT_GT(auc.value(), 0.9);
}

TEST(PhasedKMeans, RejectsShortSeries) {
  PhasedKMeansDetector detector(
      PhasedKMeansOptions{.profile_length = 32});
  ts::TimeSeries tiny("t", 0, 1, {1.0, 2.0});
  EXPECT_FALSE(detector.Train({tiny}).ok());
}

TEST(PhasedKMeans, RequiresTraining) {
  PhasedKMeansDetector detector;
  ts::TimeSeries s("s", 0, 1, std::vector<double>(64, 0.0));
  EXPECT_EQ(detector.ScoreSeries(s).status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace hod::detect
