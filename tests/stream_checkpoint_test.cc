#include "stream/checkpoint.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "stream/engine.h"
#include "util/rng.h"

namespace hod::stream {
namespace {

using hierarchy::ProductionLevel;

StreamEngineOptions SyncOptions() {
  StreamEngineOptions options;
  options.synchronous = true;
  options.monitor.warmup = 32;
  options.snapshot_every = 8;
  // These tests feed sensors sequentially, so the staleness sweep (which
  // compares each sensor against the *global* frontier) would quarantine
  // the later-fed ones. Staleness is covered by stream_health_test; here
  // we want serialization, not sweep artifacts.
  options.health.staleness_timeout = 0.0;
  return options;
}

/// Deterministic stream with a fault burst and a quarantine-worthy
/// flatline, so checkpoints carry non-trivial alarm and health state.
std::vector<double> MakeStream(uint64_t seed, size_t n) {
  Rng rng(seed);
  std::vector<double> values;
  values.reserve(n);
  double noise = 0.0;
  for (size_t t = 0; t < n; ++t) {
    noise = 0.7 * noise + rng.Gaussian(0.0, 0.25);
    double value = 50.0 + noise;
    if (t >= 200 && t < 215) value += 6.0;  // process fault burst
    values.push_back(value);
  }
  return values;
}

void Feed(StreamEngine& engine, const std::string& id,
          const std::vector<double>& values, size_t from, size_t to,
          ProductionLevel level = ProductionLevel::kPhase) {
  for (size_t t = from; t < to; ++t) {
    auto ack = engine.Ingest(
        {id, level, static_cast<double>(t), values[t]});
    ASSERT_TRUE(ack.ok()) << id << " t=" << t << ": "
                          << ack.status().ToString();
  }
}

std::string CheckpointBytes(const StreamEngine& engine) {
  std::ostringstream os;
  Status status = engine.Checkpoint(os);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return os.str();
}

TEST(EngineCheckpoint, WriteReadRoundTripsEveryField) {
  StreamEngineOptions options = SyncOptions();
  StreamEngine engine(options);
  ASSERT_TRUE(engine.AddSensor("a", ProductionLevel::kPhase).ok());
  ASSERT_TRUE(engine
                  .AddSensor("b", ProductionLevel::kEnvironment,
                             BackpressurePolicy::kDropOldest)
                  .ok());
  ASSERT_TRUE(engine.Start().ok());
  const std::vector<double> values = MakeStream(21, 400);
  Feed(engine, "a", values, 0, 400);
  Feed(engine, "b", values, 0, 300, ProductionLevel::kEnvironment);
  ASSERT_TRUE(engine.Flush().ok());

  const std::string bytes = CheckpointBytes(engine);
  ASSERT_FALSE(bytes.empty());

  std::istringstream is(bytes);
  auto checkpoint = ReadEngineCheckpoint(is);
  ASSERT_TRUE(checkpoint.ok()) << checkpoint.status().ToString();
  ASSERT_EQ(checkpoint->sensors.size(), 2u);
  EXPECT_EQ(checkpoint->sensors[0].sensor_id, "a");
  EXPECT_EQ(checkpoint->sensors[1].sensor_id, "b");
  EXPECT_FALSE(checkpoint->sensors[0].has_policy);
  EXPECT_TRUE(checkpoint->sensors[1].has_policy);
  EXPECT_EQ(checkpoint->sensors[1].policy, BackpressurePolicy::kDropOldest);
  EXPECT_EQ(checkpoint->sensors[0].monitor.samples_seen, 400u);
  EXPECT_EQ(checkpoint->sensors[1].monitor.samples_seen, 300u);
  EXPECT_DOUBLE_EQ(checkpoint->sensors[0].frontier, 399.0);
  EXPECT_EQ(checkpoint->stats.ingested, 700u);
  EXPECT_GT(checkpoint->stats.alarms_raised, 0u);
  EXPECT_FALSE(checkpoint->findings.empty());

  // Re-encoding the parsed checkpoint reproduces the bytes exactly —
  // the encoding is canonical.
  std::ostringstream os;
  ASSERT_TRUE(WriteEngineCheckpoint(*checkpoint, os).ok());
  EXPECT_EQ(os.str(), bytes);
}

TEST(EngineCheckpoint, KillAndRestoreResumesByteIdentically) {
  // The tentpole acceptance test: run A streams the whole sequence in one
  // uninterrupted life; run B ingests the identical sequence but is killed
  // at the midpoint and restored from its checkpoint. Their final
  // checkpoints must be byte-equal — the restore left no seam. (The
  // *global* ingest order must match between runs: the findings log and
  // snapshot cadence are faithful to arrival order by design.)
  const std::vector<double> s1 = MakeStream(31, 600);
  const std::vector<double> s2 = MakeStream(32, 600);

  StreamEngine run_a(SyncOptions());
  ASSERT_TRUE(run_a.AddSensor("s1", ProductionLevel::kPhase).ok());
  ASSERT_TRUE(run_a.AddSensor("s2", ProductionLevel::kPhase).ok());
  ASSERT_TRUE(run_a.Start().ok());
  Feed(run_a, "s1", s1, 0, 205);
  Feed(run_a, "s2", s2, 0, 205);
  Feed(run_a, "s1", s1, 205, 600);
  Feed(run_a, "s2", s2, 205, 600);
  const std::string final_a = CheckpointBytes(run_a);

  // Run B, first life: stop at the midpoint (mid-burst for s1, so alarm
  // state and monitor baselines are both "hot").
  std::string midpoint;
  {
    StreamEngine engine(SyncOptions());
    ASSERT_TRUE(engine.AddSensor("s1", ProductionLevel::kPhase).ok());
    ASSERT_TRUE(engine.AddSensor("s2", ProductionLevel::kPhase).ok());
    ASSERT_TRUE(engine.Start().ok());
    Feed(engine, "s1", s1, 0, 205);
    Feed(engine, "s2", s2, 0, 205);
    midpoint = CheckpointBytes(engine);
    // The engine is destroyed here without Stop(): the "kill".
  }

  // Run B, second life: restore and feed the identical remainder.
  std::istringstream is(midpoint);
  auto restored = StreamEngine::Restore(is, SyncOptions());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  StreamEngine& run_b = **restored;
  EXPECT_TRUE(run_b.running());
  EXPECT_EQ(run_b.stats().ingested, 410u) << "counters carried over";
  Feed(run_b, "s1", s1, 205, 600);
  Feed(run_b, "s2", s2, 205, 600);
  const std::string final_b = CheckpointBytes(run_b);

  EXPECT_EQ(final_a.size(), final_b.size());
  EXPECT_TRUE(final_a == final_b)
      << "restore must resume byte-identically in synchronous mode";

  // And the domain-level state agrees too.
  auto probe_a = run_a.Probe("s1");
  auto probe_b = run_b.Probe("s1");
  ASSERT_TRUE(probe_a.ok());
  ASSERT_TRUE(probe_b.ok());
  EXPECT_EQ(probe_a->samples_seen, probe_b->samples_seen);
  EXPECT_EQ(probe_a->alarms_raised, probe_b->alarms_raised);
  EXPECT_EQ(run_a.Episodes().size(), run_b.Episodes().size());
}

TEST(EngineCheckpoint, RestoredIdleEngineDoesNotAgeChannelsStale) {
  // Regression: a checkpoint taken while one sensor lags the frontier
  // beyond the staleness timeout, restored into a threaded engine with a
  // fast watchdog. The restored engine is idle — no ingest advances stream
  // time — so the wall-clock sweep cadence must NOT quarantine the laggard:
  // staleness means "the plant moved on without you", and a paused plant
  // moves for nobody.
  StreamEngineOptions sync_options = SyncOptions();
  sync_options.health.staleness_timeout = 30.0;
  sync_options.health_sweep_every = 1 << 20;  // no sweep before the kill
  std::string bytes;
  {
    StreamEngine engine(sync_options);
    ASSERT_TRUE(engine.AddSensor("victim", ProductionLevel::kPhase).ok());
    ASSERT_TRUE(engine.AddSensor("live", ProductionLevel::kPhase).ok());
    ASSERT_TRUE(engine.Start().ok());
    const std::vector<double> values = MakeStream(41, 80);
    Feed(engine, "victim", values, 0, 10);
    Feed(engine, "live", values, 0, 60);  // victim now lags 49 > 30
    bytes = CheckpointBytes(engine);
  }

  StreamEngineOptions threaded = SyncOptions();
  threaded.synchronous = false;
  threaded.health.staleness_timeout = 30.0;
  threaded.watchdog_interval = std::chrono::milliseconds(5);
  std::istringstream is(bytes);
  auto restored = StreamEngine::Restore(is, threaded);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  StreamEngine& engine = **restored;

  // Dozens of watchdog sweeps pass over the idle engine.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_EQ(engine.HealthStateOf("victim"), SensorHealthState::kHealthy)
      << "an idle restored engine quarantined a channel on wall-clock time";

  // Fresh ingest moves the frontier: the lag is now real staleness, and
  // the next sweep may quarantine the victim.
  const std::vector<double> values = MakeStream(41, 80);
  Feed(engine, "live", values, 60, 70);
  ASSERT_TRUE(engine.Flush().ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (engine.HealthStateOf("victim") != SensorHealthState::kQuarantined &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(engine.HealthStateOf("victim"), SensorHealthState::kQuarantined);
  bool stale_transition = false;
  for (const HealthTransition& transition : engine.HealthTransitions()) {
    stale_transition |= transition.sensor_id == "victim" &&
                        transition.reason == HealthSignal::kStale;
  }
  EXPECT_TRUE(stale_transition);
  ASSERT_TRUE(engine.Stop().ok());
}

TEST(EngineCheckpoint, RestoreRejectsMismatchedMonitorOptions) {
  StreamEngine engine(SyncOptions());
  ASSERT_TRUE(engine.AddSensor("s", ProductionLevel::kPhase).ok());
  ASSERT_TRUE(engine.Start().ok());
  const std::vector<double> values = MakeStream(41, 100);
  Feed(engine, "s", values, 0, 100);
  const std::string bytes = CheckpointBytes(engine);

  StreamEngineOptions different = SyncOptions();
  different.monitor.warmup = 99;  // different scoring configuration
  std::istringstream is(bytes);
  auto restored = StreamEngine::Restore(is, different);
  EXPECT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument);

  StreamEngineOptions tolerance = SyncOptions();
  tolerance.out_of_order_tolerance = 5.0;
  std::istringstream is2(bytes);
  EXPECT_FALSE(StreamEngine::Restore(is2, tolerance).ok());
}

TEST(EngineCheckpoint, RestoreToleratesDifferentThreadingOptions) {
  // Threading knobs are not part of the scoring fingerprint: a checkpoint
  // from a 1-shard sync engine restores into a 4-shard threaded one.
  StreamEngine engine(SyncOptions());
  ASSERT_TRUE(engine.AddSensor("s", ProductionLevel::kPhase).ok());
  ASSERT_TRUE(engine.Start().ok());
  const std::vector<double> values = MakeStream(51, 300);
  Feed(engine, "s", values, 0, 300);
  const std::string bytes = CheckpointBytes(engine);

  StreamEngineOptions threaded = SyncOptions();
  threaded.synchronous = false;
  threaded.num_shards = 4;
  threaded.queue_capacity = 64;
  std::istringstream is(bytes);
  auto restored = StreamEngine::Restore(is, threaded);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  StreamEngine& run = **restored;
  for (size_t t = 300; t < 400; ++t) {
    ASSERT_TRUE(run.Ingest({"s", ProductionLevel::kPhase,
                            static_cast<double>(t), values[t % 300]})
                    .ok());
  }
  ASSERT_TRUE(run.Flush().ok());
  ASSERT_TRUE(run.Stop().ok());
  EXPECT_EQ(run.stats().ingested, 400u);
  auto probe = run.Probe("s");
  ASSERT_TRUE(probe.ok());
  EXPECT_EQ(probe->samples_seen, 400u);
}

TEST(EngineCheckpoint, QueueKindStaysOutOfTheFingerprint) {
  // The shard queue implementation (SPSC vs MPSC) is a threading detail,
  // like shard count: a checkpoint taken under the default MPSC queue must
  // restore into an engine running the lock-free SPSC ring, and resume
  // scoring identically.
  StreamEngine engine(SyncOptions());
  ASSERT_TRUE(engine.AddSensor("s", ProductionLevel::kPhase).ok());
  ASSERT_TRUE(engine.Start().ok());
  const std::vector<double> values = MakeStream(77, 300);
  Feed(engine, "s", values, 0, 300);
  const std::string bytes = CheckpointBytes(engine);

  StreamEngineOptions spsc = SyncOptions();
  spsc.synchronous = false;
  spsc.num_shards = 2;
  spsc.producer_hint = ProducerHint::kSinglePerShard;
  std::istringstream is(bytes);
  auto restored = StreamEngine::Restore(is, spsc);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  StreamEngine& run = **restored;
  for (size_t t = 300; t < 400; ++t) {
    ASSERT_TRUE(run.Ingest({"s", ProductionLevel::kPhase,
                            static_cast<double>(t), values[t % 300]})
                    .ok());
  }
  ASSERT_TRUE(run.Flush().ok());
  ASSERT_TRUE(run.Stop().ok());
  EXPECT_EQ(run.stats().ingested, 400u);
  auto probe = run.Probe("s");
  ASSERT_TRUE(probe.ok());
  EXPECT_EQ(probe->samples_seen, 400u);
}

TEST(EngineCheckpoint, CheckpointRequiresQuiescence) {
  // Never started: nothing meaningful to save.
  StreamEngine unstarted(SyncOptions());
  ASSERT_TRUE(unstarted.AddSensor("s").ok());
  std::ostringstream os;
  EXPECT_EQ(unstarted.Checkpoint(os).code(), StatusCode::kFailedPrecondition);

  // Threaded and running: refused (counters are in flight).
  StreamEngineOptions threaded = SyncOptions();
  threaded.synchronous = false;
  threaded.num_shards = 2;
  StreamEngine engine(threaded);
  ASSERT_TRUE(engine.AddSensor("s").ok());
  ASSERT_TRUE(engine.Start().ok());
  EXPECT_EQ(engine.Checkpoint(os).code(), StatusCode::kFailedPrecondition);
  // Stopped: allowed.
  ASSERT_TRUE(engine.Stop().ok());
  EXPECT_TRUE(engine.Checkpoint(os).ok());
}

TEST(EngineCheckpoint, ReadRejectsCorruptImages) {
  StreamEngine engine(SyncOptions());
  ASSERT_TRUE(engine.AddSensor("s", ProductionLevel::kPhase).ok());
  ASSERT_TRUE(engine.Start().ok());
  const std::vector<double> values = MakeStream(61, 100);
  Feed(engine, "s", values, 0, 100);
  const std::string bytes = CheckpointBytes(engine);

  {
    std::istringstream empty("");
    EXPECT_FALSE(ReadEngineCheckpoint(empty).ok());
  }
  {
    std::string bad_magic = bytes;
    bad_magic[0] = 'X';
    std::istringstream is(bad_magic);
    auto result = ReadEngineCheckpoint(is);
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
  {
    std::string truncated = bytes.substr(0, bytes.size() / 2);
    std::istringstream is(truncated);
    EXPECT_FALSE(ReadEngineCheckpoint(is).ok());
  }
  // The pristine image still parses (the corruption tests aren't flaky).
  std::istringstream is(bytes);
  EXPECT_TRUE(ReadEngineCheckpoint(is).ok());
}

// ---- CheckpointToFile / background checkpointing ---------------------------

/// Fresh per-test checkpoint path with no leftovers from earlier runs.
std::string CheckpointPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  return path;
}

TEST(EngineCheckpoint, CheckpointToFileIsAtomicAndRestorable) {
  const std::string path = CheckpointPath("hod_ckpt_sync.bin");
  StreamEngineOptions options = SyncOptions();
  options.checkpoint_path = path;
  const std::vector<double> values = MakeStream(71, 600);

  StreamEngine engine(options);
  ASSERT_TRUE(engine.AddSensor("s", ProductionLevel::kPhase).ok());
  ASSERT_TRUE(engine.Start().ok());
  Feed(engine, "s", values, 0, 300);
  Status status = engine.CheckpointToFile(path);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(engine.stats().checkpoints_written, 1u);
  EXPECT_EQ(engine.stats().checkpoint_failures, 0u);
  // Atomic publication: the temp image was renamed away, not left behind.
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());

  std::ifstream is(path, std::ios::binary);
  ASSERT_TRUE(is.good());
  auto restored = StreamEngine::Restore(is, options);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ((*restored)->stats().ingested, 300u);

  // Both lives feed the identical remainder and perform the same number
  // of file checkpoints (the image is filled BEFORE the written-counter
  // increments, so the restored life starts one write behind); after the
  // restored engine's own write the two must end byte-equal.
  Feed(engine, "s", values, 300, 600);
  Feed(**restored, "s", values, 300, 600);
  status = (*restored)->CheckpointToFile(CheckpointPath("hod_ckpt_sync2.bin"));
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_TRUE(CheckpointBytes(engine) == CheckpointBytes(**restored));
}

TEST(EngineCheckpoint, CheckpointToFileRequiresArmedGateOnThreadedEngine) {
  StreamEngineOptions options = SyncOptions();
  options.synchronous = false;
  options.num_shards = 2;
  // No checkpoint_path: the ingest gate is not armed, so a live threaded
  // checkpoint would race producers — refused, not raced.
  StreamEngine engine(options);
  ASSERT_TRUE(engine.AddSensor("s").ok());
  ASSERT_TRUE(engine.Start().ok());
  EXPECT_EQ(engine
                .CheckpointToFile(CheckpointPath("hod_ckpt_unarmed.bin"))
                .code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(engine.Stop().ok());
}

TEST(EngineCheckpoint, CheckpointToFileWorksOnALiveThreadedEngine) {
  const std::string path = CheckpointPath("hod_ckpt_live.bin");
  StreamEngineOptions options = SyncOptions();
  options.synchronous = false;
  options.num_shards = 2;
  options.checkpoint_path = path;
  const std::vector<double> values = MakeStream(81, 600);

  StreamEngine engine(options);
  ASSERT_TRUE(engine.AddSensor("s1", ProductionLevel::kPhase).ok());
  ASSERT_TRUE(engine.AddSensor("s2", ProductionLevel::kPhase).ok());
  ASSERT_TRUE(engine.Start().ok());
  Feed(engine, "s1", values, 0, 200);
  Feed(engine, "s2", values, 0, 200);

  // Mid-stream, workers running: the call quiesces, serializes, resumes.
  Status status = engine.CheckpointToFile(path);
  ASSERT_TRUE(status.ok()) << status.ToString();
  // The engine keeps ingesting afterwards.
  Feed(engine, "s1", values, 200, 400);
  ASSERT_TRUE(engine.Flush().ok());
  ASSERT_TRUE(engine.Stop().ok());

  std::ifstream is(path, std::ios::binary);
  auto checkpoint = ReadEngineCheckpoint(is);
  ASSERT_TRUE(checkpoint.ok()) << checkpoint.status().ToString();
  ASSERT_EQ(checkpoint->sensors.size(), 2u);
  // Everything submitted before the call was drained into the image.
  EXPECT_EQ(checkpoint->sensors[0].monitor.samples_seen +
                checkpoint->sensors[1].monitor.samples_seen,
            400u);
  EXPECT_EQ(checkpoint->stats.ingested, 400u);
}

TEST(EngineCheckpoint, BackgroundTimerCheckpointsAndSurvivesKill) {
  const std::string path = CheckpointPath("hod_ckpt_timer.bin");
  StreamEngineOptions options = SyncOptions();
  options.synchronous = false;
  options.num_shards = 2;
  options.checkpoint_path = path;
  options.checkpoint_interval = std::chrono::milliseconds(5);
  const std::vector<double> values = MakeStream(91, 400);

  {
    StreamEngine engine(options);
    ASSERT_TRUE(engine.AddSensor("s", ProductionLevel::kPhase).ok());
    ASSERT_TRUE(engine.Start().ok());
    Feed(engine, "s", values, 0, 400);
    ASSERT_TRUE(engine.Flush().ok());
    // Wait for TWO timer checkpoints after the flush: the second one must
    // have STARTED after the flush, so it provably contains all 400
    // samples (the first might have begun mid-feed).
    const uint64_t flushed_at = engine.stats().checkpoints_written;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (engine.stats().checkpoints_written < flushed_at + 2 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ASSERT_GE(engine.stats().checkpoints_written, flushed_at + 2)
        << "background timer produced no checkpoints";
    EXPECT_EQ(engine.stats().checkpoint_failures, 0u);
    // The "kill": drop the engine without asking for a final checkpoint.
  }

  std::ifstream is(path, std::ios::binary);
  ASSERT_TRUE(is.good());
  auto restored = StreamEngine::Restore(is, options);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  StreamEngine& engine = **restored;
  EXPECT_TRUE(engine.running());
  EXPECT_EQ(engine.stats().ingested, 400u);
  // The restored engine resumes ingesting (and its own timer is live).
  auto ack = engine.Ingest({"s", ProductionLevel::kPhase, 400.0, 50.0});
  EXPECT_TRUE(ack.ok()) << ack.status().ToString();
  ASSERT_TRUE(engine.Stop().ok());
}

}  // namespace
}  // namespace hod::stream
