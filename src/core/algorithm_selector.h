#ifndef HOD_CORE_ALGORITHM_SELECTOR_H_
#define HOD_CORE_ALGORITHM_SELECTOR_H_

#include <memory>
#include <string>

#include "detect/detector.h"
#include "hierarchy/level.h"

namespace hod::core {

/// The paper's ChooseAlgorithm(level): "the algorithm should be selected
/// with respect to the resolution best fitting to a production layer" —
/// high-resolution levels get temporal (sequence/prediction) detectors,
/// aggregated levels get point detectors.
enum class SelectorPolicy {
  /// Resolution-matched defaults (the paper's §3 guidance):
  ///   phase (high-res series)  -> autoregressive prediction model (PM)
  ///   job (aggregated vectors) -> Gaussian-mixture EM (DA, point-based)
  ///   environment (series)     -> autoregressive prediction model (PM)
  ///   line (job series)        -> robust point scores over job series
  ///   production (few vectors) -> robust per-feature z comparison
  kResolutionMatched,
  /// Deliberately mismatched (ablation E6): point detectors on the
  /// high-resolution levels, temporal detectors on the aggregated ones.
  kMismatched,
};

/// Builds the level-appropriate detectors. Stateless; one instance per
/// HierarchicalDetector.
class AlgorithmSelector {
 public:
  explicit AlgorithmSelector(SelectorPolicy policy = SelectorPolicy::kResolutionMatched)
      : policy_(policy) {}

  SelectorPolicy policy() const { return policy_; }

  /// Detector for phase-level sensor series.
  std::unique_ptr<detect::SeriesDetector> MakePhaseDetector() const;

  /// Detector for job-level setup+CAQ vectors.
  std::unique_ptr<detect::VectorDetector> MakeJobDetector() const;

  /// Detector for environment series.
  std::unique_ptr<detect::SeriesDetector> MakeEnvironmentDetector() const;

  /// Detector for production-line job series.
  std::unique_ptr<detect::SeriesDetector> MakeLineDetector() const;

  /// Human-readable name of the algorithm used at a level.
  std::string Describe(hierarchy::ProductionLevel level) const;

 private:
  SelectorPolicy policy_;
};

}  // namespace hod::core

#endif  // HOD_CORE_ALGORITHM_SELECTOR_H_
