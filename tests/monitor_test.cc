#include "core/monitor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace hod::core {
namespace {

/// Feeds `n` stationary AR(1)-ish samples.
void FeedNormal(OnlineMonitor& monitor, size_t n, Rng& rng,
                double level = 50.0) {
  double noise = 0.0;
  for (size_t i = 0; i < n; ++i) {
    noise = 0.6 * noise + rng.Gaussian(0.0, 0.4);
    ASSERT_TRUE(monitor.Push(level + noise).ok());
  }
}

TEST(OnlineMonitor, WarmupProducesNoScores) {
  OnlineMonitor monitor(OnlineMonitorOptions{.warmup = 32});
  Rng rng(1);
  for (size_t i = 0; i < 31; ++i) {
    auto update = monitor.Push(rng.Gaussian(10.0, 1.0));
    ASSERT_TRUE(update.ok());
    EXPECT_FALSE(update->model_ready);
    EXPECT_DOUBLE_EQ(update->score, 0.0);
  }
  auto update = monitor.Push(10.0);
  ASSERT_TRUE(update.ok());
  EXPECT_TRUE(update->model_ready);  // model fits on the 32nd sample
}

TEST(OnlineMonitor, NormalStreamStaysQuiet) {
  OnlineMonitor monitor;
  Rng rng(2);
  FeedNormal(monitor, 400, rng);
  EXPECT_FALSE(monitor.alarm());
  EXPECT_EQ(monitor.alarms_raised(), 0u);
}

TEST(OnlineMonitor, SpikeRaisesAlarmWithHysteresis) {
  OnlineMonitorOptions options;
  options.raise_after = 2;
  options.clear_after = 3;
  OnlineMonitor monitor(options);
  Rng rng(3);
  FeedNormal(monitor, 200, rng);
  // Two consecutive large deviations raise the alarm; one does not.
  auto first = monitor.Push(70.0).value();
  EXPECT_GT(first.score, 0.5);
  EXPECT_FALSE(first.alarm) << "one sample must not raise the alarm";
  auto second = monitor.Push(70.0).value();
  EXPECT_TRUE(second.alarm);
  EXPECT_TRUE(second.alarm_raised);
  EXPECT_EQ(monitor.alarms_raised(), 1u);
  // Alarm persists until clear_after quiet samples...
  auto quiet1 = monitor.Push(50.0).value();
  EXPECT_TRUE(quiet1.alarm);
  auto quiet2 = monitor.Push(50.0).value();
  EXPECT_TRUE(quiet2.alarm);
  auto quiet3 = monitor.Push(50.0).value();
  EXPECT_FALSE(quiet3.alarm);
  EXPECT_TRUE(quiet3.alarm_cleared);
}

TEST(OnlineMonitor, RejectsNonFiniteSamples) {
  OnlineMonitor monitor;
  EXPECT_FALSE(monitor.Push(std::nan("")).ok());
  EXPECT_FALSE(monitor.Push(std::numeric_limits<double>::infinity()).ok());
}

TEST(OnlineMonitor, SamplesSeenCounts) {
  OnlineMonitor monitor;
  Rng rng(4);
  FeedNormal(monitor, 100, rng);
  EXPECT_EQ(monitor.samples_seen(), 100u);
}

TEST(OnlineMonitor, SlowDriftAbsorbedByAdaptation) {
  // A very slow mean drift (far below the alarm scale per-sample) should
  // not raise alarms when adaptation is on.
  OnlineMonitorOptions options;
  options.scale_forgetting = 0.99;
  OnlineMonitor monitor(options);
  Rng rng(5);
  FeedNormal(monitor, 100, rng);
  double noise = 0.0;
  for (size_t i = 0; i < 500; ++i) {
    noise = 0.6 * noise + rng.Gaussian(0.0, 0.4);
    const double drift = 0.002 * static_cast<double>(i);
    ASSERT_TRUE(monitor.Push(50.0 + drift + noise).ok());
  }
  EXPECT_EQ(monitor.alarms_raised(), 0u);
}

TEST(OnlineMonitor, RestoreFloorsDegenerateResidualSigma) {
  // Regression (kill-and-restore): a checkpoint carrying a residual sigma
  // like 1e-300 passes the > 0 validation, but Push and FitModel never
  // produce a sigma below 1e-9 — resuming from the raw value inflated
  // every z-score by ~10^291 and alarmed on the first nominal sample.
  // RestoreState now applies the same floor.
  OnlineMonitor monitor;
  Rng rng(21);
  FeedNormal(monitor, 200, rng);
  OnlineMonitorState state = monitor.SaveState();
  state.residual_sigma = 1e-300;

  OnlineMonitor restored;
  ASSERT_TRUE(restored.RestoreState(state).ok());
  EXPECT_EQ(restored.SaveState().residual_sigma, 1e-9);

  // The restored monitor behaves exactly like one whose checkpoint
  // already sat at the floor.
  state.residual_sigma = 1e-9;
  OnlineMonitor at_floor;
  ASSERT_TRUE(at_floor.RestoreState(state).ok());
  for (size_t i = 0; i < 50; ++i) {
    const double v = 50.0 + rng.Gaussian(0.0, 0.4);
    auto got = restored.Push(v);
    auto want = at_floor.Push(v);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(want.ok());
    EXPECT_EQ(got->score, want->score);
    EXPECT_EQ(got->alarm, want->alarm);
  }
}

}  // namespace
}  // namespace hod::core
