#ifndef HOD_DETECT_REGISTRY_H_
#define HOD_DETECT_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "detect/detector.h"
#include "util/statusor.h"

namespace hod::detect {

/// One row of the paper's Table 1 ("Categorization of Literature on
/// Outliers"): technique, family, citation, and the data types it applies
/// to. `whole_series` marks techniques whose anomaly unit is an entire
/// series (phased k-means) rather than a position inside one.
struct TechniqueInfo {
  int row = 0;
  std::string name;
  std::string citation;
  Family family;
  DataTypeMask mask;
  bool supervised = false;
  bool whole_series = false;
};

/// The 21 Table-1 rows in paper order.
const std::vector<TechniqueInfo>& Table1();

/// Looks up a row by number (1-based, as printed in the paper).
StatusOr<TechniqueInfo> FindTechnique(int row);

/// Factories: build the technique adapted to the requested data shape.
/// Each errors with InvalidArgument when Table 1 does not claim that shape
/// for the row (the adapter wiring below mirrors the printed checkmarks).
StatusOr<std::unique_ptr<SeriesDetector>> MakeSeriesDetector(int row);
StatusOr<std::unique_ptr<SequenceDetector>> MakeSequenceDetector(int row);
StatusOr<std::unique_ptr<VectorDetector>> MakeVectorDetector(int row);

}  // namespace hod::detect

#endif  // HOD_DETECT_REGISTRY_H_
