// Sensor diagnostics: telling process anomalies from broken sensors.
//
// The paper's central redundancy idea: "an outlier is more valuable if it
// is also found in the supporting sensor at the same time ... support
// values reduce the probability of finding a measurement error". This
// example injects one real process excursion and one single-sensor glitch
// into the same machine, runs Algorithm 1 on both redundant bed
// thermocouples, and shows how support + the downward check diagnose each
// event correctly.

#include <cstdio>
#include <vector>

#include "core/hierarchical_detector.h"
#include "sim/anomaly.h"
#include "sim/plant.h"

int main() {
  using namespace hod;

  // Healthy plant; we inject the two events by hand so the contrast is
  // exact.
  sim::PlantOptions plant_options;
  plant_options.num_lines = 1;
  plant_options.machines_per_line = 1;
  plant_options.jobs_per_machine = 8;
  plant_options.seed = 77;
  sim::ScenarioOptions scenario;
  scenario.process_anomaly_rate = 0.0;
  scenario.glitch_rate = 0.0;
  scenario.rogue_machines = 0;
  scenario.bad_batch_lines = 0;
  auto plant_or = sim::BuildPlant(plant_options, scenario);
  if (!plant_or.ok()) {
    std::fprintf(stderr, "%s\n", plant_or.status().ToString().c_str());
    return 1;
  }
  sim::SimulatedPlant plant = std::move(plant_or).value();
  hierarchy::Machine& machine = plant.production.lines[0].machines[0];

  // Event A (job 2): a real bed-temperature excursion — both redundant
  // thermocouples see it because the physical bed overheated.
  {
    hierarchy::Job& job = machine.jobs[2];
    for (const char* suffix : {"_a", "_b"}) {
      auto& series =
          job.phases[3].sensor_series.at(machine.id + ".bed_temp" + suffix);
      std::vector<uint8_t> labels;
      sim::InjectionSpec spec;
      spec.type = sim::OutlierType::kTemporaryChange;
      spec.position = 80;
      spec.magnitude = 6.0 * 0.8;  // 6 process sigmas
      (void)sim::Inject(spec, series.mutable_values(), labels);
    }
  }
  // Event B (job 5): thermocouple _a glitches — sensor fault, the bed was
  // fine and _b shows nothing.
  {
    hierarchy::Job& job = machine.jobs[5];
    auto& series =
        job.phases[3].sensor_series.at(machine.id + ".bed_temp_a");
    std::vector<uint8_t> labels;
    sim::InjectionSpec spec;
    spec.type = sim::OutlierType::kAdditive;
    spec.position = 100;
    spec.magnitude = 6.0 * 0.8;
    (void)sim::Inject(spec, series.mutable_values(), labels);
  }

  core::HierarchicalDetector detector(&plant.production);

  std::printf("Two events on %s, phase 'printing', sensor bed_temp_a:\n",
              machine.id.c_str());
  std::printf("  A: job 2 — real bed overheating (both thermocouples)\n");
  std::printf("  B: job 5 — thermocouple _a spike (sensor fault)\n\n");

  for (size_t j : {size_t{2}, size_t{5}}) {
    core::PhaseQuery query{machine.id, machine.jobs[j].id, "printing",
                           machine.id + ".bed_temp_a"};
    auto report_or = detector.FindPhaseOutliers(query);
    if (!report_or.ok()) {
      std::fprintf(stderr, "%s\n", report_or.status().ToString().c_str());
      return 1;
    }
    std::printf("Job %zu findings (%zu):\n", j,
                report_or->findings.size());
    for (const core::OutlierFinding& finding : report_or->findings) {
      std::printf(
          "  t=%-8.0f outlierness=%.2f support=%.2f (%zu corresponding "
          "sensor%s)\n",
          finding.origin.time, finding.outlierness, finding.support,
          finding.corresponding_sensors,
          finding.corresponding_sensors == 1 ? "" : "s");
      std::printf("      diagnosis: %s\n",
                  finding.support > 0.5
                      ? "PROCESS ANOMALY — redundant sensor confirms; "
                        "investigate the machine"
                      : "SUSPECTED SENSOR FAULT — no redundant "
                        "confirmation; check the thermocouple");
    }
    if (report_or->findings.empty()) {
      std::printf("  (none)\n");
    }
    std::printf("\n");
  }

  std::printf(
      "The support value is what distinguishes the two events: identical\n"
      "outlierness on sensor _a, opposite stories on sensor _b.\n");
  return 0;
}
