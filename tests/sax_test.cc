#include "timeseries/sax.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hod::ts {
namespace {

TEST(Paa, ExactDivision) {
  auto frames = Paa({1, 1, 2, 2, 3, 3}, 3);
  ASSERT_TRUE(frames.ok());
  EXPECT_EQ(frames->size(), 3u);
  EXPECT_DOUBLE_EQ((*frames)[0], 1.0);
  EXPECT_DOUBLE_EQ((*frames)[2], 3.0);
}

TEST(Paa, UnevenDivision) {
  auto frames = Paa({1, 2, 3, 4, 5}, 2);
  ASSERT_TRUE(frames.ok());
  ASSERT_EQ(frames->size(), 2u);
  // Samples 0,1,2 -> frame 0; samples 3,4 -> frame 1.
  EXPECT_DOUBLE_EQ((*frames)[0], 2.0);
  EXPECT_DOUBLE_EQ((*frames)[1], 4.5);
}

TEST(Paa, RejectsBadFrameCounts) {
  EXPECT_FALSE(Paa({1, 2}, 0).ok());
  EXPECT_FALSE(Paa({1, 2}, 3).ok());
}

TEST(SaxBreakpoints, SizesAndMonotonicity) {
  for (int alphabet = 2; alphabet <= 10; ++alphabet) {
    auto breaks = SaxBreakpoints(alphabet);
    ASSERT_TRUE(breaks.ok());
    EXPECT_EQ(breaks->size(), static_cast<size_t>(alphabet - 1));
    for (size_t i = 1; i < breaks->size(); ++i) {
      EXPECT_LT((*breaks)[i - 1], (*breaks)[i]);
    }
  }
  EXPECT_FALSE(SaxBreakpoints(1).ok());
  EXPECT_FALSE(SaxBreakpoints(11).ok());
}

TEST(SaxBreakpoints, SymmetricAroundZero) {
  auto breaks = SaxBreakpoints(4).value();
  EXPECT_DOUBLE_EQ(breaks[1], 0.0);
  EXPECT_DOUBLE_EQ(breaks[0], -breaks[2]);
}

TEST(ToSax, OutputWithinAlphabet) {
  std::vector<double> values;
  for (int i = 0; i < 100; ++i) values.push_back(std::sin(0.3 * i));
  SaxOptions options{.word_length = 10, .alphabet_size = 5};
  auto sax = ToSax(values, options);
  ASSERT_TRUE(sax.ok());
  EXPECT_EQ(sax->size(), 10u);
  EXPECT_TRUE(sax->Validate().ok());
}

TEST(ToSax, WordLengthZeroKeepsFullResolution) {
  const std::vector<double> values = {-3.0, -1.0, 0.0, 1.0, 3.0};
  SaxOptions options{.word_length = 0, .alphabet_size = 4};
  auto sax = ToSax(values, options);
  ASSERT_TRUE(sax.ok());
  EXPECT_EQ(sax->size(), values.size());
  // Monotone input must map to non-decreasing symbols.
  for (size_t i = 1; i < sax->size(); ++i) {
    EXPECT_LE((*sax)[i - 1], (*sax)[i]);
  }
}

TEST(ToSax, ConstantSeriesMapsToMiddleSymbol) {
  SaxOptions options{.word_length = 0, .alphabet_size = 4};
  auto sax = ToSax({5.0, 5.0, 5.0, 5.0}, options);
  ASSERT_TRUE(sax.ok());
  // z-normalized 0 lands in bucket 2 of 4 (breakpoints -0.67, 0, 0.67):
  // upper_bound(0.0) skips -0.67 and 0.0 -> symbol 2.
  for (size_t i = 0; i < sax->size(); ++i) EXPECT_EQ((*sax)[i], 2);
}

TEST(ToSax, EmptyInputRejected) {
  EXPECT_FALSE(ToSax({}, SaxOptions{}).ok());
}

TEST(ToSax, EquiprobableSymbolsOnGaussianData) {
  // Standard-normal-ish data should populate all symbols roughly equally.
  std::vector<double> values;
  for (int i = 0; i < 4096; ++i) {
    // Sum of 12 uniforms - 6 approximates N(0,1).
    double sum = 0.0;
    uint64_t state = static_cast<uint64_t>(i) * 2654435761u + 12345;
    for (int k = 0; k < 12; ++k) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      sum += static_cast<double>(state >> 11) * 0x1.0p-53;
    }
    values.push_back(sum - 6.0);
  }
  SaxOptions options{.word_length = 0, .alphabet_size = 4};
  auto sax = ToSax(values, options).value();
  std::vector<size_t> counts(4, 0);
  for (size_t i = 0; i < sax.size(); ++i) ++counts[sax[i]];
  for (size_t c = 0; c < 4; ++c) {
    EXPECT_GT(counts[c], values.size() / 8) << "symbol " << c;
    EXPECT_LT(counts[c], values.size() * 3 / 8) << "symbol " << c;
  }
}

TEST(SaxToString, RendersLetters) {
  DiscreteSequence seq("x", 4, {0, 1, 2, 3});
  EXPECT_EQ(SaxToString(seq), "abcd");
}

}  // namespace
}  // namespace hod::ts
