#include "hierarchy/serialization.h"

#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

namespace hod::hierarchy {

namespace {

constexpr char kMagic[] = "HODPROD";
constexpr int kVersion = 1;

std::string D(double value) {
  // %.17g round-trips IEEE-754 doubles exactly.
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

void WriteFeatureVector(const char* tag, const ts::FeatureVector& vector,
                        std::ostream& os) {
  os << tag << " " << vector.size();
  for (size_t i = 0; i < vector.size(); ++i) {
    os << " " << vector.names()[i] << " " << D(vector.values()[i]);
  }
  os << "\n";
}

void WriteSeries(const char* tag, const std::string& id,
                 const ts::TimeSeries& series, std::ostream& os) {
  os << tag << " " << id << " " << D(series.start_time()) << " "
     << D(series.interval()) << " " << series.size();
  for (double v : series.values()) os << " " << D(v);
  os << "\n";
}

/// Tokenizing reader with line-number-annotated errors.
class LineReader {
 public:
  explicit LineReader(std::istream& is) : is_(is) {}

  /// Reads the next non-empty line into the internal tokenizer; returns
  /// false at EOF.
  bool NextLine() {
    std::string line;
    while (std::getline(is_, line)) {
      ++line_number_;
      if (!line.empty()) {
        tokens_ = std::istringstream(line);
        return true;
      }
    }
    return false;
  }

  /// Extracts the next whitespace token from the current line.
  StatusOr<std::string> Token() {
    std::string token;
    if (!(tokens_ >> token)) return Error("missing token");
    return token;
  }

  StatusOr<double> Double() {
    double value = 0.0;
    if (!(tokens_ >> value)) return Error("missing numeric field");
    return value;
  }

  StatusOr<size_t> Count() {
    long long value = 0;
    if (!(tokens_ >> value) || value < 0) return Error("missing count");
    return static_cast<size_t>(value);
  }

  /// Remainder of the current line (trimmed of one leading space).
  std::string Rest() {
    std::string rest;
    std::getline(tokens_, rest);
    if (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);
    return rest;
  }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument("line " + std::to_string(line_number_) +
                                   ": " + message);
  }

 private:
  std::istream& is_;
  std::istringstream tokens_;
  size_t line_number_ = 0;
};

StatusOr<ts::FeatureVector> ReadFeatureVector(LineReader& reader) {
  HOD_ASSIGN_OR_RETURN(size_t count, reader.Count());
  std::vector<std::string> names;
  std::vector<double> values;
  for (size_t i = 0; i < count; ++i) {
    HOD_ASSIGN_OR_RETURN(std::string name, reader.Token());
    HOD_ASSIGN_OR_RETURN(double value, reader.Double());
    names.push_back(std::move(name));
    values.push_back(value);
  }
  return ts::FeatureVector(std::move(names), std::move(values));
}

}  // namespace

Status WriteProduction(const Production& production, std::ostream& os) {
  HOD_RETURN_IF_ERROR(ValidateProduction(production));
  os << kMagic << " " << kVersion << "\n";
  for (const std::string& id : production.sensors.ids()) {
    const SensorInfo info = production.sensors.Get(id).value();
    os << "SENSOR " << info.id << " "
       << (info.unit.empty() ? "-" : info.unit) << " "
       << (info.machine_id.empty() ? "-" : info.machine_id) << " "
       << (info.redundancy_group.empty() ? "-" : info.redundancy_group)
       << " " << info.name << "\n";
  }
  for (const ProductionLine& line : production.lines) {
    os << "LINE " << line.id << "\n";
    for (const Machine& machine : line.machines) {
      os << "MACHINE " << machine.id << "\n";
      WriteFeatureVector("CONFIG", machine.configuration, os);
      for (const Job& job : machine.jobs) {
        os << "JOB " << job.id << " " << D(job.start_time) << " "
           << D(job.end_time) << "\n";
        WriteFeatureVector("SETUP", job.setup, os);
        WriteFeatureVector("CAQ", job.caq, os);
        for (const Phase& phase : job.phases) {
          os << "PHASE " << phase.name << " " << D(phase.start_time) << " "
             << D(phase.end_time) << "\n";
          os << "EVENTS " << phase.events.alphabet_size() << " "
             << phase.events.size();
          for (size_t i = 0; i < phase.events.size(); ++i) {
            os << " " << phase.events[i];
          }
          os << "\n";
          for (const auto& [sensor_id, series] : phase.sensor_series) {
            WriteSeries("SERIES", sensor_id, series, os);
          }
        }
      }
    }
    for (const EnvironmentChannel& channel : line.environment) {
      WriteSeries("ENV", channel.sensor_id, channel.series, os);
    }
  }
  os << "END\n";
  return os.good() ? Status::Ok()
                   : Status::Internal("stream write failure");
}

StatusOr<Production> ReadProduction(std::istream& is) {
  LineReader reader(is);
  if (!reader.NextLine()) {
    return Status::InvalidArgument("empty production stream");
  }
  {
    HOD_ASSIGN_OR_RETURN(std::string magic, reader.Token());
    if (magic != kMagic) return reader.Error("bad magic, expected HODPROD");
    HOD_ASSIGN_OR_RETURN(double version, reader.Double());
    if (static_cast<int>(version) != kVersion) {
      return reader.Error("unsupported version");
    }
  }

  Production production;
  ProductionLine* line = nullptr;
  Machine* machine = nullptr;
  Job* job = nullptr;
  Phase* phase = nullptr;
  bool ended = false;

  while (!ended && reader.NextLine()) {
    HOD_ASSIGN_OR_RETURN(std::string tag, reader.Token());
    if (tag == "SENSOR") {
      SensorInfo info;
      HOD_ASSIGN_OR_RETURN(info.id, reader.Token());
      HOD_ASSIGN_OR_RETURN(info.unit, reader.Token());
      HOD_ASSIGN_OR_RETURN(info.machine_id, reader.Token());
      HOD_ASSIGN_OR_RETURN(info.redundancy_group, reader.Token());
      info.name = reader.Rest();
      if (info.unit == "-") info.unit.clear();
      if (info.machine_id == "-") info.machine_id.clear();
      if (info.redundancy_group == "-") info.redundancy_group.clear();
      HOD_RETURN_IF_ERROR(production.sensors.Register(std::move(info)));
    } else if (tag == "LINE") {
      ProductionLine new_line;
      HOD_ASSIGN_OR_RETURN(new_line.id, reader.Token());
      production.lines.push_back(std::move(new_line));
      line = &production.lines.back();
      machine = nullptr;
      job = nullptr;
      phase = nullptr;
    } else if (tag == "MACHINE") {
      if (line == nullptr) return reader.Error("MACHINE outside LINE");
      Machine new_machine;
      HOD_ASSIGN_OR_RETURN(new_machine.id, reader.Token());
      line->machines.push_back(std::move(new_machine));
      machine = &line->machines.back();
      job = nullptr;
      phase = nullptr;
    } else if (tag == "CONFIG") {
      if (machine == nullptr) return reader.Error("CONFIG outside MACHINE");
      HOD_ASSIGN_OR_RETURN(machine->configuration,
                           ReadFeatureVector(reader));
    } else if (tag == "JOB") {
      if (machine == nullptr) return reader.Error("JOB outside MACHINE");
      Job new_job;
      HOD_ASSIGN_OR_RETURN(new_job.id, reader.Token());
      HOD_ASSIGN_OR_RETURN(new_job.start_time, reader.Double());
      HOD_ASSIGN_OR_RETURN(new_job.end_time, reader.Double());
      new_job.machine_id = machine->id;
      machine->jobs.push_back(std::move(new_job));
      job = &machine->jobs.back();
      phase = nullptr;
    } else if (tag == "SETUP") {
      if (job == nullptr) return reader.Error("SETUP outside JOB");
      HOD_ASSIGN_OR_RETURN(job->setup, ReadFeatureVector(reader));
    } else if (tag == "CAQ") {
      if (job == nullptr) return reader.Error("CAQ outside JOB");
      HOD_ASSIGN_OR_RETURN(job->caq, ReadFeatureVector(reader));
    } else if (tag == "PHASE") {
      if (job == nullptr) return reader.Error("PHASE outside JOB");
      Phase new_phase;
      HOD_ASSIGN_OR_RETURN(new_phase.name, reader.Token());
      HOD_ASSIGN_OR_RETURN(new_phase.start_time, reader.Double());
      HOD_ASSIGN_OR_RETURN(new_phase.end_time, reader.Double());
      job->phases.push_back(std::move(new_phase));
      phase = &job->phases.back();
    } else if (tag == "EVENTS") {
      if (phase == nullptr) return reader.Error("EVENTS outside PHASE");
      HOD_ASSIGN_OR_RETURN(size_t alphabet, reader.Count());
      HOD_ASSIGN_OR_RETURN(size_t count, reader.Count());
      ts::DiscreteSequence events(phase->name + ".events",
                                  static_cast<int>(alphabet));
      for (size_t i = 0; i < count; ++i) {
        HOD_ASSIGN_OR_RETURN(double symbol, reader.Double());
        events.Append(static_cast<ts::Symbol>(symbol));
      }
      phase->events = std::move(events);
    } else if (tag == "SERIES" || tag == "ENV") {
      HOD_ASSIGN_OR_RETURN(std::string sensor_id, reader.Token());
      HOD_ASSIGN_OR_RETURN(double start, reader.Double());
      HOD_ASSIGN_OR_RETURN(double interval, reader.Double());
      HOD_ASSIGN_OR_RETURN(size_t count, reader.Count());
      ts::TimeSeries series(sensor_id, start, interval);
      for (size_t i = 0; i < count; ++i) {
        HOD_ASSIGN_OR_RETURN(double value, reader.Double());
        series.Append(value);
      }
      if (tag == "SERIES") {
        if (phase == nullptr) return reader.Error("SERIES outside PHASE");
        phase->sensor_series.emplace(sensor_id, std::move(series));
      } else {
        if (line == nullptr) return reader.Error("ENV outside LINE");
        EnvironmentChannel channel;
        channel.sensor_id = sensor_id;
        channel.series = std::move(series);
        line->environment.push_back(std::move(channel));
      }
    } else if (tag == "END") {
      ended = true;
    } else {
      return reader.Error("unknown tag '" + tag + "'");
    }
  }
  if (!ended) return Status::InvalidArgument("missing END record");
  HOD_RETURN_IF_ERROR(ValidateProduction(production));
  return production;
}

namespace bin {

namespace {

void PutBytes(std::ostream& os, const unsigned char* bytes, size_t n) {
  os.write(reinterpret_cast<const char*>(bytes), static_cast<std::streamsize>(n));
}

Status GetBytes(std::istream& is, unsigned char* bytes, size_t n) {
  is.read(reinterpret_cast<char*>(bytes), static_cast<std::streamsize>(n));
  if (static_cast<size_t>(is.gcount()) != n) {
    return Status::OutOfRange("truncated binary stream");
  }
  return Status::Ok();
}

}  // namespace

void WriteU8(std::ostream& os, uint8_t value) { PutBytes(os, &value, 1); }

void WriteU32(std::ostream& os, uint32_t value) {
  unsigned char bytes[4];
  for (int i = 0; i < 4; ++i) bytes[i] = (value >> (8 * i)) & 0xff;
  PutBytes(os, bytes, 4);
}

void WriteU64(std::ostream& os, uint64_t value) {
  unsigned char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = (value >> (8 * i)) & 0xff;
  PutBytes(os, bytes, 8);
}

void WriteF64(std::ostream& os, double value) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  WriteU64(os, bits);
}

void WriteString(std::ostream& os, const std::string& value) {
  WriteU32(os, static_cast<uint32_t>(value.size()));
  os.write(value.data(), static_cast<std::streamsize>(value.size()));
}

StatusOr<uint8_t> ReadU8(std::istream& is) {
  unsigned char byte;
  HOD_RETURN_IF_ERROR(GetBytes(is, &byte, 1));
  return static_cast<uint8_t>(byte);
}

StatusOr<uint32_t> ReadU32(std::istream& is) {
  unsigned char bytes[4];
  HOD_RETURN_IF_ERROR(GetBytes(is, bytes, 4));
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) value |= static_cast<uint32_t>(bytes[i]) << (8 * i);
  return value;
}

StatusOr<uint64_t> ReadU64(std::istream& is) {
  unsigned char bytes[8];
  HOD_RETURN_IF_ERROR(GetBytes(is, bytes, 8));
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) value |= static_cast<uint64_t>(bytes[i]) << (8 * i);
  return value;
}

StatusOr<double> ReadF64(std::istream& is) {
  HOD_ASSIGN_OR_RETURN(uint64_t bits, ReadU64(is));
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

StatusOr<std::string> ReadString(std::istream& is, size_t max_length) {
  HOD_ASSIGN_OR_RETURN(uint32_t length, ReadU32(is));
  if (length > max_length) {
    return Status::OutOfRange("binary string length exceeds limit");
  }
  std::string value(length, '\0');
  if (length > 0) {
    is.read(value.data(), static_cast<std::streamsize>(length));
    if (static_cast<size_t>(is.gcount()) != length) {
      return Status::OutOfRange("truncated binary stream");
    }
  }
  return value;
}

}  // namespace bin

}  // namespace hod::hierarchy
