// Plant persistence: save a production to disk, load it back, detect.
//
// The interchange path for real deployments: a historian exports the
// production in libhod's text format once; analyses run against the file
// from then on. The example verifies the round trip is lossless by
// comparing detection results on the original and restored plants.

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/hierarchical_detector.h"
#include "hierarchy/serialization.h"
#include "sim/plant.h"

int main() {
  using namespace hod;

  sim::PlantOptions options;
  options.num_lines = 1;
  options.machines_per_line = 2;
  options.jobs_per_machine = 6;
  options.seed = 404;
  sim::ScenarioOptions scenario;
  scenario.process_anomaly_rate = 0.3;
  auto plant_or = sim::BuildPlant(options, scenario);
  if (!plant_or.ok()) {
    std::fprintf(stderr, "%s\n", plant_or.status().ToString().c_str());
    return 1;
  }
  const sim::SimulatedPlant& plant = plant_or.value();

  // Save.
  const char* path = "/tmp/hod_plant.hodprod";
  {
    std::ofstream out(path);
    const Status written =
        hierarchy::WriteProduction(plant.production, out);
    if (!written.ok()) {
      std::fprintf(stderr, "save failed: %s\n", written.ToString().c_str());
      return 1;
    }
  }
  std::ifstream probe(path, std::ios::ate);
  std::printf("Saved production to %s (%lld bytes)\n", path,
              static_cast<long long>(probe.tellg()));

  // Load.
  std::ifstream in(path);
  auto restored_or = hierarchy::ReadProduction(in);
  if (!restored_or.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 restored_or.status().ToString().c_str());
    return 1;
  }
  hierarchy::Production restored = std::move(restored_or).value();
  std::printf("Restored: %zu lines, %zu jobs, %zu sensors\n",
              restored.lines.size(), hierarchy::CountJobs(restored),
              restored.sensors.size());

  // Detection on original vs restored must agree exactly.
  core::HierarchicalDetector original_detector(&plant.production);
  core::HierarchicalDetector restored_detector(&restored);
  const auto& machine = plant.production.lines[0].machines[0];
  size_t compared = 0;
  size_t identical = 0;
  for (const auto& job : machine.jobs) {
    core::PhaseQuery query{machine.id, job.id, "printing",
                           machine.id + ".bed_temp_a"};
    auto a = original_detector.ScorePhaseSeries(query);
    auto b = restored_detector.ScorePhaseSeries(query);
    if (!a.ok() || !b.ok()) continue;
    ++compared;
    if (a.value() == b.value()) ++identical;
  }
  std::printf(
      "Phase-score comparison across %zu jobs: %zu bit-identical\n",
      compared, identical);
  std::printf(compared == identical
                  ? "Round trip is lossless — analyses are reproducible "
                    "from the file alone.\n"
                  : "MISMATCH — serialization lost information!\n");
  std::remove(path);
  return compared == identical ? 0 : 1;
}
