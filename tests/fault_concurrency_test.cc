// Fault-tolerance concurrency tests — run under ThreadSanitizer and
// ASan/UBSan in CI. Producers feed a threaded engine through the fault
// injector while the health FSM, watchdog, and backpressure machinery all
// run; assertions are structural (conservation, termination, states), not
// timing-dependent.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "sim/fault_injector.h"
#include "stream/engine.h"
#include "util/rng.h"

namespace hod::stream {
namespace {

using hierarchy::ProductionLevel;

std::string SensorId(size_t i) { return "sensor_" + std::to_string(i); }

std::vector<double> CleanStream(uint64_t seed, size_t n) {
  Rng rng(seed);
  std::vector<double> values;
  values.reserve(n);
  double noise = 0.0;
  for (size_t t = 0; t < n; ++t) {
    noise = 0.7 * noise + rng.Gaussian(0.0, 0.25);
    values.push_back(50.0 + noise);
  }
  return values;
}

TEST(FaultConcurrency, FaultedMultiProducerStreamStaysAccounted) {
  constexpr size_t kSensors = 8;
  constexpr size_t kProducers = 4;
  constexpr size_t kSamples = 1500;

  StreamEngineOptions options;
  options.num_shards = 4;
  options.queue_capacity = 256;
  options.monitor.warmup = 64;
  options.watchdog_interval = std::chrono::milliseconds(20);
  options.health.flatline_window = 16;
  options.health.suspect_after = 2;
  options.health.quarantine_after = 8;
  // Producers feed sensors sequentially relative to each other, so the
  // wall-clock staleness sweep must not quarantine slow-but-alive ones.
  options.health.staleness_timeout = 0.0;
  StreamEngine engine(options);
  for (size_t i = 0; i < kSensors; ++i) {
    ASSERT_TRUE(engine.AddSensor(SensorId(i), ProductionLevel::kPhase).ok());
  }

  // Three victims, three distinct failure modes. Stuck-at trips the
  // flatline detector; NaN bursts are rejected at the router; clock skew
  // produces out-of-order rejections. All feed the same FSM.
  sim::FaultInjector injector;
  ASSERT_TRUE(injector
                  .AddFault(SensorId(1),
                            {sim::FaultKind::kStuckAt, 300.0, 600.0})
                  .ok());
  ASSERT_TRUE(injector
                  .AddFault(SensorId(4),
                            {sim::FaultKind::kNaNBurst, 400.0, 400.0})
                  .ok());
  ASSERT_TRUE(injector
                  .AddFault(SensorId(6),
                            {sim::FaultKind::kClockSkew, 500.0, 300.0})
                  .ok());

  ASSERT_TRUE(engine.Start().ok());
  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&engine, &injector, p] {
      for (size_t i = p; i < kSensors; i += kProducers) {
        const std::vector<double> values = CleanStream(i + 1, kSamples);
        for (size_t t = 0; t < values.size(); ++t) {
          SensorSample clean{SensorId(i), ProductionLevel::kPhase,
                             static_cast<double>(t), values[t]};
          for (const SensorSample& sample : injector.Apply(clean)) {
            auto ack = engine.Ingest(sample);
            if (!ack.ok()) {
              // Corrupted samples are rejected with typed errors; nothing
              // else is acceptable here.
              ASSERT_TRUE(ack.status().code() ==
                              StatusCode::kInvalidArgument ||
                          ack.status().code() == StatusCode::kOutOfRange)
                  << ack.status().ToString();
            }
          }
        }
      }
    });
  }
  for (auto& producer : producers) producer.join();
  ASSERT_TRUE(engine.Flush().ok());
  ASSERT_TRUE(engine.Stop().ok());

  StreamStatsSnapshot stats = engine.stats();
  // Conservation under faults: every accepted sample was either scored
  // into a monitor or withheld in quarantine; kBlock loses nothing.
  EXPECT_EQ(stats.scored + stats.quarantined_samples, stats.ingested);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_GT(stats.rejected_non_finite, 0u) << "NaN burst";
  EXPECT_GT(stats.rejected_out_of_order, 0u) << "clock skew";
  EXPECT_GT(stats.quarantined_samples, 0u) << "stuck-at flatline";
  EXPECT_GE(stats.sensor_faults, 2u);

  // The stuck sensor was quarantined and the clean sensors never were.
  SensorHealthSnapshot health = engine.Health();
  for (const SensorHealthStatus& sensor : health.sensors) {
    if (injector.IsVictim(sensor.sensor_id)) continue;
    EXPECT_EQ(sensor.quarantines, 0u)
        << sensor.sensor_id << " quarantined spuriously";
    EXPECT_EQ(sensor.state, SensorHealthState::kHealthy) << sensor.sensor_id;
  }
  auto quarantines_of = [&health](const std::string& id) {
    for (const SensorHealthStatus& sensor : health.sensors) {
      if (sensor.sensor_id == id) return sensor.quarantines;
    }
    return uint64_t{0};
  };
  EXPECT_GE(quarantines_of(SensorId(1)), 1u) << "stuck-at victim";
  EXPECT_GE(quarantines_of(SensorId(4)), 1u) << "NaN victim";
}

TEST(FaultConcurrency, StopUnderSaturationTerminates) {
  StreamEngineOptions options;
  options.num_shards = 2;
  options.queue_capacity = 8;  // deliberately starved
  options.max_batch = 4;
  options.backpressure = BackpressurePolicy::kBlockWithTimeout;
  options.block_timeout = std::chrono::milliseconds(5);
  options.monitor.warmup = 16;
  options.watchdog_interval = std::chrono::milliseconds(10);
  StreamEngine engine(options);
  for (size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(engine.AddSensor(SensorId(i)).ok());
  }
  ASSERT_TRUE(engine.Start().ok());

  std::vector<std::thread> producers;
  for (size_t i = 0; i < 4; ++i) {
    producers.emplace_back([&engine, i] {
      Rng rng(i + 1);
      for (size_t t = 0; t < 100000; ++t) {
        auto ack = engine.Ingest({SensorId(i), ProductionLevel::kPhase,
                                  static_cast<double>(t),
                                  rng.Gaussian(50.0, 0.3)});
        if (!ack.ok() &&
            ack.status().code() == StatusCode::kFailedPrecondition) {
          break;  // engine stopped underneath us — expected
        }
      }
    });
  }
  // Stop while producers are saturating the queues; must terminate.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(engine.Stop().ok());
  for (auto& producer : producers) producer.join();

  StreamStatsSnapshot stats = engine.stats();
  EXPECT_GT(stats.scored, 0u);
  // Samples that were validated but refused at the closed/full queue are
  // the only ingested-but-unscored ones.
  EXPECT_LE(stats.scored + stats.dropped + stats.quarantined_samples,
            stats.ingested);
  EXPECT_FALSE(engine.running());
}

TEST(FaultConcurrency, WatchdogFlagsWedgedWorkerAndRecovers) {
  std::atomic<bool> wedged{false};
  std::atomic<bool> release{false};

  StreamEngineOptions options;
  options.num_shards = 1;
  options.queue_capacity = 512;
  options.max_batch = 8;
  options.monitor.warmup = 16;
  options.watchdog_interval = std::chrono::milliseconds(10);
  options.worker_tick_hook_for_test = [&wedged, &release](size_t) {
    if (wedged.load(std::memory_order_acquire)) {
      // Simulate a stuck scoring dependency: the worker holds its batch
      // and makes no progress until released.
      while (!release.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      wedged.store(false, std::memory_order_release);
    }
  };
  StreamEngine engine(options);
  ASSERT_TRUE(engine.AddSensor("s", ProductionLevel::kPhase).ok());
  ASSERT_TRUE(engine.Start().ok());

  Rng rng(5);
  // Warm the pipeline, then wedge the worker and keep the queue non-empty
  // so the watchdog sees depth > 0 with a frozen heartbeat.
  for (int t = 0; t < 64; ++t) {
    ASSERT_TRUE(engine
                    .Ingest({"s", ProductionLevel::kPhase,
                             static_cast<double>(t), rng.Gaussian(50.0, 0.3)})
                    .ok());
  }
  wedged.store(true, std::memory_order_release);
  for (int t = 64; t < 256; ++t) {
    ASSERT_TRUE(engine
                    .Ingest({"s", ProductionLevel::kPhase,
                             static_cast<double>(t), rng.Gaussian(50.0, 0.3)})
                    .ok());
  }

  // Wait (bounded) for the watchdog to flag the stall.
  bool flagged = false;
  for (int i = 0; i < 500 && !flagged; ++i) {
    StreamStatsSnapshot stats = engine.stats();
    flagged = stats.watchdog_stall_events > 0;
    if (!flagged) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(flagged) << "watchdog never noticed the wedged worker";
  StreamStatsSnapshot stalled = engine.stats();
  ASSERT_EQ(stalled.shard_stalled.size(), 1u);
  EXPECT_EQ(stalled.shard_stalled[0], 1u);

  // Unwedge: the engine must drain normally and the flag must clear.
  release.store(true, std::memory_order_release);
  ASSERT_TRUE(engine.Flush().ok());
  ASSERT_TRUE(engine.Stop().ok());
  StreamStatsSnapshot final_stats = engine.stats();
  EXPECT_EQ(final_stats.scored, final_stats.ingested);
  EXPECT_GE(final_stats.watchdog_stall_events, 1u);
}

}  // namespace
}  // namespace hod::stream
