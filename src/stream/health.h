#ifndef HOD_STREAM_HEALTH_H_
#define HOD_STREAM_HEALTH_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "hierarchy/level.h"
#include "stream/stats.h"
#include "timeseries/time_series.h"
#include "util/statusor.h"

namespace hod::stream {

/// Health state of one sensor channel — the paper's measurement-error
/// branch (§4) made operational: Algorithm 1 separates process outliers
/// from measurement errors after the fact; this FSM does it while the
/// stream runs, so a failing sensor is removed from aggregation before it
/// poisons level state or raises spurious process alarms.
///
///   kHealthy ──evidence≥suspect_after──► kSuspect
///   kSuspect ──evidence≥quarantine_after──► kQuarantined
///   kSuspect ──clean streak──► kHealthy
///   kQuarantined ──first clean sample──► kRecovering
///   kRecovering ──clean streak≥recovery_clean_streak──► kHealthy
///   kRecovering ──any fault signal──► kQuarantined
///   any state ──stale beyond staleness_timeout──► kQuarantined
enum class SensorHealthState {
  kHealthy,
  kSuspect,
  kQuarantined,
  kRecovering,
};

std::string_view SensorHealthStateName(SensorHealthState state);

/// What one observation (or rejection) said about the channel.
enum class HealthSignal {
  kClean,       ///< plausible in-order finite sample
  kFlatline,    ///< value stuck beyond the flatline window
  kNonFinite,   ///< router rejected a NaN/inf value
  kOutOfOrder,  ///< router rejected a regressed timestamp
  kDuplicate,   ///< timestamp did not advance (duplicate delivery)
  kStale,       ///< no samples while the rest of the plant moved on
};

std::string_view HealthSignalName(HealthSignal signal);

struct SensorHealthOptions {
  /// Master switch; a disabled tracker reports every sensor healthy and
  /// costs nothing on the scoring path.
  bool enabled = true;
  /// A run of this many consecutive near-identical values starts counting
  /// as flatline evidence (every further stuck sample adds one).
  size_t flatline_window = 32;
  /// Two samples within this absolute distance count as "identical".
  double flatline_epsilon = 1e-9;
  /// Accumulated fault evidence at which a healthy sensor turns suspect.
  uint64_t suspect_after = 4;
  /// Accumulated fault evidence at which a suspect sensor is quarantined.
  uint64_t quarantine_after = 16;
  /// Clean samples that clear a suspect sensor back to healthy.
  uint64_t suspect_clear_streak = 64;
  /// Clean samples a recovering sensor must deliver before it is trusted
  /// (aggregated / alerted on) again.
  uint64_t recovery_clean_streak = 128;
  /// A sensor whose last accepted sample is this far (stream time) behind
  /// the global frontier is quarantined as stale. <= 0 disables the
  /// staleness watchdog.
  double staleness_timeout = 256.0;
};

/// One FSM transition, timestamped in stream time.
struct HealthTransition {
  std::string sensor_id;
  hierarchy::ProductionLevel level = hierarchy::ProductionLevel::kPhase;
  SensorHealthState from = SensorHealthState::kHealthy;
  SensorHealthState to = SensorHealthState::kHealthy;
  HealthSignal reason = HealthSignal::kClean;
  ts::TimePoint ts = 0.0;
};

/// Verdict for one accepted sample, returned to the scoring path.
struct HealthObservation {
  SensorHealthState state = SensorHealthState::kHealthy;
  HealthSignal signal = HealthSignal::kClean;
  /// This sample pushed the sensor into quarantine (emit kSensorFault).
  bool entered_quarantine = false;
  /// This sample completed recovery (emit kSensorRecovered).
  bool recovered = false;
};

/// Complete per-sensor health state — snapshot unit and checkpoint unit.
struct SensorHealthStatus {
  std::string sensor_id;
  hierarchy::ProductionLevel level = hierarchy::ProductionLevel::kPhase;
  SensorHealthState state = SensorHealthState::kHealthy;
  uint64_t fault_evidence = 0;
  uint64_t clean_streak = 0;
  uint64_t flatline_run = 0;
  bool has_last_value = false;
  double last_value = 0.0;
  ts::TimePoint last_seen_ts = 0.0;
  ts::TimePoint last_transition_ts = 0.0;
  HealthSignal last_reason = HealthSignal::kClean;
  /// Times this sensor has entered quarantine.
  uint64_t quarantines = 0;
};

/// Aggregate view for dashboards and snapshots.
struct SensorHealthSnapshot {
  uint64_t healthy = 0;
  uint64_t suspect = 0;
  uint64_t quarantined = 0;
  uint64_t recovering = 0;
  /// Sorted by sensor id.
  std::vector<SensorHealthStatus> sensors;
};

/// Per-sensor health FSM registry. Thread model: the registry is sealed
/// once the engine starts (AddSensor before, lookups after are read-only);
/// each sensor's FSM is guarded by its own mutex, so the single scoring
/// thread of a sensor (Observe), any ingest thread (RecordRejection) and
/// the collector's staleness sweep can all drive transitions without a
/// global lock. The mutex is per sensor and uncontended in the common
/// case, keeping the hot-path cost to one lock/unlock pair per sample.
class SensorHealthTracker {
 public:
  /// `stats` may be nullptr (no counting); must outlive the tracker.
  explicit SensorHealthTracker(SensorHealthOptions options,
                               StreamStats* stats = nullptr);

  /// Registers a sensor. Not thread-safe; call before any observation.
  Status AddSensor(const std::string& sensor_id,
                   hierarchy::ProductionLevel level);

  bool enabled() const { return options_.enabled; }
  const SensorHealthOptions& options() const { return options_; }

  /// Feeds one router-accepted sample (the sensor's scoring thread).
  /// Returns the state the sample should be handled under: kQuarantined
  /// means "do not let this sample touch the monitor or the aggregates".
  /// Unknown sensors (never registered) report healthy.
  HealthObservation Observe(const std::string& sensor_id, ts::TimePoint ts,
                            double value);

  /// Feeds one router rejection (any ingest thread). `signal` must be a
  /// fault signal (kNonFinite / kOutOfOrder / kDuplicate). Returns the
  /// transition if this rejection caused one.
  std::optional<HealthTransition> RecordRejection(const std::string& sensor_id,
                                                  HealthSignal signal,
                                                  ts::TimePoint ts);

  /// Quarantines every sensor whose last accepted sample lags the global
  /// frontier beyond the staleness timeout (collector thread / snapshot
  /// cadence). Sensors that have never reported are skipped — absent is
  /// not stale. A sweep only runs when the frontier has advanced since
  /// the previous one: staleness means "the rest of the plant moved on
  /// without you", so a paused stream (engine quiesced for checkpoint or
  /// Stop, or simply idle) must not age its channels toward quarantine.
  /// Returns the transitions performed.
  std::vector<HealthTransition> SweepStale();

  /// Current state of one sensor (kHealthy for unknown ids).
  SensorHealthState StateOf(const std::string& sensor_id) const;

  /// Furthest accepted timestamp across all sensors.
  ts::TimePoint frontier() const {
    return frontier_.load(std::memory_order_relaxed);
  }

  size_t num_sensors() const { return sensors_.size(); }

  SensorHealthSnapshot Snapshot() const;

  /// Every transition since construction (or state restore), in order.
  std::vector<HealthTransition> Transitions() const;

  /// Checkpoint support: per-sensor state out / in. RestoreState requires
  /// every status to name a registered sensor.
  std::vector<SensorHealthStatus> SaveState() const;
  Status RestoreState(const std::vector<SensorHealthStatus>& states);

 private:
  struct Entry {
    explicit Entry(hierarchy::ProductionLevel l) : level(l) {}
    const hierarchy::ProductionLevel level;
    mutable std::mutex mu;
    SensorHealthState state = SensorHealthState::kHealthy;
    uint64_t fault_evidence = 0;
    uint64_t clean_streak = 0;
    uint64_t flatline_run = 0;
    bool has_last_value = false;
    double last_value = 0.0;
    ts::TimePoint last_seen_ts = 0.0;
    ts::TimePoint last_transition_ts = 0.0;
    HealthSignal last_reason = HealthSignal::kClean;
    uint64_t quarantines = 0;
  };

  /// Applies one fault/clean signal to the FSM. Caller holds `entry.mu`.
  /// Returns the transition, if any.
  std::optional<HealthTransition> Apply(const std::string& sensor_id,
                                        Entry& entry, HealthSignal signal,
                                        ts::TimePoint ts);
  void SetState(const std::string& sensor_id, Entry& entry,
                SensorHealthState to, HealthSignal reason, ts::TimePoint ts,
                HealthTransition* out);
  void LogTransition(const HealthTransition& transition);
  void AdvanceFrontier(ts::TimePoint ts);

  SensorHealthOptions options_;
  StreamStats* stats_;
  /// std::map: deterministic iteration for snapshots and checkpoints.
  std::map<std::string, std::unique_ptr<Entry>> sensors_;
  std::atomic<ts::TimePoint> frontier_;
  /// Frontier value at the end of the last staleness sweep — the gate that
  /// keeps wall-clock sweep cadences from quarantining a paused stream.
  std::atomic<ts::TimePoint> last_sweep_frontier_;

  mutable std::mutex log_mu_;
  std::vector<HealthTransition> log_;
};

}  // namespace hod::stream

#endif  // HOD_STREAM_HEALTH_H_
