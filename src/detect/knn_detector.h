#ifndef HOD_DETECT_KNN_DETECTOR_H_
#define HOD_DETECT_KNN_DETECTOR_H_

#include <vector>

#include "detect/detector.h"
#include "detect/kmeans.h"

namespace hod::detect {

/// Distance-based k-nearest-neighbor outlier detection — the family the
/// paper's Section 5 discusses via the MapReduce distance-based work [4]
/// and the knn/hubness line [34]. Score = mean distance to the k nearest
/// training points, relative to the training distribution of the same
/// statistic.
struct KnnOptions {
  size_t k = 5;
  /// Distance ratio (to the training q95) at which outlierness is 0.5.
  double distance_scale = 1.0;
};

class KnnDetector : public VectorDetector {
 public:
  explicit KnnDetector(KnnOptions options = {});

  std::string name() const override { return "KnnDistance"; }

  Status Train(const std::vector<std::vector<double>>& data) override;

  StatusOr<std::vector<double>> Score(
      const std::vector<std::vector<double>>& data) const override;

 private:
  /// Mean distance to the k nearest training rows, excluding `skip`
  /// (index into training data; pass npos for external points).
  double KnnDistance(const std::vector<double>& scaled, size_t skip) const;

  KnnOptions options_;
  ColumnScaler scaler_;
  std::vector<std::vector<double>> train_;
  /// options_.k clamped to the leave-one-out candidate count (n-1); with
  /// the raw k, a small training set under-fills the neighbor heap and
  /// every score collapses to 0.
  size_t k_ = 0;
  double baseline_ = 1.0;  // training q95 of the knn statistic
  size_t dim_ = 0;
  bool trained_ = false;
};

/// Reverse-nearest-neighbor (hubness-aware) outlier detection
/// (Radovanovic et al. 2015, cited as [34]): points that appear in few
/// other points' k-NN lists ("antihubs") are outliers. Robust in high
/// dimensions where plain distances concentrate.
struct ReverseNnOptions {
  size_t k = 5;
};

class ReverseNnDetector : public VectorDetector {
 public:
  explicit ReverseNnDetector(ReverseNnOptions options = {});

  std::string name() const override { return "ReverseNearestNeighbors"; }

  Status Train(const std::vector<std::vector<double>>& data) override;

  StatusOr<std::vector<double>> Score(
      const std::vector<std::vector<double>>& data) const override;

  /// Reverse-neighbor count per training point (hubness profile).
  const std::vector<size_t>& reverse_counts() const { return reverse_counts_; }

 private:
  ReverseNnOptions options_;
  ColumnScaler scaler_;
  std::vector<std::vector<double>> train_;
  std::vector<size_t> reverse_counts_;
  /// k-distance of each training point (distance to its k-th neighbor).
  std::vector<double> k_distance_;
  double expected_count_ = 1.0;
  size_t dim_ = 0;
  bool trained_ = false;
};

}  // namespace hod::detect

#endif  // HOD_DETECT_KNN_DETECTOR_H_
