// UPA-family detectors: finite state automaton and hidden Markov model.

#include <gtest/gtest.h>

#include <cmath>

#include "detect/fsa_detector.h"
#include "detect/hmm_detector.h"
#include "detector_test_util.h"

namespace hod::detect {
namespace {

using detect_test::CanonicalSequences;
using detect_test::ExpectAnomaliesScoreHigher;
using detect_test::ExpectScoresInUnitInterval;

TEST(Fsa, KnownTransitionsScoreZero) {
  ts::DiscreteSequence cyclic("c", 4);
  for (int i = 0; i < 200; ++i) cyclic.Append(i % 4);
  FsaDetector detector;
  ASSERT_TRUE(detector.Train({cyclic}).ok());
  auto scores = detector.Score(cyclic).value();
  // After warm-up, everything is a well-supported transition.
  for (size_t i = 8; i < scores.size(); ++i) {
    EXPECT_DOUBLE_EQ(scores[i], 0.0) << "position " << i;
  }
}

TEST(Fsa, NovelSuccessorScoresHigh) {
  ts::DiscreteSequence cyclic("c", 5);
  for (int i = 0; i < 200; ++i) cyclic.Append(i % 4);
  FsaDetector detector;
  ASSERT_TRUE(detector.Train({cyclic}).ok());
  // 0,1,2,3,0,1, then a 4 (never seen anywhere).
  ts::DiscreteSequence probe("p", 5, {0, 1, 2, 3, 0, 1, 4, 2});
  auto scores = detector.Score(probe).value();
  EXPECT_GE(scores[6], 0.6);
}

TEST(Fsa, LongerContextGivesStrongerScore) {
  // Symbol seen in training but never after this long context.
  ts::DiscreteSequence train("t", 4);
  for (int i = 0; i < 200; ++i) train.Append(i % 4);
  FsaDetector detector(FsaOptions{.max_order = 4});
  ASSERT_TRUE(detector.Train({train}).ok());
  // 0,1,2,3 context followed by 2 (expected 0): known symbol, novel
  // successor for a length-4 context.
  ts::DiscreteSequence probe("p", 4, {0, 1, 2, 3, 2});
  auto scores = detector.Score(probe).value();
  EXPECT_NEAR(scores[4], 1.0, 1e-9);  // 0.6 + 0.4 * 4/4
}

TEST(Fsa, NumTransitionsGrowsWithData) {
  FsaDetector detector;
  ts::DiscreteSequence train("t", 3, {0, 1, 2, 0, 1, 2, 0, 1, 2});
  ASSERT_TRUE(detector.Train({train}).ok());
  EXPECT_GT(detector.num_transitions(), 0u);
}

TEST(Fsa, FlagsCorruptedBursts) {
  const auto dataset = CanonicalSequences();
  FsaDetector detector;
  ASSERT_TRUE(detector.Train(dataset.train).ok());
  for (size_t s = 0; s < dataset.test.size(); ++s) {
    auto scores = detector.Score(dataset.test[s]);
    ASSERT_TRUE(scores.ok());
    ExpectScoresInUnitInterval(scores.value());
    ExpectAnomaliesScoreHigher(scores.value(), dataset.test_labels[s]);
  }
}

TEST(Hmm, ModelRowsAreStochastic) {
  const auto dataset = CanonicalSequences();
  HmmDetector detector(HmmOptions{.states = 3, .baum_welch_iters = 5});
  ASSERT_TRUE(detector.Train(dataset.train).ok());
  for (const auto& row : detector.transition()) {
    double sum = 0.0;
    for (double p : row) {
      EXPECT_GE(p, 0.0);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
  for (const auto& row : detector.emission()) {
    double sum = 0.0;
    for (double p : row) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
  double pi_sum = 0.0;
  for (double p : detector.initial()) pi_sum += p;
  EXPECT_NEAR(pi_sum, 1.0, 1e-9);
}

TEST(Hmm, TrainingImprovesLikelihoodOverRandomModel) {
  const auto dataset = CanonicalSequences();
  HmmDetector trained(HmmOptions{.states = 4, .baum_welch_iters = 15});
  ASSERT_TRUE(trained.Train(dataset.train).ok());
  HmmDetector barely(HmmOptions{.states = 4, .baum_welch_iters = 0});
  ASSERT_TRUE(barely.Train(dataset.train).ok());
  const auto& probe = dataset.train[1];
  EXPECT_GT(trained.LogLikelihood(probe).value(),
            barely.LogLikelihood(probe).value());
}

TEST(Hmm, FlagsCorruptedBursts) {
  const auto dataset = CanonicalSequences();
  HmmDetector detector;
  ASSERT_TRUE(detector.Train(dataset.train).ok());
  for (size_t s = 0; s < dataset.test.size(); ++s) {
    auto scores = detector.Score(dataset.test[s]);
    ASSERT_TRUE(scores.ok());
    ExpectScoresInUnitInterval(scores.value());
    ExpectAnomaliesScoreHigher(scores.value(), dataset.test_labels[s], 0.05);
  }
}

TEST(Hmm, OutOfAlphabetSymbolMaximallySurprising) {
  ts::DiscreteSequence train("t", 3);
  for (int i = 0; i < 100; ++i) train.Append(i % 3);
  HmmDetector detector(HmmOptions{.states = 2});
  ASSERT_TRUE(detector.Train({train}).ok());
  ts::DiscreteSequence probe("p", 5, {0, 1, 2, 4, 0});
  auto scores = detector.Score(probe).value();
  EXPECT_GT(scores[3], 0.9);
}

TEST(Hmm, RejectsEmptyTraining) {
  HmmDetector detector;
  EXPECT_FALSE(detector.Train({}).ok());
  HmmDetector zero_states(HmmOptions{.states = 0});
  EXPECT_FALSE(zero_states.Train({ts::DiscreteSequence("x", 2, {0})}).ok());
}

}  // namespace
}  // namespace hod::detect
