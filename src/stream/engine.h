#ifndef HOD_STREAM_ENGINE_H_
#define HOD_STREAM_ENGINE_H_

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/alert_manager.h"
#include "core/monitor.h"
#include "hierarchy/level.h"
#include "stream/health.h"
#include "stream/peer_group.h"
#include "stream/queue.h"
#include "stream/router.h"
#include "stream/sharded_scorer.h"
#include "stream/stats.h"
#include "util/statusor.h"

namespace hod::util {
class ThreadPool;
}  // namespace hod::util

namespace hod::stream {

struct EngineCheckpoint;
struct EngineSnapshot;

/// Configuration of the whole streaming engine.
struct StreamEngineOptions {
  /// Worker shards. Sensors are partitioned by stable hash of their id.
  size_t num_shards = 4;
  /// Per-shard ingress queue capacity (samples).
  size_t queue_capacity = 1024;
  /// Max samples a worker scores per queue drain (micro-batch size).
  size_t max_batch = 64;
  /// What a full shard queue does with a new sample (engine default; a
  /// sensor class can override per sensor via AddSensor).
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  /// Producer wait bound under kBlockWithTimeout before the push fails
  /// with DeadlineExceeded.
  std::chrono::milliseconds block_timeout{100};
  /// Promise about ingest concurrency. kSinglePerShard — exactly one
  /// thread pushes to each shard (a single ingest thread trivially
  /// qualifies, as do producers partitioned by the router's shard hash) —
  /// swaps each shard's ingress queue for the lock-free SPSC ring. The
  /// default keeps the mutex-based MPSC queue, correct for any number of
  /// concurrent Ingest callers. Never enters the checkpoint fingerprint:
  /// a checkpoint taken under either queue restores under the other.
  ProducerHint producer_hint = ProducerHint::kUnknown;
  /// Synchronous mode: no threads at all — Ingest validates, scores, and
  /// collects inline on the caller's thread, and the ack carries the
  /// monitor update. Deterministic; scores are byte-identical to feeding
  /// one core::OnlineMonitor per sensor. For tests and replay tools.
  bool synchronous = false;
  /// Seconds a sample's timestamp may regress behind its sensor's
  /// frontier before it is rejected as out-of-order.
  double out_of_order_tolerance = 0.0;
  /// Configuration applied to every per-sensor monitor.
  core::OnlineMonitorOptions monitor;
  /// Sensor health FSM thresholds (set health.enabled = false to run
  /// without the fault-tolerance layer).
  SensorHealthOptions health;
  /// Space-axis comparison layer (stream/peer_group.h): peer-group
  /// deviation scoring plus quarantine-onset correlation. Inert until
  /// groups are registered via AddPeerGroup / AddPeerGroupsFromRegistry;
  /// outage correlation stays off until peer.outage_min_sensors > 0.
  PeerGroupOptions peer;
  /// Time-axis concept-shift layer: one core::BocpdDetector per sensor
  /// watches the accepted sample stream; a confirmed setpoint change
  /// re-baselines that sensor's monitor in place (seeded from the
  /// post-shift posterior) and emits a single kConceptShift finding
  /// instead of an unbounded alarm storm on the new regime. Off by
  /// default — the scoring path is then byte-identical to an engine
  /// built before this option existed.
  struct ConceptShiftOptions {
    bool enabled = false;
    core::BocpdOptions bocpd;
  } shift;
  /// Resolve each sensor's string id to its (shard, lane) pair once at
  /// ingress and carry the lane with the sample, so the scorer skips its
  /// per-sample hash lookup. Lanes are write-once (assigned at Start,
  /// never moved by quarantine), so the cache needs no invalidation; off
  /// turns the fast path into a pure fallback for A/B measurement.
  bool lane_cache = true;
  /// Synchronous mode: run the staleness sweep every this many accepted
  /// samples. Threaded mode sweeps on the watchdog cadence instead.
  size_t health_sweep_every = 256;
  /// Watchdog period (threaded mode): stall detection over shard worker
  /// heartbeats plus the staleness sweep. Zero disables the watchdog.
  std::chrono::milliseconds watchdog_interval{200};
  /// Alert episode building. Stream findings start at global score 1, so
  /// the default board admits INFO — otherwise weak-but-real alarm
  /// episodes would be invisible.
  core::AlertManagerOptions alerts{30.0, core::AlertSeverity::kInfo};
  /// Background periodic checkpointing: when `checkpoint_path` is
  /// non-empty and `checkpoint_interval` positive, a timer thread calls
  /// CheckpointToFile(checkpoint_path) on that cadence. Each image is
  /// written to `<path>.tmp` and atomically renamed over the target, so a
  /// crash mid-write never corrupts the last good checkpoint. A non-empty
  /// path also arms the ingest gate CheckpointToFile needs, so manual
  /// calls on a live threaded engine work too (interval 0 = manual only).
  std::string checkpoint_path;
  std::chrono::milliseconds checkpoint_interval{0};
  /// Capacity of the scorer → collector queue (always lossless/blocking).
  size_t collector_queue_capacity = 4096;
  /// Collector publishes a fresh EngineSnapshot every this many outlier
  /// events (and always on Flush/Stop).
  size_t snapshot_every = 256;
  /// Read-side publish hook. When set, every published EngineSnapshot is
  /// also handed to this sink (after it became visible via Snapshot()),
  /// on the collector thread — the serve tier's SnapshotHub attaches
  /// here. The sink MUST be cheap and non-blocking (a bounded ring push):
  /// it runs on the pipeline's single consumer, so a slow sink stalls
  /// collection exactly like a slow collector would.
  std::function<void(const EngineSnapshot&)> snapshot_sink;
  /// Borrowed executor (fleet mode). When set on a threaded engine, the
  /// engine spawns NO threads of its own: shard drains run as pooled
  /// tasks on the executor's worker lane, the collector drain on its
  /// reserved service lane, and the watchdog + periodic checkpoint as
  /// executor timers. N engines on one pool cost pool-size threads, not
  /// N * (shards + 3). The pool must outlive the engine, and the engine
  /// must be Stop()ped before the pool shuts down. Ignored in
  /// synchronous mode (no threads either way).
  util::ThreadPool* executor = nullptr;
  /// Initial delay before the FIRST periodic checkpoint (subsequent ones
  /// fire every `checkpoint_interval`). The fleet tier derives this from
  /// the stable hash of the plant id, so a thousand plants spread their
  /// checkpoint I/O across the interval instead of writing in lockstep —
  /// and the stagger survives restarts. Zero = first write after one
  /// full interval.
  std::chrono::milliseconds checkpoint_phase{0};
  /// Test seam, forwarded to ShardedScorerOptions::worker_tick_hook.
  std::function<void(size_t)> worker_tick_hook_for_test;
};

/// Result of one Ingest call.
struct IngestAck {
  /// True when the sample was enqueued (threaded) or scored (synchronous).
  bool enqueued = false;
  /// Synchronous mode only: the monitor's verdict for this sample. Empty
  /// when the sensor is quarantined and the sample was withheld.
  std::optional<core::MonitorUpdate> update;
};

/// Aggregate outlier state of one hierarchy level.
struct LevelOutlierState {
  uint64_t outlier_samples = 0;  ///< forwarded samples above threshold
  uint64_t alarms_raised = 0;
  uint64_t alarms_cleared = 0;
  uint64_t active_alarms = 0;
  /// Sensor-fault findings emitted at this level (quarantine entries).
  uint64_t sensor_faults = 0;
  /// Sensors of this level currently quarantined (excluded from the
  /// aggregates above until they recover).
  uint64_t quarantined_sensors = 0;
  double peak_score = 0.0;
  ts::TimePoint last_outlier_ts = 0.0;
};

/// One sensor currently in alarm.
struct ActiveAlarm {
  std::string sensor_id;
  hierarchy::ProductionLevel level = hierarchy::ProductionLevel::kPhase;
  ts::TimePoint since = 0.0;
  double peak_score = 0.0;
};

/// One sensor currently quarantined by the health layer.
struct QuarantinedSensor {
  std::string sensor_id;
  hierarchy::ProductionLevel level = hierarchy::ProductionLevel::kPhase;
  ts::TimePoint since = 0.0;
  HealthSignal reason = HealthSignal::kClean;
};

/// One confirmed concept shift (online re-baseline). The snapshot carries
/// the most recent ones so the EscalationBridge can MarkDirty the covering
/// hierarchy scopes — their cached models were fit to the old regime.
struct ConceptShiftEvent {
  std::string sensor_id;
  hierarchy::ProductionLevel level = hierarchy::ProductionLevel::kPhase;
  ts::TimePoint ts = 0.0;            ///< confirming sample's timestamp
  double before_mean = 0.0;          ///< stable level before the shift
  double after_mean = 0.0;           ///< post-shift level estimate
  double magnitude_sigmas = 0.0;     ///< |after - before| / sigma_before
  double evidence = 0.0;             ///< posterior mass behind the shift
  uint64_t run_length = 0;           ///< post-shift run length at confirm
};

/// Periodic cross-level outlier snapshot — the escalation hook: the
/// EscalationBridge (stream/escalation.h) diffs consecutive snapshots'
/// active alarms and runs core::HierarchicalDetector::EscalateAlarm over
/// the newly-flagged entities to compute the full ⟨global score,
/// outlierness, support⟩ triple for what the stream tier flagged cheaply.
struct EngineSnapshot {
  /// Monotone snapshot counter (0 = nothing published yet).
  uint64_t sequence = 0;
  /// Collector events consumed when this snapshot was taken.
  uint64_t events_seen = 0;
  /// Event-time frontier at publish (max event timestamp consumed; 0.0
  /// until the first event) — the time axis of the serve tier's history
  /// rings.
  ts::TimePoint ts = 0.0;
  /// Indexed by LevelValue(level) - 1.
  std::array<LevelOutlierState, hierarchy::kNumLevels> levels{};
  /// Sensors in alarm right now, sorted by id.
  std::vector<ActiveAlarm> active_alarms;
  /// Sensors quarantined right now, sorted by id.
  std::vector<QuarantinedSensor> quarantined;
  /// Quarantine-onset correlation: a declared, still-open group outage.
  bool group_outage_active = false;
  std::string group_outage_entity;
  ts::TimePoint group_outage_since = 0.0;
  uint64_t group_outage_sensors = 0;
  /// Most recent confirmed concept shifts (bounded ring; newest last) and
  /// the total confirmed since start — the EscalationBridge diffs these to
  /// MarkDirty the covering hierarchy scopes.
  std::vector<ConceptShiftEvent> concept_shifts;
  uint64_t concept_shifts_total = 0;
};

/// Aggregate result of one escalation pass (one snapshot diff), reported
/// by the EscalationBridge so the counters land in StreamStatsSnapshot.
struct EscalationRunStats {
  uint64_t entities = 0;      ///< newly-flagged alarms re-scored
  uint64_t findings = 0;      ///< hierarchical findings produced
  uint64_t unresolved = 0;    ///< alarms the detector could not resolve
  uint64_t cache_hits = 0;    ///< detector cache entries reused
  uint64_t cache_misses = 0;  ///< detector models/scores (re)built
  uint64_t latency_us = 0;    ///< wall time inside the detector
};

/// The streaming facade: router → sharded scorer → collector, wrapped in
/// the fault-tolerance layer (sensor health FSM, liveness watchdog,
/// checkpoint/restore).
///
///   StreamEngine engine(options);
///   engine.AddSensor("m1.bed_temp_a", hierarchy::ProductionLevel::kPhase);
///   engine.Start();
///   engine.Ingest({"m1.bed_temp_a", level, ts, value});   // any thread
///   engine.Stop();                // drains every queue, joins workers
///   auto episodes = engine.Episodes();
///
/// Threading: Ingest is safe from any number of producer threads. Each
/// sensor's samples are scored in arrival order by exactly one worker
/// (stable hash → shard), so per-sensor results are identical to a
/// single-threaded run. The collector is the only thread touching the
/// AlertManager and the snapshot state; the watchdog thread only reads
/// shard heartbeats and drives health transitions through the tracker's
/// per-sensor locks.
class StreamEngine {
 public:
  explicit StreamEngine(StreamEngineOptions options = {});
  ~StreamEngine();

  StreamEngine(const StreamEngine&) = delete;
  StreamEngine& operator=(const StreamEngine&) = delete;

  /// Registers a sensor before Start(). Unregistered sensors are rejected
  /// at ingest with NotFound. `policy` overrides the engine-wide
  /// backpressure for this sensor's pushes (per-sensor-class QoS:
  /// critical channels kBlock, best-effort ones kDropOldest).
  Status AddSensor(const std::string& sensor_id,
                   hierarchy::ProductionLevel level =
                       hierarchy::ProductionLevel::kPhase,
                   std::optional<BackpressurePolicy> policy = std::nullopt);

  /// Registers a redundancy group for space-axis comparison. Every member
  /// must already be registered via AddSensor. Call before Start().
  Status AddPeerGroup(const std::string& group_id,
                      const std::vector<std::string>& members);

  /// Registers every redundancy group of `registry` with at least two
  /// engine-registered members (sensors the registry knows but the engine
  /// does not are skipped, as are singleton groups). Call before Start().
  Status AddPeerGroupsFromRegistry(const hierarchy::SensorRegistry& registry);

  /// Registers every machine-configuration-similarity cohort of
  /// `production` (see stream::ConfigurationCohorts) whose engine-
  /// registered membership still spans at least two sensors. Closes the
  /// gap the redundancy-group path leaves: machines doing the same work
  /// with the same configuration are peers even without shared redundancy
  /// groups. Call before Start().
  Status AddPeerGroupsFromConfiguration(const hierarchy::Production& production,
                                        double tolerance = 1e-6);

  /// Seals the registry and (threaded mode) spawns workers + collector +
  /// watchdog.
  Status Start();

  /// Validates, routes, and scores (sync) or enqueues (threaded) one
  /// sample. Typed errors: InvalidArgument (non-finite, level mismatch),
  /// NotFound (unknown sensor), OutOfRange (out-of-order or queue full
  /// under kReject), DeadlineExceeded (kBlockWithTimeout expired).
  /// Rejections feed the sensor's health FSM as fault evidence.
  StatusOr<IngestAck> Ingest(const SensorSample& sample);

  /// Blocks until every accepted sample has been scored and collected,
  /// then publishes a fresh snapshot. Call with producers quiescent.
  Status Flush();

  /// Drains all queues, joins all threads, publishes the final snapshot.
  /// Idempotent; the engine cannot be restarted.
  Status Stop();

  /// Serializes the engine's complete mutable state (monitor baselines,
  /// timestamp frontiers, health FSMs, collector aggregates, open alert
  /// findings, counters) as a versioned binary snapshot. Requires a
  /// quiescent engine: synchronous mode (between Ingest calls) or a
  /// stopped engine. A restored engine resumes byte-identically in
  /// synchronous mode.
  Status Checkpoint(std::ostream& os) const;

  /// Checkpoints a LIVE engine to `path` (write-to-temp + atomic rename).
  /// Unlike Checkpoint(), this also works while threaded workers run: it
  /// closes the ingest gate (producers block for the duration), drains the
  /// scorer and collector, and serializes the quiesced state. Requires
  /// `options.checkpoint_path` non-empty on a threaded engine (that is
  /// what arms the gate Ingest honors); synchronous and stopped engines
  /// need no gate. This is what the background checkpoint timer calls.
  Status CheckpointToFile(const std::string& path);

  /// Ingests an escalation pass's findings into the alert board (merged
  /// into the same per-entity episodes as the stream tier's raw alarms)
  /// and folds its counters into the engine stats. Thread-safe; called by
  /// the EscalationBridge.
  void ReportEscalation(const EscalationRunStats& run,
                        const std::vector<core::OutlierFinding>& findings);

  /// Rebuilds an engine from a checkpoint. `options` must describe the
  /// same monitor configuration and out-of-order tolerance the checkpoint
  /// was taken under (validated; InvalidArgument on mismatch); threading
  /// options may differ. The restored engine is started and ready to
  /// ingest.
  static StatusOr<std::unique_ptr<StreamEngine>> Restore(
      std::istream& is, StreamEngineOptions options);

  bool running() const { return state_.load() == kRunning; }
  size_t num_shards() const { return scorer_.num_shards(); }
  size_t num_sensors() const { return router_.num_sensors(); }
  const StreamEngineOptions& options() const { return options_; }

  /// Counter snapshot. Exact in synchronous mode and after Stop();
  /// instantaneous-but-consistent-enough while threads run.
  StreamStatsSnapshot stats() const;

  /// Latest published per-level outlier snapshot (sequence 0 if none).
  EngineSnapshot Snapshot() const;

  /// Per-sensor health states (safe from any thread).
  SensorHealthSnapshot Health() const { return health_.Snapshot(); }

  /// Current health FSM state of one sensor.
  SensorHealthState HealthStateOf(const std::string& sensor_id) const {
    return health_.StateOf(sensor_id);
  }

  /// Every health FSM transition so far, in order — the audit trail fault
  /// drills and detection-latency benchmarks measure against.
  std::vector<HealthTransition> HealthTransitions() const {
    return health_.Transitions();
  }

  /// Every fired space-axis (peer-group) deviation so far, in fire order —
  /// the fail-slow audit trail bench_failslow measures lead time against.
  std::vector<PeerDeviation> PeerDeviations() const {
    return peers_.Deviations();
  }

  size_t num_peer_groups() const { return peers_.num_groups(); }

  /// Raw findings ingested into the alert board so far (stream alarms,
  /// sensor faults, peer drifts, group outages, escalations), in arrival
  /// order. Thread-safe.
  std::vector<core::OutlierFinding> Findings() const;

  /// Alert episodes built from forwarded outlier findings.
  std::vector<core::AlertEpisode> Episodes() const;

  /// Suspected-measurement-error episodes (the calibration queue) — the
  /// sensor-fault half of the board that Episodes() filters out.
  std::vector<core::AlertEpisode> CalibrationQueue() const;

  /// Monitor state of one sensor. FailedPrecondition while workers run
  /// (stop or flush-in-sync-mode first).
  StatusOr<SensorProbe> Probe(const std::string& sensor_id) const;

 private:
  enum State { kConfiguring, kRunning, kStopped };
  /// Pooled collector-task states — same machine as the scorer's shard
  /// drain tasks (see ShardedScorer::NotifyShard).
  enum CollectorTaskState : int {
    kCollectorIdle = 0,
    kCollectorArmed = 1,
    kCollectorRunning = 2,
  };

  /// True when this engine runs on a borrowed executor instead of its own
  /// jthreads (threaded semantics, pooled mechanics).
  bool pooled() const {
    return options_.executor != nullptr && !options_.synchronous;
  }

  /// Builds the scorer configuration, wiring the engine's collector
  /// notify hook when running pooled.
  static ShardedScorerOptions MakeScorerOptions(
      const StreamEngineOptions& options, StreamEngine* engine);

  /// Builds each shard's monitors from the router registry. Split out of
  /// Start() so Restore can inject monitor state before threads exist.
  Status PopulateScorer();

  void CollectorLoop();
  void WatchdogLoop(const std::stop_token& stop);
  void CheckpointLoop(const std::stop_token& stop);
  /// One watchdog pass: stall detection over shard heartbeats + the
  /// staleness sweep. Body of WatchdogLoop (jthread mode) and of the
  /// executor watchdog timer (pooled mode).
  void WatchdogTick();
  /// Pooled mode: arms the collector drain task (no-op if already armed).
  /// Called by the scorer after every successful collector push and by
  /// PushHealthEvent.
  void NotifyCollector();
  /// Pooled mode: the collector drain body, run on the service lane.
  void CollectorDrainTask();
  /// Collector-thread only (or caller thread in synchronous mode).
  void ConsumeScored(const ScoredSample& scored);
  void PublishSnapshot();
  /// Drains the collector queue inline (synchronous mode only).
  void DrainCollectorQueueSync();
  /// Feeds one ingest rejection into the health FSM and forwards any
  /// resulting quarantine to the collector. Safe from producer threads.
  void RecordIngestFault(const SensorSample& sample, HealthSignal signal);
  /// Pushes one health transition as a collector event (any thread).
  void PushHealthEvent(const HealthTransition& transition);
  /// Converts a quarantine entry into a kSensorFault finding + bookkeeping.
  void ConsumeSensorFault(const ScoredSample& event);
  void ConsumeSensorRecovery(const ScoredSample& event);
  /// Converts a fired peer deviation into a kPeerDrift finding.
  void ConsumePeerDeviation(const ScoredSample& event);
  /// Converts a confirmed concept shift into exactly one kConceptShift
  /// finding, retracts the sensor's now-stale active alarm (the old
  /// baseline raised it against the new regime), and records the event
  /// for snapshot publication.
  void ConsumeConceptShift(const ScoredSample& event);
  /// Quarantine-onset correlation (collector-private). With correlation
  /// off (peer.outage_min_sensors == 0) every quarantine emits its own
  /// kSensorFault finding immediately; with it on, staleness onsets are
  /// held in `pending_faults_` and either cluster into one kGroupOutage
  /// finding or expire into individual findings.
  void EmitSensorFaultFinding(const QuarantinedSensor& onset);
  void DeclareGroupOutage(ts::TimePoint ts);
  void ExpirePendingFaults(ts::TimePoint now);
  /// End-of-stream: emit every still-pending onset individually (they
  /// never clustered; losing them would hide real sensor faults).
  void FlushPendingFaults();
  /// Moves pending_findings_ into the alert manager (takes alerts_mu_).
  void IngestPendingFindings();

  Status FillCheckpoint(EngineCheckpoint& checkpoint) const;
  Status ApplyCheckpoint(const EngineCheckpoint& checkpoint);

  StreamEngineOptions options_;
  StreamStats stats_;
  BoundedQueue<ScoredSample> collector_queue_;
  IngestRouter router_;
  SensorHealthTracker health_;
  PeerGroupMonitor peers_;
  ShardedScorer scorer_;
  std::jthread collector_;
  std::jthread watchdog_;
  std::jthread checkpoint_timer_;
  /// Pooled mode: executor timer registrations (0 = not scheduled) and
  /// the collector task state machine.
  uint64_t watchdog_timer_id_ = 0;
  uint64_t checkpoint_timer_id_ = 0;
  std::atomic<int> collector_task_state_{kCollectorIdle};
  std::atomic<uint64_t> collector_tasks_in_flight_{0};
  /// Pooled mode: set once Stop() has fully quiesced the pipeline — the
  /// pooled analogue of `!collector_.joinable()` for the "is Stop still
  /// in flight?" check in CheckpointToFile.
  std::atomic<bool> pooled_stopped_{false};
  /// Watchdog stall-detection baseline. Written only by the watchdog
  /// jthread or the executor timer thread (never both for one engine).
  std::vector<uint64_t> watchdog_last_heartbeat_;
  std::atomic<int> state_{kConfiguring};
  bool scorer_populated_ = false;

  /// Quiescence gate for live checkpointing. Ingest holds it shared (only
  /// when `checkpoint_gate_enabled_`, keeping the lock off the hot path
  /// for engines that never checkpoint); the watchdog's staleness sweep
  /// try-locks it shared; CheckpointToFile holds it exclusively while
  /// draining and serializing.
  mutable std::shared_mutex ingest_gate_;
  const bool checkpoint_gate_enabled_;

  /// Dropped count carried over from a restored checkpoint (the live
  /// count lives in the shard queues, which restart at zero).
  uint64_t restored_dropped_ = 0;

  /// Watchdog state: per-shard stall flags (read by stats()).
  std::vector<std::atomic<uint8_t>> stalled_;

  /// Collector-private (unsynchronized: single consumer — the collector
  /// thread, or the caller thread in synchronous mode).
  std::array<LevelOutlierState, hierarchy::kNumLevels> levels_{};
  std::map<std::string, ActiveAlarm> active_alarms_;
  std::map<std::string, QuarantinedSensor> quarantined_;
  /// Quarantine-onset correlation state (collector-private, like the
  /// aggregates above). `collector_frontier_` is the max event timestamp
  /// consumed so far — the clock pending onsets expire against.
  struct ActiveOutage {
    ts::TimePoint since = 0.0;
    std::set<std::string> members;
  };
  std::deque<QuarantinedSensor> pending_faults_;
  std::optional<ActiveOutage> outage_;
  /// Concept-shift audit ring (collector-private, bounded) + lifetime
  /// total; published into EngineSnapshot.
  std::deque<ConceptShiftEvent> recent_shifts_;
  uint64_t concept_shifts_total_ = 0;
  ts::TimePoint collector_frontier_ =
      -std::numeric_limits<ts::TimePoint>::infinity();
  uint64_t events_seen_ = 0;
  uint64_t events_at_last_snapshot_ = 0;
  uint64_t next_sequence_ = 1;

  /// Synchronous-mode staleness sweep cadence counter.
  uint64_t ingested_since_sweep_ = 0;

  /// Collector drain tracking, for Flush. `health_events_pushed_` counts
  /// collector events originating outside the scorer (ingest-side faults,
  /// watchdog staleness sweeps) so Flush can wait for exactly
  /// forwarded() + health_events_pushed_ events.
  std::mutex collector_mu_;
  std::condition_variable collector_cv_;
  std::atomic<uint64_t> collected_{0};
  std::atomic<uint64_t> health_events_pushed_{0};

  mutable std::mutex alerts_mu_;
  core::AlertManager alerts_;
  std::vector<core::OutlierFinding> pending_findings_;

  mutable std::mutex snapshot_mu_;
  EngineSnapshot published_;
};

}  // namespace hod::stream

#endif  // HOD_STREAM_ENGINE_H_
