#include "hierarchy/sensor_registry.h"

namespace hod::hierarchy {

Status SensorRegistry::Register(SensorInfo info) {
  if (info.id.empty()) {
    return Status::InvalidArgument("sensor id must be non-empty");
  }
  if (sensors_.count(info.id) > 0) {
    return Status::InvalidArgument("duplicate sensor id '" + info.id + "'");
  }
  if (!info.redundancy_group.empty()) {
    groups_[info.redundancy_group].push_back(info.id);
  }
  order_.push_back(info.id);
  sensors_.emplace(info.id, std::move(info));
  return Status::Ok();
}

StatusOr<SensorInfo> SensorRegistry::Get(const std::string& id) const {
  const auto it = sensors_.find(id);
  if (it == sensors_.end()) {
    return Status::NotFound("unknown sensor '" + id + "'");
  }
  return it->second;
}

bool SensorRegistry::Contains(const std::string& id) const {
  return sensors_.count(id) > 0;
}

StatusOr<std::vector<std::string>> SensorRegistry::CorrespondingSensors(
    const std::string& id) const {
  const auto it = sensors_.find(id);
  if (it == sensors_.end()) {
    return Status::NotFound("unknown sensor '" + id + "'");
  }
  std::vector<std::string> result;
  if (it->second.redundancy_group.empty()) return result;
  const auto group_it = groups_.find(it->second.redundancy_group);
  if (group_it == groups_.end()) return result;
  for (const std::string& member : group_it->second) {
    if (member != id) result.push_back(member);
  }
  return result;
}

}  // namespace hod::hierarchy
