// E11 — fault detection latency, quarantine precision/recall, and the
// throughput cost of sensor-health tracking (hod::stream + hod::sim).
//
// Two parts:
//   1. A deterministic fault drill (synchronous engine): the FaultInjector
//      corrupts victims with stuck-at, NaN-burst, and dropout faults; we
//      measure per-kind detection latency from the health FSM's transition
//      log and score quarantine precision/recall against the injector's
//      ground truth.
//   2. A threaded throughput A/B: the identical workload with health
//      tracking on vs off. The robustness layer's overhead budget is <10%.
//
// Emits the human-readable tables on stdout and BENCH_FAULT.json in the
// working directory so the robustness trajectory is tracked across PRs.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "sim/fault_injector.h"
#include "stream/engine.h"
#include "util/rng.h"

namespace {

using hod::sim::FaultInjector;
using hod::sim::FaultKind;
using hod::sim::FaultProfile;
using hod::stream::SensorHealthState;
using hod::stream::SensorSample;
using hod::stream::StreamEngine;
using hod::stream::StreamEngineOptions;
using Clock = std::chrono::steady_clock;

std::string SensorId(size_t i) { return "sensor_" + std::to_string(i); }

StreamEngineOptions DrillOptions() {
  StreamEngineOptions options;
  options.synchronous = true;
  options.monitor.warmup = 100;
  options.snapshot_every = 64;
  options.health.flatline_window = 16;
  options.health.suspect_after = 4;
  options.health.quarantine_after = 8;
  options.health.recovery_clean_streak = 64;
  options.health.staleness_timeout = 30.0;
  options.health_sweep_every = 64;
  return options;
}

struct LatencyRow {
  std::string sensor;
  std::string kind;
  double latency = -1.0;  // seconds from fault start to quarantine; -1 = miss
};

struct DrillResult {
  std::vector<LatencyRow> latencies;
  double precision = 0.0;
  double recall = 0.0;
  size_t quarantine_transitions = 0;
  size_t intervals = 0;
};

/// Part 1: deterministic drill; latency + precision/recall vs ground truth.
DrillResult RunDrill() {
  constexpr size_t kSensors = 32;
  constexpr size_t kSteps = 1400;

  FaultInjector injector;
  struct Drill {
    size_t sensor;
    FaultKind kind;
    double start, duration;
  };
  const std::vector<Drill> drills = {
      {7, FaultKind::kStuckAt, 300.0, 180.0},
      {13, FaultKind::kNaNBurst, 450.0, 120.0},
      {21, FaultKind::kDropout, 600.0, 150.0},
  };
  for (const Drill& drill : drills) {
    FaultProfile profile;
    profile.kind = drill.kind;
    profile.start = drill.start;
    profile.duration = drill.duration;
    (void)injector.AddFault(SensorId(drill.sensor), profile);
  }

  StreamEngine engine(DrillOptions());
  for (size_t i = 0; i < kSensors; ++i) (void)engine.AddSensor(SensorId(i));
  (void)engine.Start();

  std::vector<hod::Rng> rngs;
  std::vector<double> noise(kSensors, 0.0);
  for (size_t i = 0; i < kSensors; ++i) rngs.emplace_back(900 + i);
  for (size_t t = 0; t < kSteps; ++t) {
    for (size_t i = 0; i < kSensors; ++i) {
      noise[i] = 0.7 * noise[i] + rngs[i].Gaussian(0.0, 0.25);
      SensorSample clean{SensorId(i), hod::hierarchy::ProductionLevel::kPhase,
                         static_cast<double>(t), 50.0 + noise[i]};
      for (const auto& sample : injector.Apply(clean)) {
        (void)engine.Ingest(sample);
      }
    }
  }
  (void)engine.Flush();

  DrillResult result;
  const auto truth = injector.GroundTruth();
  const auto transitions = engine.HealthTransitions();
  result.intervals = truth.size();

  size_t true_positives = 0;
  for (const auto& transition : transitions) {
    if (transition.to != SensorHealthState::kQuarantined) continue;
    ++result.quarantine_transitions;
    if (injector.IsFaulted(transition.sensor_id, transition.ts)) {
      ++true_positives;
    }
  }
  result.precision =
      result.quarantine_transitions > 0
          ? static_cast<double>(true_positives) / result.quarantine_transitions
          : 1.0;

  size_t detected = 0;
  for (const auto& interval : truth) {
    LatencyRow row;
    row.sensor = interval.sensor_id;
    row.kind = std::string(hod::sim::FaultKindName(interval.kind));
    for (const auto& transition : transitions) {
      if (transition.sensor_id != interval.sensor_id) continue;
      if (transition.to != SensorHealthState::kQuarantined) continue;
      if (transition.ts < interval.start || transition.ts >= interval.end) {
        continue;
      }
      row.latency = transition.ts - interval.start;
      break;
    }
    if (row.latency >= 0.0) ++detected;
    result.latencies.push_back(row);
  }
  result.recall = truth.empty()
                      ? 1.0
                      : static_cast<double>(detected) / truth.size();
  (void)engine.Stop();
  return result;
}

struct ThroughputResult {
  bool health = false;
  size_t samples = 0;
  double seconds = 0.0;
  double samples_per_sec = 0.0;
};

/// Part 2: threaded A/B — the same workload with health tracking on/off.
ThroughputResult RunThroughput(bool health_enabled) {
  constexpr size_t kSensors = 64;
  constexpr size_t kSamplesPerSensor = 4000;

  std::vector<SensorSample> workload;
  workload.reserve(kSensors * kSamplesPerSensor);
  {
    std::vector<hod::Rng> rngs;
    std::vector<double> noise(kSensors, 0.0);
    for (size_t i = 0; i < kSensors; ++i) rngs.emplace_back(2000 + i);
    for (size_t t = 0; t < kSamplesPerSensor; ++t) {
      for (size_t i = 0; i < kSensors; ++i) {
        noise[i] = 0.7 * noise[i] + rngs[i].Gaussian(0.0, 0.25);
        workload.push_back({SensorId(i),
                            hod::hierarchy::ProductionLevel::kPhase,
                            static_cast<double>(t), 50.0 + noise[i]});
      }
    }
  }

  StreamEngineOptions options;
  options.num_shards = 2;
  options.max_batch = 64;
  options.queue_capacity = 4096;
  options.monitor.warmup = 256;
  options.health.enabled = health_enabled;
  StreamEngine engine(options);
  for (size_t i = 0; i < kSensors; ++i) (void)engine.AddSensor(SensorId(i));
  (void)engine.Start();

  const auto start = Clock::now();
  for (const SensorSample& sample : workload) (void)engine.Ingest(sample);
  (void)engine.Stop();  // drains everything
  const auto end = Clock::now();

  ThroughputResult result;
  result.health = health_enabled;
  result.samples = workload.size();
  result.seconds = std::chrono::duration<double>(end - start).count();
  result.samples_per_sec =
      result.seconds > 0.0
          ? static_cast<double>(result.samples) / result.seconds
          : 0.0;
  return result;
}

}  // namespace

int main() {
  hod::bench::PrintHeader(
      "E11", "Fault detection latency & health-tracking overhead",
      "robustness layer: FaultInjector drill + health on/off A/B");

  hod::bench::PrintSection("detection latency by fault kind (drill)");
  const DrillResult drill = RunDrill();
  std::printf("%-12s %-10s %s\n", "sensor", "fault", "latency");
  for (const LatencyRow& row : drill.latencies) {
    if (row.latency >= 0.0) {
      std::printf("%-12s %-10s %.0fs\n", row.sensor.c_str(), row.kind.c_str(),
                  row.latency);
    } else {
      std::printf("%-12s %-10s MISSED\n", row.sensor.c_str(),
                  row.kind.c_str());
    }
  }
  std::printf("quarantine precision %.3f  recall %.3f  (%zu transitions, "
              "%zu intervals)\n",
              drill.precision, drill.recall, drill.quarantine_transitions,
              drill.intervals);

  hod::bench::PrintSection("throughput: health tracking on vs off");
  const ThroughputResult off = RunThroughput(false);
  const ThroughputResult on = RunThroughput(true);
  const double overhead =
      off.samples_per_sec > 0.0
          ? (off.samples_per_sec - on.samples_per_sec) / off.samples_per_sec
          : 0.0;
  std::printf("%-10s %-14s %s\n", "health", "samples/sec", "seconds");
  std::printf("%-10s %-14.0f %.3f\n", "off", off.samples_per_sec, off.seconds);
  std::printf("%-10s %-14.0f %.3f\n", "on", on.samples_per_sec, on.seconds);
  std::printf("overhead: %.1f%% (budget <10%%)\n", overhead * 100.0);

  std::ofstream json("BENCH_FAULT.json");
  json << "{\n  \"experiment\": \"fault_recovery\",\n"
       << "  \"drill\": {\n"
       << "    \"precision\": " << drill.precision << ",\n"
       << "    \"recall\": " << drill.recall << ",\n"
       << "    \"latencies\": [\n";
  for (size_t i = 0; i < drill.latencies.size(); ++i) {
    const LatencyRow& row = drill.latencies[i];
    json << "      {\"sensor\": \"" << row.sensor << "\", \"kind\": \""
         << row.kind << "\", \"latency_s\": " << row.latency << "}"
         << (i + 1 < drill.latencies.size() ? "," : "") << "\n";
  }
  json << "    ]\n  },\n"
       << "  \"throughput\": {\n"
       << "    \"health_off_samples_per_sec\": "
       << static_cast<uint64_t>(off.samples_per_sec) << ",\n"
       << "    \"health_on_samples_per_sec\": "
       << static_cast<uint64_t>(on.samples_per_sec) << ",\n"
       << "    \"overhead_fraction\": " << overhead << "\n"
       << "  }\n}\n";
  json.close();
  std::printf("\nWrote BENCH_FAULT.json\n");
  return 0;
}
