#include "timeseries/resample.h"

#include <gtest/gtest.h>

namespace hod::ts {
namespace {

TEST(Resample, AggregateAllModes) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(AggregateAll(xs, Aggregation::kMean), 2.5);
  EXPECT_DOUBLE_EQ(AggregateAll(xs, Aggregation::kMin), 1.0);
  EXPECT_DOUBLE_EQ(AggregateAll(xs, Aggregation::kMax), 4.0);
  EXPECT_DOUBLE_EQ(AggregateAll(xs, Aggregation::kLast), 4.0);
  EXPECT_DOUBLE_EQ(AggregateAll(xs, Aggregation::kSum), 10.0);
  EXPECT_NEAR(AggregateAll(xs, Aggregation::kStdDev), 1.1180339887, 1e-9);
  EXPECT_DOUBLE_EQ(AggregateAll({}, Aggregation::kMean), 0.0);
}

TEST(Resample, DownsampleMean) {
  TimeSeries s("x", 0.0, 1.0, {1, 2, 3, 4, 5, 6});
  auto down = Downsample(s, 2, Aggregation::kMean);
  ASSERT_TRUE(down.ok());
  EXPECT_EQ(down->size(), 3u);
  EXPECT_DOUBLE_EQ((*down)[0], 1.5);
  EXPECT_DOUBLE_EQ((*down)[2], 5.5);
  EXPECT_DOUBLE_EQ(down->interval(), 2.0);
}

TEST(Resample, DownsamplePartialTrailingGroup) {
  TimeSeries s("x", 0.0, 1.0, {1, 2, 3, 4, 5});
  auto down = Downsample(s, 2, Aggregation::kMax);
  ASSERT_TRUE(down.ok());
  ASSERT_EQ(down->size(), 3u);
  EXPECT_DOUBLE_EQ((*down)[2], 5.0);  // lone trailing sample
}

TEST(Resample, DownsampleFactorOneIsIdentity) {
  TimeSeries s("x", 3.0, 0.5, {1, 2, 3});
  auto down = Downsample(s, 1, Aggregation::kMean);
  ASSERT_TRUE(down.ok());
  EXPECT_EQ(down->values(), s.values());
  EXPECT_DOUBLE_EQ(down->interval(), 0.5);
}

TEST(Resample, DownsampleRejectsZeroFactor) {
  TimeSeries s("x", 0.0, 1.0, {1});
  EXPECT_FALSE(Downsample(s, 0, Aggregation::kMean).ok());
}

TEST(Resample, AlignByTimeOverlap) {
  TimeSeries a("a", 0.0, 1.0, std::vector<double>(10, 0.0));
  TimeSeries b("b", 4.0, 1.0, std::vector<double>(10, 0.0));
  auto range = AlignByTime(a, b);
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->a_begin, 4u);
  EXPECT_EQ(range->b_begin, 0u);
  EXPECT_EQ(range->length, 6u);
}

TEST(Resample, AlignByTimeNoOverlap) {
  TimeSeries a("a", 0.0, 1.0, std::vector<double>(3, 0.0));
  TimeSeries b("b", 10.0, 1.0, std::vector<double>(3, 0.0));
  EXPECT_FALSE(AlignByTime(a, b).ok());
}

TEST(Resample, AlignByTimeEmptySeries) {
  TimeSeries a("a", 0.0, 1.0);
  TimeSeries b("b", 0.0, 1.0, {1.0});
  EXPECT_FALSE(AlignByTime(a, b).ok());
}

TEST(Resample, PhaseToEnvironmentResolutionRollup) {
  // The paper's CAQ rule: "data is assigned ... to a higher hierarchy
  // level if it has a lower resolution". A 1 Hz phase series downsampled
  // by 10 aligns sample-for-sample with a 0.1 Hz environment series over
  // their overlap.
  std::vector<double> phase_values(600);
  for (size_t i = 0; i < phase_values.size(); ++i) {
    phase_values[i] = static_cast<double>(i);
  }
  TimeSeries phase("chamber", 1000.0, 1.0, phase_values);
  TimeSeries environment("room", 900.0, 10.0,
                         std::vector<double>(120, 21.0));

  auto rolled = Downsample(phase, 10, Aggregation::kMean).value();
  EXPECT_DOUBLE_EQ(rolled.interval(), environment.interval());
  auto range = AlignByTime(rolled, environment).value();
  // Overlap starts at the phase series start (t=1000 >= 900).
  EXPECT_EQ(range.a_begin, 0u);
  EXPECT_EQ(range.b_begin, 10u);
  EXPECT_EQ(range.length, 60u);
  // Aggregated values are the means of each 10-sample block.
  EXPECT_DOUBLE_EQ(rolled[0], 4.5);
  EXPECT_DOUBLE_EQ(rolled[59], 594.5);
}

}  // namespace
}  // namespace hod::ts
