#include "detect/rare_subsequence.h"

#include <algorithm>
#include <cmath>

#include "timeseries/window.h"

namespace hod::detect {

RareSubsequenceDetector::RareSubsequenceDetector(
    RareSubsequenceOptions options)
    : options_(options) {}

Status RareSubsequenceDetector::Train(
    const std::vector<ts::DiscreteSequence>& normal) {
  if (options_.word == 0) return Status::InvalidArgument("word must be > 0");
  counts_.clear();
  total_words_ = 0;
  size_t alphabet = 0;
  std::vector<size_t> symbol_counts;
  size_t total_symbols = 0;
  for (const auto& sequence : normal) {
    HOD_RETURN_IF_ERROR(sequence.Validate());
    alphabet = std::max(alphabet,
                        static_cast<size_t>(sequence.alphabet_size()));
    symbol_counts.resize(alphabet, 0);
    for (size_t i = 0; i < sequence.size(); ++i) {
      ++symbol_counts[sequence[i]];
      ++total_symbols;
    }
    for (auto& w : ts::SymbolWindows(sequence.symbols(), options_.word)) {
      ++counts_[std::move(w)];
      ++total_words_;
    }
  }
  if (total_words_ == 0) {
    return Status::InvalidArgument("no training words");
  }
  symbol_prob_.assign(alphabet, 0.0);
  for (size_t s = 0; s < alphabet; ++s) {
    symbol_prob_[s] = (static_cast<double>(symbol_counts[s]) + 1.0) /
                      (static_cast<double>(total_symbols) +
                       static_cast<double>(alphabet));
  }
  trained_ = true;
  return Status::Ok();
}

StatusOr<std::vector<double>> RareSubsequenceDetector::Score(
    const ts::DiscreteSequence& sequence) const {
  if (!trained_) return Status::FailedPrecondition("detector not trained");
  HOD_RETURN_IF_ERROR(sequence.Validate());
  const size_t n = sequence.size();
  std::vector<double> point_scores(n, 0.0);
  if (n < options_.word) return point_scores;

  auto spans_or = ts::SlidingWindows(n, options_.word, 1);
  if (!spans_or.ok()) return spans_or.status();
  const auto& spans = spans_or.value();

  std::vector<double> window_scores(spans.size(), 0.0);
  for (size_t w = 0; w < spans.size(); ++w) {
    const std::vector<ts::Symbol> word(
        sequence.symbols().begin() + spans[w].begin,
        sequence.symbols().begin() + spans[w].end);
    // Expected count under the unigram model.
    double p = 1.0;
    for (ts::Symbol s : word) {
      p *= static_cast<size_t>(s) < symbol_prob_.size()
               ? symbol_prob_[s]
               : 1.0 / static_cast<double>(std::max<size_t>(
                           symbol_prob_.size(), 2));
    }
    const double expected = p * static_cast<double>(total_words_);
    const auto it = counts_.find(word);
    const double observed =
        it != counts_.end() ? static_cast<double>(it->second) : 0.0;
    // Surprise = log((expected + 1) / (observed + 1)), clamped at 0:
    // words as frequent as expected (or more) are normal. A word entirely
    // absent from the database is surprising even when its unigram
    // expectation is low — the database, not the unigram model, is the
    // ground truth for what normal behaviour contains (floor at log 2).
    double surprise =
        std::max(0.0, std::log((expected + 1.0) / (observed + 1.0)));
    if (observed == 0.0) surprise = std::max(surprise, std::log(2.0));
    window_scores[w] = surprise / (surprise + 1.0);
  }
  return ts::WindowScoresToPointScores(n, spans, window_scores);
}

Status RareSubsequenceDetector::TrainSeries(
    const std::vector<ts::TimeSeries>& normal) {
  std::vector<ts::DiscreteSequence> sequences;
  sequences.reserve(normal.size());
  for (const auto& series : normal) {
    HOD_RETURN_IF_ERROR(series.Validate());
    auto sax_or = ts::ToSax(series.values(), options_.sax, series.name());
    if (!sax_or.ok()) return sax_or.status();
    sequences.push_back(std::move(sax_or).value());
  }
  return Train(sequences);
}

StatusOr<std::vector<double>> RareSubsequenceDetector::ScoreSeries(
    const ts::TimeSeries& series) const {
  HOD_ASSIGN_OR_RETURN(
      ts::DiscreteSequence sax,
      ts::ToSax(series.values(), options_.sax, series.name()));
  return Score(sax);
}

}  // namespace hod::detect
