#ifndef HOD_DETECT_BASELINE_H_
#define HOD_DETECT_BASELINE_H_

#include <cstdint>
#include <vector>

#include "detect/detector.h"

namespace hod::detect {

/// Robust z-score detector: scores each sample by its deviation from the
/// *training* median in training-MAD units. The canonical point-based
/// reference method for aggregated production levels, and the comparison
/// baseline the paper's §3 guidance implies for low-resolution data.
struct RobustZOptions {
  /// Deviations below this many MADs score 0 (noise floor).
  double slack = 1.0;
  /// Deviation (in MADs beyond the slack) at which the score reaches 0.5.
  double sigma_scale = 3.0;
};

class RobustZSeriesDetector : public SeriesDetector {
 public:
  explicit RobustZSeriesDetector(RobustZOptions options = {});

  std::string name() const override { return "RobustZ"; }

  Status Train(const std::vector<ts::TimeSeries>& normal) override;

  StatusOr<std::vector<double>> Score(
      const ts::TimeSeries& series) const override;

 private:
  RobustZOptions options_;
  double median_ = 0.0;
  double mad_ = 1.0;
  bool trained_ = false;
};

/// Vector variant: per-column robust z on the training data, score = the
/// largest per-feature deviation.
class RobustZVectorDetector : public VectorDetector {
 public:
  explicit RobustZVectorDetector(RobustZOptions options = {});

  std::string name() const override { return "RobustZVector"; }

  Status Train(const std::vector<std::vector<double>>& data) override;

  StatusOr<std::vector<double>> Score(
      const std::vector<std::vector<double>>& data) const override;

 private:
  RobustZOptions options_;
  std::vector<double> medians_;
  std::vector<double> mads_;
  bool trained_ = false;
};

/// Random-score baseline: uniform scores independent of the data — the
/// floor every Table-1 applicability claim must beat.
class RandomScoreDetector : public SeriesDetector {
 public:
  explicit RandomScoreDetector(uint64_t seed = 99) : seed_(seed) {}

  std::string name() const override { return "RandomBaseline"; }

  Status Train(const std::vector<ts::TimeSeries>& normal) override {
    (void)normal;
    return Status::Ok();
  }

  StatusOr<std::vector<double>> Score(
      const ts::TimeSeries& series) const override;

 private:
  uint64_t seed_;
};

}  // namespace hod::detect

#endif  // HOD_DETECT_BASELINE_H_
