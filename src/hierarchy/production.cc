#include "hierarchy/production.h"

namespace hod::hierarchy {

StatusOr<const ProductionLine*> FindLine(const Production& production,
                                         const std::string& line_id) {
  for (const ProductionLine& line : production.lines) {
    if (line.id == line_id) return &line;
  }
  return Status::NotFound("unknown production line '" + line_id + "'");
}

StatusOr<const Machine*> FindMachine(const Production& production,
                                     const std::string& machine_id) {
  for (const ProductionLine& line : production.lines) {
    for (const Machine& machine : line.machines) {
      if (machine.id == machine_id) return &machine;
    }
  }
  return Status::NotFound("unknown machine '" + machine_id + "'");
}

StatusOr<const Job*> FindJob(const Production& production,
                             const std::string& job_id) {
  for (const ProductionLine& line : production.lines) {
    for (const Machine& machine : line.machines) {
      for (const Job& job : machine.jobs) {
        if (job.id == job_id) return &job;
      }
    }
  }
  return Status::NotFound("unknown job '" + job_id + "'");
}

Status ValidateProduction(const Production& production) {
  for (const ProductionLine& line : production.lines) {
    if (line.id.empty()) {
      return Status::InvalidArgument("production line with empty id");
    }
    for (const EnvironmentChannel& channel : line.environment) {
      if (!production.sensors.Contains(channel.sensor_id)) {
        return Status::InvalidArgument("unregistered environment sensor '" +
                                       channel.sensor_id + "'");
      }
      HOD_RETURN_IF_ERROR(channel.series.Validate());
    }
    for (const Machine& machine : line.machines) {
      if (machine.id.empty()) {
        return Status::InvalidArgument("machine with empty id");
      }
      HOD_RETURN_IF_ERROR(machine.configuration.Validate());
      for (const Job& job : machine.jobs) {
        if (job.id.empty()) {
          return Status::InvalidArgument("job with empty id");
        }
        if (job.machine_id != machine.id) {
          return Status::InvalidArgument("job '" + job.id +
                                         "' has mismatched machine id");
        }
        if (job.end_time < job.start_time) {
          return Status::InvalidArgument("job '" + job.id +
                                         "' ends before it starts");
        }
        HOD_RETURN_IF_ERROR(job.setup.Validate());
        HOD_RETURN_IF_ERROR(job.caq.Validate());
        for (const Phase& phase : job.phases) {
          if (phase.end_time < phase.start_time) {
            return Status::InvalidArgument("phase '" + phase.name +
                                           "' ends before it starts");
          }
          HOD_RETURN_IF_ERROR(phase.events.Validate());
          for (const auto& [sensor_id, series] : phase.sensor_series) {
            if (!production.sensors.Contains(sensor_id)) {
              return Status::InvalidArgument("unregistered sensor '" +
                                             sensor_id + "'");
            }
            HOD_RETURN_IF_ERROR(series.Validate());
          }
        }
      }
    }
  }
  return Status::Ok();
}

size_t CountJobs(const Production& production) {
  size_t count = 0;
  for (const ProductionLine& line : production.lines) {
    for (const Machine& machine : line.machines) {
      count += machine.jobs.size();
    }
  }
  return count;
}

}  // namespace hod::hierarchy
