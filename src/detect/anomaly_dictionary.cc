#include "detect/anomaly_dictionary.h"

#include <algorithm>
#include <set>

#include "timeseries/distance.h"
#include "timeseries/window.h"

namespace hod::detect {

AnomalyDictionaryDetector::AnomalyDictionaryDetector(
    AnomalyDictionaryOptions options)
    : options_(options) {}

Status AnomalyDictionaryDetector::Train(
    const std::vector<ts::DiscreteSequence>& normal) {
  (void)normal;
  return Status::FailedPrecondition(
      "AnomalyDictionary needs labeled anomalies; call TrainSupervised or "
      "AddAnomalousPattern");
}

Status AnomalyDictionaryDetector::AddAnomalousPattern(
    const std::vector<ts::Symbol>& window) {
  if (window.size() != options_.window) {
    return Status::InvalidArgument("pattern length must equal window");
  }
  anomalous_.push_back(window);
  trained_ = true;
  return Status::Ok();
}

Status AnomalyDictionaryDetector::TrainSupervised(
    const std::vector<ts::DiscreteSequence>& sequences,
    const std::vector<Labels>& labels) {
  if (options_.window == 0) {
    return Status::InvalidArgument("window must be > 0");
  }
  if (sequences.size() != labels.size()) {
    return Status::InvalidArgument("one label vector per sequence required");
  }
  std::set<std::vector<ts::Symbol>> anomalous_set;
  normal_.clear();
  for (size_t s = 0; s < sequences.size(); ++s) {
    HOD_RETURN_IF_ERROR(sequences[s].Validate());
    const auto& syms = sequences[s].symbols();
    if (labels[s].size() != syms.size()) {
      return Status::InvalidArgument("label/sequence length mismatch");
    }
    if (syms.size() < options_.window) continue;
    for (size_t i = 0; i + options_.window <= syms.size(); ++i) {
      std::vector<ts::Symbol> window(syms.begin() + i,
                                     syms.begin() + i + options_.window);
      // A window joins the dictionary only when its majority is anomalous
      // — boundary windows that merely graze an anomaly would pollute the
      // negative database with mostly-normal content and cause tolerant
      // matching to flag normal traffic.
      size_t anomalous_positions = 0;
      for (size_t j = i; j < i + options_.window; ++j) {
        if (labels[s][j] != 0) ++anomalous_positions;
      }
      if (anomalous_positions * 2 >= options_.window) {
        anomalous_set.insert(std::move(window));
      } else if (anomalous_positions == 0) {
        ++normal_[std::move(window)];
      }
      // Mixed boundary windows contribute to neither database.
    }
  }
  if (anomalous_set.empty()) {
    return Status::InvalidArgument(
        "no anomalous windows in supervised training data");
  }
  anomalous_.assign(anomalous_set.begin(), anomalous_set.end());
  trained_ = true;
  return Status::Ok();
}

StatusOr<std::vector<double>> AnomalyDictionaryDetector::Score(
    const ts::DiscreteSequence& sequence) const {
  if (!trained_) return Status::FailedPrecondition("detector not trained");
  const size_t n = sequence.size();
  std::vector<double> point_scores(n, 0.0);
  if (n < options_.window) return point_scores;

  auto spans_or = ts::SlidingWindows(n, options_.window, 1);
  if (!spans_or.ok()) return spans_or.status();
  const auto& spans = spans_or.value();

  std::vector<double> window_scores(spans.size(), 0.0);
  for (size_t w = 0; w < spans.size(); ++w) {
    const std::vector<ts::Symbol> window(
        sequence.symbols().begin() + spans[w].begin,
        sequence.symbols().begin() + spans[w].end);
    // Dictionary hit (within tolerance) -> anomalous, stronger when exact.
    size_t best = options_.window + 1;
    for (const auto& pattern : anomalous_) {
      auto dist_or = ts::HammingDistance(window, pattern);
      if (!dist_or.ok()) return dist_or.status();
      best = std::min(best, dist_or.value());
      if (best == 0) break;
    }
    if (best <= options_.tolerance) {
      window_scores[w] =
          1.0 - 0.3 * static_cast<double>(best) /
                    static_cast<double>(std::max<size_t>(options_.tolerance, 1));
      continue;
    }
    // Known-normal window -> 0; otherwise novel -> intermediate score.
    if (normal_.find(window) != normal_.end()) {
      window_scores[w] = 0.0;
    } else {
      window_scores[w] = options_.novelty_score;
    }
  }
  return ts::WindowScoresToPointScores(n, spans, window_scores);
}

}  // namespace hod::detect
