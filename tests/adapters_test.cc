// Cross-data-type adapter tests: every adapter must preserve score bounds,
// propagate supervision, and keep anomaly separation through the lift.

#include <gtest/gtest.h>

#include "detect/adapters.h"

#include <cmath>
#include "detect/ar_detector.h"
#include "detect/em_detector.h"
#include "detect/fsa_detector.h"
#include "detect/mlp_detector.h"
#include "detect/rule_learning.h"
#include "detector_test_util.h"
#include "eval/metrics.h"

namespace hod::detect {
namespace {

using detect_test::CanonicalSeries;
using detect_test::CleanSequences;
using detect_test::ExpectAnomaliesScoreHigher;
using detect_test::ExpectScoresInUnitInterval;

TEST(SaxSeriesAdapter, LiftsSequenceDetectorOntoSeries) {
  const auto dataset = CanonicalSeries();
  auto detector = MakeSeriesFromSequence(std::make_unique<FsaDetector>(),
                                         ts::SaxOptions{0, 5});
  EXPECT_EQ(detector->name(), "FiniteStateAutomaton+SAX");
  EXPECT_FALSE(detector->supervised());
  ASSERT_TRUE(detector->Train(dataset.train).ok());
  auto scores = detector->Score(dataset.test[0]);
  ASSERT_TRUE(scores.ok());
  EXPECT_EQ(scores->size(), dataset.test[0].size());
  ExpectScoresInUnitInterval(scores.value());
}

TEST(WindowVectorSeriesAdapter, WindowScoresSpreadToPoints) {
  const auto dataset = CanonicalSeries();
  auto detector =
      MakeSeriesFromVectorWindows(std::make_unique<EmDetector>(), 32, 8);
  ASSERT_TRUE(detector->Train(dataset.train).ok());
  auto scores = detector->Score(dataset.test[0]);
  ASSERT_TRUE(scores.ok());
  EXPECT_EQ(scores->size(), dataset.test[0].size());
  ExpectScoresInUnitInterval(scores.value());
}

TEST(WindowVectorSeriesAdapter, ShortSeriesScoresZero) {
  const auto dataset = CanonicalSeries();
  auto detector =
      MakeSeriesFromVectorWindows(std::make_unique<EmDetector>(), 32, 8);
  ASSERT_TRUE(detector->Train(dataset.train).ok());
  ts::TimeSeries tiny("t", 0, 1, {1.0, 2.0});
  auto scores = detector->Score(tiny).value();
  for (double s : scores) EXPECT_DOUBLE_EQ(s, 0.0);
}

TEST(WindowVectorSeriesAdapter, SupervisionPropagates) {
  const auto dataset = CanonicalSeries();
  auto detector =
      MakeSeriesFromVectorWindows(std::make_unique<MlpDetector>(), 32, 8);
  EXPECT_TRUE(detector->supervised());
  // Unsupervised training must be rejected by the wrapped MLP.
  EXPECT_FALSE(detector->Train(dataset.train).ok());
  // Supervised training with per-sample labels works end to end. Train on
  // the *test* split (the train split has no positive labels).
  ASSERT_TRUE(
      detector->TrainSupervised(dataset.test, dataset.test_labels).ok());
  auto scores = detector->Score(dataset.test[0]);
  ASSERT_TRUE(scores.ok());
  ExpectScoresInUnitInterval(scores.value());
}

TEST(PointVectorSeriesAdapter, OneScorePerSample) {
  const auto dataset = CanonicalSeries();
  auto detector = MakeSeriesFromVectorPoints(std::make_unique<EmDetector>(),
                                             /*include_phase=*/false);
  ASSERT_TRUE(detector->Train(dataset.train).ok());
  auto scores = detector->Score(dataset.test[0]);
  ASSERT_TRUE(scores.ok());
  EXPECT_EQ(scores->size(), dataset.test[0].size());
}

TEST(PointVectorSeriesAdapter, PhaseFeatureChangesInput) {
  // With include_phase, a value normal early but abnormal late can be
  // distinguished; sanity-check it trains and scores.
  const auto dataset = CanonicalSeries();
  auto detector = MakeSeriesFromVectorPoints(std::make_unique<EmDetector>(),
                                             /*include_phase=*/true);
  ASSERT_TRUE(detector->Train(dataset.train).ok());
  auto scores = detector->Score(dataset.test[1]);
  ASSERT_TRUE(scores.ok());
  ExpectScoresInUnitInterval(scores.value());
}

TEST(WindowVectorSequenceAdapter, LiftsVectorDetectorOntoSequences) {
  const auto dataset = CleanSequences();
  auto detector =
      MakeSequenceFromVector(std::make_unique<EmDetector>(), 6);
  ASSERT_TRUE(detector->Train(dataset.train).ok());
  for (size_t s = 0; s < dataset.test.size(); ++s) {
    auto scores = detector->Score(dataset.test[s]);
    ASSERT_TRUE(scores.ok());
    EXPECT_EQ(scores->size(), dataset.test[s].size());
    ExpectScoresInUnitInterval(scores.value());
  }
}

TEST(SequenceVectorAdapter, QuantizesPointsToSymbols) {
  auto detector =
      MakeVectorFromSequence(std::make_unique<FsaDetector>(), 5);
  // Ramp-cycle data: quantized symbols are cyclic and learnable.
  std::vector<std::vector<double>> train;
  for (int i = 0; i < 400; ++i) {
    train.push_back({static_cast<double>(i % 5)});
  }
  ASSERT_TRUE(detector->Train(train).ok());
  // Break the cycle at one point.
  std::vector<std::vector<double>> test;
  for (int i = 0; i < 40; ++i) test.push_back({static_cast<double>(i % 5)});
  test[20] = {4.0};  // out-of-cycle jump
  auto scores = detector->Score(test);
  ASSERT_TRUE(scores.ok());
  ExpectScoresInUnitInterval(scores.value());
  EXPECT_GT((*scores)[20], 0.3);
}

TEST(SeriesVectorAdapter, StreamsPointsThroughSeriesDetector) {
  auto detector = MakeVectorFromSeries(std::make_unique<ArDetector>());
  std::vector<std::vector<double>> train;
  for (int i = 0; i < 500; ++i) {
    train.push_back({std::sin(0.2 * i)});
  }
  ASSERT_TRUE(detector->Train(train).ok());
  std::vector<std::vector<double>> test;
  for (int i = 0; i < 100; ++i) test.push_back({std::sin(0.2 * i)});
  test[50][0] += 8.0;  // additive spike
  auto scores = detector->Score(test);
  ASSERT_TRUE(scores.ok());
  EXPECT_GT((*scores)[50], 0.5);
  double max_other = 0.0;
  for (size_t i = 0; i < scores->size(); ++i) {
    if (i < 49 || i > 52) max_other = std::max(max_other, (*scores)[i]);
  }
  EXPECT_GT((*scores)[50], max_other);
}

TEST(SeriesVectorAdapter, MultiDimensionalRowsUseNorm) {
  auto detector = MakeVectorFromSeries(std::make_unique<ArDetector>());
  std::vector<std::vector<double>> train;
  for (int i = 0; i < 300; ++i) {
    // Norm cycles mildly so the AR fit has signal.
    train.push_back({3.0 + 0.1 * (i % 3), 4.0});
  }
  ASSERT_TRUE(detector->Train(train).ok());
  // Stream must exceed the AR order for interior samples to be scored.
  std::vector<std::vector<double>> test;
  for (int i = 0; i < 20; ++i) test.push_back({3.0 + 0.1 * (i % 3), 4.0});
  test[10] = {30.0, 40.0};  // norm jumps 5 -> 50
  auto scores = detector->Score(test);
  ASSERT_TRUE(scores.ok());
  EXPECT_GT((*scores)[10], (*scores)[5]);
  EXPECT_GT((*scores)[10], 0.5);
}

TEST(SaxSeriesAdapter, SupervisionPropagatesThroughDiscretization) {
  const auto dataset = CanonicalSeries();
  // RuleLearning is supervised and sequence-native; lifted onto series it
  // must accept per-sample labels and reject unlabeled training.
  auto detector = MakeSeriesFromSequence(
      std::make_unique<RuleLearningDetector>(), ts::SaxOptions{0, 5});
  EXPECT_TRUE(detector->supervised());
  EXPECT_FALSE(detector->Train(dataset.train).ok());
  ASSERT_TRUE(
      detector->TrainSupervised(dataset.test, dataset.test_labels).ok());
  auto scores = detector->Score(dataset.test[0]);
  ASSERT_TRUE(scores.ok());
  EXPECT_EQ(scores->size(), dataset.test[0].size());
  ExpectScoresInUnitInterval(scores.value());
}

TEST(PointVectorSeriesAdapter, SupervisedPointPathWorks) {
  const auto dataset = CanonicalSeries();
  auto detector = MakeSeriesFromVectorPoints(std::make_unique<MlpDetector>(),
                                             /*include_phase=*/true);
  EXPECT_TRUE(detector->supervised());
  ASSERT_TRUE(
      detector->TrainSupervised(dataset.test, dataset.test_labels).ok());
  auto scores = detector->Score(dataset.test[1]);
  ASSERT_TRUE(scores.ok());
  ExpectScoresInUnitInterval(scores.value());
}

TEST(Adapters, LabelLengthMismatchRejectedEverywhere) {
  const auto dataset = CanonicalSeries();
  std::vector<Labels> wrong = dataset.test_labels;
  wrong[0].pop_back();
  auto window_adapter =
      MakeSeriesFromVectorWindows(std::make_unique<MlpDetector>(), 32, 8);
  EXPECT_FALSE(window_adapter->TrainSupervised(dataset.test, wrong).ok());
  auto point_adapter = MakeSeriesFromVectorPoints(
      std::make_unique<MlpDetector>(), /*include_phase=*/false);
  EXPECT_FALSE(point_adapter->TrainSupervised(dataset.test, wrong).ok());
}

}  // namespace
}  // namespace hod::detect
