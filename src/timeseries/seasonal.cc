#include "timeseries/seasonal.h"

#include "timeseries/stats.h"

namespace hod::ts {

StatusOr<SeasonalDecomposition> Deseasonalize(
    const std::vector<double>& values, size_t period) {
  if (period == 0) return Status::InvalidArgument("period must be > 0");
  if (period > values.size()) {
    return Status::InvalidArgument("period exceeds series length");
  }
  SeasonalDecomposition result;
  result.seasonal.assign(period, 0.0);
  std::vector<size_t> counts(period, 0);
  for (size_t i = 0; i < values.size(); ++i) {
    result.seasonal[i % period] += values[i];
    ++counts[i % period];
  }
  for (size_t p = 0; p < period; ++p) {
    if (counts[p] > 0) {
      result.seasonal[p] /= static_cast<double>(counts[p]);
    }
  }
  result.adjusted.resize(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    result.adjusted[i] = values[i] - result.seasonal[i % period];
  }
  return result;
}

StatusOr<size_t> DominantPeriod(const std::vector<double>& values,
                                size_t min_lag, size_t max_lag,
                                double min_correlation) {
  if (min_lag < 2 || min_lag > max_lag) {
    return Status::InvalidArgument("need 2 <= min_lag <= max_lag");
  }
  if (max_lag >= values.size()) {
    return Status::InvalidArgument("max_lag must be below series length");
  }
  size_t best_lag = 0;
  double best_correlation = min_correlation;
  for (size_t lag = min_lag; lag <= max_lag; ++lag) {
    const double correlation = Autocorrelation(values, lag);
    if (correlation > best_correlation) {
      best_correlation = correlation;
      best_lag = lag;
    }
  }
  return best_lag;
}

}  // namespace hod::ts
