#ifndef HOD_UTIL_SIMD_H_
#define HOD_UTIL_SIMD_H_

#include <cstddef>
#include <string_view>

namespace hod::util::simd {

/// Which vector backend the process dispatches to. Selected once at
/// startup: AVX2 when the CPU reports it (x86-64), NEON on aarch64 (part
/// of the baseline ISA there), scalar otherwise. Every kernel below has a
/// scalar reference implementation with identical per-element IEEE
/// semantics, so the backend choice never changes *lane-wise* results —
/// only horizontal reductions (SquaredL2) may differ in summation order.
enum class Backend {
  kScalar,
  kAvx2,
  kNeon,
};

/// The backend the dispatcher currently routes to.
Backend ActiveBackend();

/// Human-readable backend tag ("avx2", "neon", "scalar") for bench output
/// and logs.
std::string_view BackendName();

/// Test seam: force a backend (pass kScalar to pin the reference path for
/// parity tests). Forcing a backend the CPU cannot execute is ignored.
/// Returns the backend actually in effect afterwards. Not thread-safe
/// against concurrent kernel calls; call from test setup only.
Backend SetBackendForTest(Backend backend);

/// sum_i (a[i] - b[i])^2 over two contiguous arrays of length n.
/// Dispatched: the vector path accumulates in independent partial sums
/// (deterministic run-to-run, but a different rounding order than the
/// reference). Caller guarantees both arrays hold n readable doubles —
/// dimension checks belong at the call boundary (see detect/distance.h).
double SquaredL2(const double* a, const double* b, size_t n);

/// The scalar left-to-right reference for SquaredL2 — the exact summation
/// order of the loops this kernel replaced. Kept callable for parity
/// tests and the bench's scalar leg.
double SquaredL2Reference(const double* a, const double* b, size_t n);

/// acc[i] += x[i] * y[i], elementwise over n lanes. Mul-then-add (never
/// FMA-contracted), so each lane matches the scalar expression
/// `acc += x * y` bit-for-bit.
void MulAccumulate(double* acc, const double* x, const double* y, size_t n);

/// acc[i] += a * x[i], elementwise over n lanes (scaled accumulate — the
/// inner step of an AR forecast pass, one call per lag coefficient).
/// Mul-then-add, never FMA-contracted, so each lane matches the scalar
/// expression `acc += a * x` bit-for-bit.
void Axpy(double* acc, double a, const double* x, size_t n);

/// The vectorized core of one OnlineMonitor scoring step, elementwise
/// over n independent monitor lanes (lane = one sensor; see
/// core::BatchMonitorBank). For every lane i, with r = sample[i] - pred[i]
/// and z = |r| / sigma[i]:
///
///   excess   = z - 1
///   score[i] = excess <= 0 ? 0 : excess / (excess + sigma_scale)
///   if (alpha > 0 && score[i] <= threshold)            // EWMA adaptation
///     sigma[i] = max(sqrt((1-alpha)*sigma[i]^2 + alpha*r^2), sigma_floor)
///
/// Every operation is per-lane IEEE arithmetic in the same order as
/// core::OnlineMonitor::Push, so each lane's score and updated sigma are
/// bit-identical to the scalar monitor. Pass alpha <= 0 for a frozen
/// scale (scale_forgetting == 1.0).
void MonitorScoreLanes(const double* sample, const double* pred,
                       double* sigma, double* score, size_t n,
                       double sigma_scale, double threshold, double alpha,
                       double sigma_floor);

}  // namespace hod::util::simd

#endif  // HOD_UTIL_SIMD_H_
