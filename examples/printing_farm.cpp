// Printing farm: condition monitoring and alert management across a whole
// multi-line additive-manufacturing production.
//
// Demonstrates the paper's alert-management application: every hierarchy
// level is scanned, findings flow into the AlertManager, which merges
// nearby findings into episodes, grades them from the <global score,
// outlierness, support> triple, and routes suspected measurement errors to
// a calibration queue instead of the production-stop queue.

#include <cstdio>
#include <string>

#include "core/alert_manager.h"
#include "core/hierarchical_detector.h"
#include "sim/plant.h"

namespace {

void PrintEpisode(const hod::core::AlertEpisode& episode) {
  std::printf(
      "  %-28s t=[%.0f..%.0f] findings=%zu outlierness=%.2f "
      "globalScore=%d support=%.2f\n",
      episode.entity.c_str(), episode.start_time, episode.end_time,
      episode.finding_count, episode.peak_outlierness,
      episode.peak_global_score, episode.peak_support);
}

}  // namespace

int main() {
  using namespace hod;

  sim::PlantOptions plant_options;
  plant_options.num_lines = 2;
  plant_options.machines_per_line = 3;
  plant_options.jobs_per_machine = 12;
  plant_options.seed = 99;
  sim::ScenarioOptions scenario;
  scenario.process_anomaly_rate = 0.2;
  scenario.glitch_rate = 0.15;
  auto plant_or = sim::BuildPlant(plant_options, scenario);
  if (!plant_or.ok()) {
    std::fprintf(stderr, "%s\n", plant_or.status().ToString().c_str());
    return 1;
  }
  const sim::SimulatedPlant& plant = plant_or.value();
  core::HierarchicalDetector detector(&plant.production);

  core::AlertManagerOptions manager_options;
  manager_options.merge_window = 30.0;
  manager_options.min_severity = core::AlertSeverity::kWarning;
  core::AlertManager manager(manager_options);

  // Phase level: scan the redundant temperature sensors of every job.
  for (const auto& line : plant.production.lines) {
    for (const auto& machine : line.machines) {
      for (const auto& job : machine.jobs) {
        for (const auto& phase : job.phases) {
          for (const auto& [sensor_id, series] : phase.sensor_series) {
            if (sensor_id.find("temp") == std::string::npos) continue;
            core::PhaseQuery query{machine.id, job.id, phase.name,
                                   sensor_id};
            auto report = detector.FindPhaseOutliers(query);
            if (report.ok()) manager.IngestReport(report.value());
          }
        }
      }
    }
  }
  // Job, environment, line, and production levels.
  for (const auto& line : plant.production.lines) {
    for (const auto& machine : line.machines) {
      if (auto report = detector.FindJobOutliers(machine.id); report.ok()) {
        manager.IngestReport(report.value());
      }
    }
    if (auto report = detector.FindEnvironmentOutliers(line.id);
        report.ok()) {
      manager.IngestReport(report.value());
    }
    if (auto report = detector.FindLineOutliers(line.id); report.ok()) {
      manager.IngestReport(report.value());
    }
  }
  if (auto report = detector.FindProductionOutliers(); report.ok()) {
    manager.IngestReport(report.value());
  }

  std::printf("=== PRINTING FARM ALERT BOARD ===\n");
  std::printf("(%zu raw findings ingested)\n\n",
              manager.findings_ingested());

  const auto episodes = manager.Episodes();
  size_t critical = 0;
  for (const auto& episode : episodes) {
    if (episode.severity == core::AlertSeverity::kCritical) ++critical;
  }
  std::printf("CRITICAL episodes (production-stop queue): %zu\n", critical);
  for (const auto& episode : episodes) {
    if (episode.severity == core::AlertSeverity::kCritical) {
      PrintEpisode(episode);
    }
  }
  std::printf("\nWARNING episodes (supervisor review): %zu\n",
              episodes.size() - critical);
  size_t shown = 0;
  for (const auto& episode : episodes) {
    if (episode.severity != core::AlertSeverity::kCritical && shown < 8) {
      PrintEpisode(episode);
      ++shown;
    }
  }
  if (episodes.size() - critical > shown) {
    std::printf("  ... and %zu more\n", episodes.size() - critical - shown);
  }

  const auto calibration = manager.CalibrationQueue();
  std::printf("\nCALIBRATION QUEUE (suspected measurement errors): %zu\n",
              calibration.size());
  shown = 0;
  for (const auto& episode : calibration) {
    if (shown++ < 8) PrintEpisode(episode);
  }
  if (calibration.size() > 8) {
    std::printf("  ... and %zu more\n", calibration.size() - 8);
  }

  size_t glitches = 0;
  for (const auto& record : plant.truth.records) {
    if (record.measurement_error) ++glitches;
  }
  std::printf("\nGround truth for comparison: %zu injected events total, "
              "%zu of them glitches.\n",
              plant.truth.records.size(), glitches);
  return 0;
}
