#include "util/logging.h"

#include <cstdio>

namespace hod {

namespace {

LogLevel g_min_level = LogLevel::kInfo;

void DefaultSink(LogLevel level, const std::string& message) {
  const char* name = "INFO";
  switch (level) {
    case LogLevel::kDebug:
      name = "DEBUG";
      break;
    case LogLevel::kInfo:
      name = "INFO";
      break;
    case LogLevel::kWarning:
      name = "WARN";
      break;
    case LogLevel::kError:
      name = "ERROR";
      break;
  }
  std::fprintf(stderr, "[%s] %s\n", name, message.c_str());
}

LogSink g_sink = &DefaultSink;

}  // namespace

void SetMinLogLevel(LogLevel level) { g_min_level = level; }
LogLevel MinLogLevel() { return g_min_level; }

void SetLogSink(LogSink sink) { g_sink = sink != nullptr ? sink : &DefaultSink; }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Strip directories: keep the basename for compact records.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ < g_min_level) return;
  g_sink(level_, stream_.str());
}

}  // namespace internal_logging

}  // namespace hod
